//! The global branch history register (BHR).
//!
//! A shift register of recent branch outcomes (1 = taken). The paper's
//! gshare predictor and its confidence tables are both indexed with
//! (portions of) this register, so the simulation driver owns a single
//! `HistoryRegister` and hands its value to every component.

use std::fmt;

/// Global branch history shift register of up to 64 bits.
///
/// Bit 0 holds the most recent outcome.
///
/// # Examples
///
/// ```
/// use cira_predictor::history::HistoryRegister;
///
/// let mut h = HistoryRegister::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    bits: u64,
    width: u32,
}

impl HistoryRegister {
    /// Creates an all-zero history of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "history width must be 1..=64");
        Self { bits: 0, width }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The masked history value.
    pub fn value(&self) -> u64 {
        self.bits & self.mask()
    }

    /// All-ones mask of the register's width.
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Shifts in one outcome (1 = taken).
    pub fn push(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | taken as u64) & self.mask();
    }

    /// Overwrites the register contents (masked to width).
    pub fn set(&mut self, value: u64) {
        self.bits = value & self.mask();
    }

    /// Clears the register to all zeros.
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

impl fmt::Display for HistoryRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.value(), width = self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_and_masks() {
        let mut h = HistoryRegister::new(3);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b111);
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn width_64_works() {
        let mut h = HistoryRegister::new(64);
        h.set(u64::MAX);
        assert_eq!(h.value(), u64::MAX);
        h.push(false);
        assert_eq!(h.value(), u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_width_panics() {
        HistoryRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn wide_width_panics() {
        HistoryRegister::new(65);
    }

    #[test]
    fn set_masks_to_width() {
        let mut h = HistoryRegister::new(4);
        h.set(0xff);
        assert_eq!(h.value(), 0xf);
    }

    #[test]
    fn clear_zeroes() {
        let mut h = HistoryRegister::new(8);
        h.set(0xab);
        h.clear();
        assert_eq!(h.value(), 0);
    }

    #[test]
    fn display_pads_to_width() {
        let mut h = HistoryRegister::new(5);
        h.push(true);
        assert_eq!(h.to_string(), "00001");
    }
}
