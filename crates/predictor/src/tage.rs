//! TAGE-class predictors (Seznec & Michaud, JILP 2006): a base bimodal
//! table plus tagged components indexed with geometrically increasing
//! global-history lengths.
//!
//! These predictors exist in this workspace to answer the question the
//! original paper could not ask: its confidence mechanisms sit beside a
//! gshare that has no opinion about its own reliability, whereas a TAGE
//! provider counter *is* a confidence estimate. [`Tage`] and
//! [`TageScLite`] report that self-assessment through
//! [`BranchPredictor::predict_full`] — the provider component and a
//! `0..=7` strength — so the analysis layer can run the paper's external
//! mechanisms head-to-head against the predictor's own signal.
//!
//! ## Design notes
//!
//! * **No internal history.** The driver owns the global history register
//!   and passes its value to every call (see the crate docs), so history
//!   lengths are capped at the driver's 64-bit BHR and folded histories
//!   are recomputed from the `bhr` argument per call. The predictor state
//!   is tables + two policy counters only, which keeps `state_save` /
//!   `state_load` exact and makes `predict` pure.
//! * **Deterministic allocation.** On a mispredict the allocator takes
//!   the first not-useful entry above the provider (no PRNG), so replays
//!   are bit-reproducible — the property every differential suite in
//!   this repo leans on.
//! * **Scalar only.** There is no SWAR batch override: per-record work is
//!   dominated by multi-table gathers that do not lane-pack the way the
//!   two-bit predictors do, so TAGE runs on the trait's default scalar
//!   batch loop (see DESIGN.md §11).

use crate::state::{put_u32, put_u32_slice, put_u64_slice, put_u8, StateReader};
use crate::{mask, table_len, BranchPredictor, PackedTwoBit, Prediction, Provider};

/// Saturation bounds of the 3-bit signed provider counters.
const CTR_MIN: i8 = -4;
const CTR_MAX: i8 = 3;
/// Saturation bound of the 2-bit useful counters.
const U_MAX: u8 = 3;
/// Updates between useful-counter decays (every entry's `u` halves).
const TICK_PERIOD: u32 = 1 << 18;
/// `use_alt_on_na` is a 4-bit counter; alt is preferred at or above 8.
const USE_ALT_MAX: u8 = 15;
const USE_ALT_INIT: u8 = 8;

/// One tagged-component entry: 3-bit signed direction counter, partial
/// tag, 2-bit useful counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TaggedEntry {
    ctr: i8,
    tag: u16,
    u: u8,
}

/// A tagged component and the history length it folds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Component {
    len: u32,
    entries: Vec<TaggedEntry>,
}

/// Everything one table read determines about a `(pc, bhr)` pair —
/// computed identically (and purely) by `predict`, `predict_full`, and
/// `update`, which is what keeps the three views consistent.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    /// Longest matching component (0-based) and its entry index.
    provider: Option<(usize, usize)>,
    /// Next-longest matching component; `None` means the base table.
    alt: Option<(usize, usize)>,
    provider_pred: bool,
    alt_pred: bool,
    /// Provider entry looks newly allocated (weak counter, not useful).
    newly_allocated: bool,
    /// Whether the alt prediction was used as the final direction.
    used_alt: bool,
    base_index: usize,
    base_state: u32,
    /// Final predicted direction.
    taken: bool,
}

/// Folds the low `len` bits of `bhr` into `width` bits by XOR.
fn fold(bhr: u64, len: u32, width: u32) -> u64 {
    let mut h = bhr & mask(len);
    let mut folded = 0u64;
    while h != 0 {
        folded ^= h & mask(width);
        h >>= width;
    }
    folded
}

/// Self-assessed confidence of a 3-bit provider counter: 0 (weak,
/// just-allocated) ..= 3 (saturated).
fn ctr_conf(ctr: i8) -> u8 {
    (((2 * i32::from(ctr) + 1).abs() - 1) / 2) as u8
}

/// Geometric history-length series: `lens[0] = min_len`,
/// `lens[n-1] = max_len`, strictly increasing (rounding collisions are
/// bumped up by one so every component sees distinct history).
fn geometric_lengths(ncomp: u32, min_len: u32, max_len: u32) -> Vec<u32> {
    let n = ncomp as usize;
    let ratio = (f64::from(max_len) / f64::from(min_len)).powf(1.0 / (n as f64 - 1.0));
    let mut lens = Vec::with_capacity(n);
    let mut prev = 0u32;
    for i in 0..n {
        let ideal = (f64::from(min_len) * ratio.powi(i as i32)).round() as u32;
        let len = ideal.clamp(prev + 1, max_len);
        lens.push(len);
        prev = len;
    }
    lens
}

/// The TAGE predictor: a bimodal base table plus `ncomp` tagged
/// components whose history lengths grow geometrically from `min_len`
/// to `max_len`.
///
/// Tagged components each hold `2^(base_bits - 2)` entries (so the
/// aggregate tagged storage stays within a small multiple of the base
/// table), tagged with `tag_bits`-bit partial tags and guarded by 2-bit
/// useful counters with periodic decay.
///
/// # Examples
///
/// ```
/// use cira_predictor::{BranchPredictor, Provider, Tage};
///
/// let mut p = Tage::reference_64k();
/// let full = p.predict_full(0x4000, 0b1011);
/// assert_eq!(full.taken, p.predict(0x4000, 0b1011));
/// assert!(full.strength <= cira_predictor::Prediction::MAX_STRENGTH);
/// p.update(0x4000, 0b1011, true);
/// # let _ = Provider::Base;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tage {
    base: PackedTwoBit,
    comps: Vec<Component>,
    base_bits: u32,
    comp_bits: u32,
    min_len: u32,
    max_len: u32,
    tag_bits: u32,
    /// 4-bit policy counter: prefer the alternate prediction when the
    /// provider entry is newly allocated and this is >= 8.
    use_alt_on_na: u8,
    /// Updates since the last useful-counter decay.
    tick: u32,
}

impl Tage {
    /// Creates a TAGE predictor.
    ///
    /// * `base_bits` — log2 entries of the base bimodal table (tagged
    ///   components get `base_bits - 2`).
    /// * `ncomp` — number of tagged components.
    /// * `min_len` / `max_len` — geometric history-length endpoints.
    /// * `tag_bits` — partial-tag width.
    ///
    /// # Panics
    ///
    /// Panics if `base_bits` is outside `3..=28`, `ncomp` outside
    /// `2..=12`, `tag_bits` outside `4..=15`, the lengths do not satisfy
    /// `1 <= min_len < max_len <= 64`, or there are more components than
    /// distinct lengths in `min_len..=max_len`.
    pub fn new(base_bits: u32, ncomp: u32, min_len: u32, max_len: u32, tag_bits: u32) -> Self {
        assert!(
            (3..=28).contains(&base_bits),
            "tage base_bits must be 3..=28, got {base_bits}"
        );
        assert!(
            (2..=12).contains(&ncomp),
            "tage component count must be 2..=12, got {ncomp}"
        );
        assert!(
            (4..=15).contains(&tag_bits),
            "tage tag_bits must be 4..=15, got {tag_bits}"
        );
        assert!(
            min_len >= 1 && min_len < max_len && max_len <= 64,
            "tage history lengths must satisfy 1 <= min ({min_len}) < max ({max_len}) <= 64"
        );
        assert!(
            max_len - min_len + 1 >= ncomp,
            "tage needs {ncomp} distinct history lengths in {min_len}..={max_len}"
        );
        let comp_bits = base_bits - 2;
        let comp_len = table_len(comp_bits);
        let comps = geometric_lengths(ncomp, min_len, max_len)
            .into_iter()
            .map(|len| Component {
                len,
                entries: vec![TaggedEntry::default(); comp_len],
            })
            .collect();
        cira_obs::debug!(
            "tage allocated",
            base_bits = base_bits,
            ncomp = ncomp,
            min_len = min_len,
            max_len = max_len
        );
        Self {
            // Weakly taken, matching the paper's gshare initialization.
            base: PackedTwoBit::new(table_len(base_bits), 2),
            comps,
            base_bits,
            comp_bits,
            min_len,
            max_len,
            tag_bits,
            use_alt_on_na: USE_ALT_INIT,
            tick: 0,
        }
    }

    /// The reference ~64 KiB-class configuration used by the committed
    /// experiments: `tage:14:7:4:64:11` (16K-entry base, 7 components of
    /// 4K entries, histories 4..64, 11-bit tags — ~60 KiB of state).
    pub fn reference_64k() -> Self {
        Self::new(14, 7, 4, 64, 11)
    }

    /// The geometric history lengths, shortest first.
    pub fn history_lengths(&self) -> Vec<u32> {
        self.comps.iter().map(|c| c.len).collect()
    }

    /// Entry index of component `c` for `(pc, bhr)`.
    fn comp_index(&self, c: usize, pc: u64, bhr: u64) -> usize {
        let pc2 = pc >> 2;
        let h = fold(bhr, self.comps[c].len, self.comp_bits);
        ((pc2 ^ (pc2 >> (1 + c as u32)) ^ h) & mask(self.comp_bits)) as usize
    }

    /// Partial tag of component `c` for `(pc, bhr)`. Two fold widths
    /// decorrelate the tag from the index hash.
    fn comp_tag(&self, c: usize, pc: u64, bhr: u64) -> u16 {
        let len = self.comps[c].len;
        let h1 = fold(bhr, len, self.tag_bits);
        let h2 = fold(bhr, len, self.tag_bits - 1) << 1;
        (((pc >> 2) ^ h1 ^ h2) & mask(self.tag_bits)) as u16
    }

    /// The pure table read shared by `predict`, `predict_full`, and
    /// `update`.
    fn lookup(&self, pc: u64, bhr: u64) -> Lookup {
        let base_index = ((pc >> 2) & mask(self.base_bits)) as usize;
        let base_state = self.base.state(base_index);
        let base_pred = base_state >= 2;

        let mut provider = None;
        let mut alt = None;
        for c in (0..self.comps.len()).rev() {
            let idx = self.comp_index(c, pc, bhr);
            if self.comps[c].entries[idx].tag == self.comp_tag(c, pc, bhr) {
                if provider.is_none() {
                    provider = Some((c, idx));
                } else {
                    alt = Some((c, idx));
                    break;
                }
            }
        }

        let alt_pred = match alt {
            Some((c, idx)) => self.comps[c].entries[idx].ctr >= 0,
            None => base_pred,
        };
        let (provider_pred, newly_allocated) = match provider {
            Some((c, idx)) => {
                let e = self.comps[c].entries[idx];
                (e.ctr >= 0, ctr_conf(e.ctr) == 0 && e.u == 0)
            }
            None => (base_pred, false),
        };
        let used_alt =
            provider.is_some() && newly_allocated && self.use_alt_on_na >= USE_ALT_INIT;
        let taken = if provider.is_none() || used_alt {
            alt_pred
        } else {
            provider_pred
        };
        Lookup {
            provider,
            alt,
            provider_pred,
            alt_pred,
            newly_allocated,
            used_alt,
            base_index,
            base_state,
            taken,
        }
    }

    /// Maps a lookup to the provenance-carrying [`Prediction`].
    fn prediction_of(&self, l: &Lookup) -> Prediction {
        let base_strength = |state: u32| if state == 0 || state == 3 { 3 } else { 1 };
        match l.provider {
            Some((c, idx)) if !l.used_alt => {
                let conf = ctr_conf(self.comps[c].entries[idx].ctr);
                let agree = if l.alt_pred == l.provider_pred { 4 } else { 0 };
                Prediction {
                    taken: l.taken,
                    provider: Provider::Tagged(c as u8 + 1),
                    strength: conf + agree,
                }
            }
            Some(_) => match l.alt {
                // A weak provider deferred to the alternate: provenance
                // follows the structure that supplied the direction.
                Some((c, idx)) => Prediction {
                    taken: l.taken,
                    provider: Provider::Tagged(c as u8 + 1),
                    strength: ctr_conf(self.comps[c].entries[idx].ctr),
                },
                None => Prediction {
                    taken: l.taken,
                    provider: Provider::Base,
                    strength: base_strength(l.base_state),
                },
            },
            None => Prediction {
                taken: l.taken,
                provider: Provider::Base,
                strength: base_strength(l.base_state),
            },
        }
    }

    /// Allocates (or ages) tagged entries after a mispredict, starting
    /// just above the provider. Deterministic: the first not-useful
    /// entry wins; if every candidate is useful, they all age instead.
    fn allocate(&mut self, above: usize, pc: u64, bhr: u64, taken: bool) {
        for c in above..self.comps.len() {
            let idx = self.comp_index(c, pc, bhr);
            if self.comps[c].entries[idx].u == 0 {
                self.comps[c].entries[idx] = TaggedEntry {
                    ctr: if taken { 0 } else { -1 },
                    tag: self.comp_tag(c, pc, bhr),
                    u: 0,
                };
                return;
            }
        }
        for c in above..self.comps.len() {
            let idx = self.comp_index(c, pc, bhr);
            let e = &mut self.comps[c].entries[idx];
            e.u = e.u.saturating_sub(1);
        }
    }

    /// Periodic graceful forgetting: every [`TICK_PERIOD`] updates, halve
    /// every useful counter so stale entries become reclaimable.
    fn decay_tick(&mut self) {
        self.tick += 1;
        if self.tick >= TICK_PERIOD {
            self.tick = 0;
            for comp in &mut self.comps {
                for e in &mut comp.entries {
                    e.u >>= 1;
                }
            }
        }
    }
}

impl BranchPredictor for Tage {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        self.lookup(pc, bhr).taken
    }

    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        let l = self.lookup(pc, bhr);
        self.prediction_of(&l)
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let l = self.lookup(pc, bhr);
        if let Some((c, idx)) = l.provider {
            // The use-alt policy learns from cases where provider and
            // alternate disagreed on a newly allocated entry.
            if l.newly_allocated && l.provider_pred != l.alt_pred {
                if l.alt_pred == taken {
                    self.use_alt_on_na = (self.use_alt_on_na + 1).min(USE_ALT_MAX);
                } else {
                    self.use_alt_on_na = self.use_alt_on_na.saturating_sub(1);
                }
            }
            // Usefulness: the provider proved (or disproved) its worth
            // only where it disagreed with the alternate.
            if l.provider_pred != l.alt_pred {
                let e = &mut self.comps[c].entries[idx];
                if l.provider_pred == taken {
                    e.u = (e.u + 1).min(U_MAX);
                } else {
                    e.u = e.u.saturating_sub(1);
                }
            }
            let e = &mut self.comps[c].entries[idx];
            e.ctr = if taken {
                (e.ctr + 1).min(CTR_MAX)
            } else {
                (e.ctr - 1).max(CTR_MIN)
            };
        } else {
            self.base.train(l.base_index, taken);
        }
        if l.taken != taken {
            let above = l.provider.map_or(0, |(c, _)| c + 1);
            if above < self.comps.len() {
                self.allocate(above, pc, bhr, taken);
            }
        }
        self.decay_tick();
    }

    fn describe(&self) -> String {
        format!(
            "tage({},{}c,{}..{},tag{})",
            self.base_bits,
            self.comps.len(),
            self.min_len,
            self.max_len,
            self.tag_bits
        )
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        put_u64_slice(out, self.base.words());
        for comp in &self.comps {
            let packed: Vec<u32> = comp
                .entries
                .iter()
                .map(|e| u32::from(e.ctr as u8) | (u32::from(e.u) << 8) | (u32::from(e.tag) << 16))
                .collect();
            put_u32_slice(out, &packed);
        }
        put_u8(out, self.use_alt_on_na);
        put_u32(out, self.tick);
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let words = r.u64_vec()?;
        let mut comps = Vec::with_capacity(self.comps.len());
        for (c, comp) in self.comps.iter().enumerate() {
            let packed = r.u32_vec()?;
            if packed.len() != comp.entries.len() {
                return Err(format!(
                    "tage component {c} restore: got {} entries, need {}",
                    packed.len(),
                    comp.entries.len()
                ));
            }
            let mut entries = Vec::with_capacity(packed.len());
            for (i, p) in packed.iter().enumerate() {
                let e = TaggedEntry {
                    ctr: (p & 0xff) as u8 as i8,
                    u: ((p >> 8) & 0xff) as u8,
                    tag: ((p >> 16) & 0xffff) as u16,
                };
                if !(CTR_MIN..=CTR_MAX).contains(&e.ctr)
                    || e.u > U_MAX
                    || u64::from(e.tag) > mask(self.tag_bits)
                {
                    return Err(format!(
                        "tage component {c} entry {i} out of range: {p:#x}"
                    ));
                }
                entries.push(e);
            }
            comps.push(entries);
        }
        let use_alt = r.u8()?;
        if use_alt > USE_ALT_MAX {
            return Err(format!("tage use_alt_on_na {use_alt} exceeds {USE_ALT_MAX}"));
        }
        let tick = r.u32()?;
        if tick >= TICK_PERIOD {
            return Err(format!("tage tick {tick} exceeds period {TICK_PERIOD}"));
        }
        r.finish()?;
        self.base.load_words(&words)?;
        for (comp, entries) in self.comps.iter_mut().zip(comps) {
            comp.entries = entries;
        }
        self.use_alt_on_na = use_alt;
        self.tick = tick;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// TAGE-SC-lite
// ---------------------------------------------------------------------

/// Loop-predictor table size (direct-mapped, 64 entries).
const LOOP_BITS: u32 = 6;
/// Loop-predictor tag width (bits 17..8 of the PC).
const LOOP_TAG_BITS: u32 = 10;
/// Loop confidence needed before the loop predictor overrides TAGE.
const LOOP_CONF_MAX: u8 = 3;
/// Replacement age assigned on allocation / successful use.
const LOOP_AGE_MAX: u8 = 7;

/// Statistical-corrector geometry: three 6-bit-counter tables indexed by
/// PC folded with 0, 8, and 16 bits of history.
const SC_TABLE_BITS: u32 = 10;
const SC_HIST: [u32; 3] = [0, 8, 16];
const SC_CTR_MIN: i8 = -32;
const SC_CTR_MAX: i8 = 31;
/// Corrector vote margin needed to overturn a weak TAGE prediction, and
/// the update margin below which its counters keep training.
const SC_THRESHOLD: i32 = 10;
/// TAGE strengths below this are "weak" and open to correction (i.e. the
/// provider counter is not saturated-with-agreement).
const SC_WEAK_STRENGTH: u8 = 4;

/// One loop-predictor entry: the branch repeats `dir` for `past` trips,
/// then goes the other way once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (0 = not yet observed).
    past: u16,
    /// Trips seen in the current iteration.
    curr: u16,
    /// Confidence that `past` is stable; predicts only when saturated.
    conf: u8,
    /// Replacement age (0 = reclaimable).
    age: u8,
    /// The repeated direction.
    dir: bool,
}

impl LoopEntry {
    /// Direction this entry predicts at its current trip position.
    fn predicts(&self) -> bool {
        if self.curr < self.past {
            self.dir
        } else {
            !self.dir
        }
    }
}

/// [`Tage`] plus two small side predictors, after TAGE-SC-L (Seznec,
/// CBP-4): a loop predictor that captures regular loop trip counts
/// beyond any history length, and a lightweight statistical corrector
/// that can overturn weak TAGE predictions when its per-branch
/// direction statistics strongly disagree.
///
/// The corrector is the "lite" GEHL form: three 6-bit-counter tables
/// over 0/8/16-bit folded histories, voting only against predictions
/// whose provider strength is below [`Prediction::MAX_STRENGTH`]'s
/// agreement band.
#[derive(Debug, Clone, PartialEq)]
pub struct TageScLite {
    tage: Tage,
    loops: Vec<LoopEntry>,
    sc: Vec<Vec<i8>>,
}

/// What the side predictors decided for one `(pc, bhr)` — pure, like
/// [`Tage::lookup`].
#[derive(Debug, Clone, Copy)]
struct ScLookup {
    /// Loop entry index.
    loop_idx: usize,
    /// Loop tag matched.
    loop_hit: bool,
    /// Loop predictor is confident enough to override.
    loop_overrides: bool,
    loop_pred: bool,
    /// Per-table corrector indices.
    sc_idx: [usize; 3],
    /// Corrector vote, centered on taken (> 0 leans taken).
    sc_sum: i32,
    /// Corrector overturned the (weak) TAGE direction.
    sc_overrides: bool,
    /// Final direction after both overrides.
    taken: bool,
}

impl TageScLite {
    /// Creates a TAGE-SC-lite predictor; parameters and panics as in
    /// [`Tage::new`] (the loop and corrector tables are fixed-size).
    pub fn new(base_bits: u32, ncomp: u32, min_len: u32, max_len: u32, tag_bits: u32) -> Self {
        Self {
            tage: Tage::new(base_bits, ncomp, min_len, max_len, tag_bits),
            loops: vec![LoopEntry::default(); table_len(LOOP_BITS)],
            sc: SC_HIST
                .iter()
                .map(|_| vec![0i8; table_len(SC_TABLE_BITS)])
                .collect(),
        }
    }

    /// The reference ~64 KiB-class configuration (see
    /// [`Tage::reference_64k`]; loop + corrector add ~2.8 KiB).
    pub fn reference_64k() -> Self {
        Self {
            tage: Tage::reference_64k(),
            loops: vec![LoopEntry::default(); table_len(LOOP_BITS)],
            sc: SC_HIST
                .iter()
                .map(|_| vec![0i8; table_len(SC_TABLE_BITS)])
                .collect(),
        }
    }

    fn loop_tag(pc: u64) -> u16 {
        ((pc >> (2 + LOOP_BITS)) & mask(LOOP_TAG_BITS)) as u16
    }

    /// Pure side-predictor read, given TAGE's prediction for the pair.
    fn sc_lookup(&self, pc: u64, bhr: u64, tage_pred: &Prediction) -> ScLookup {
        let loop_idx = ((pc >> 2) & mask(LOOP_BITS)) as usize;
        let entry = self.loops[loop_idx];
        let loop_hit = entry.tag == Self::loop_tag(pc) && entry.age > 0;
        let loop_overrides = loop_hit && entry.conf >= LOOP_CONF_MAX && entry.past > 0;
        let loop_pred = entry.predicts();

        let mut sc_idx = [0usize; 3];
        let mut sc_sum = 0i32;
        for (t, &len) in SC_HIST.iter().enumerate() {
            let idx = (((pc >> 2) ^ fold(bhr, len, SC_TABLE_BITS) ^ (t as u64 * 0x9e37))
                & mask(SC_TABLE_BITS)) as usize;
            sc_idx[t] = idx;
            sc_sum += 2 * i32::from(self.sc[t][idx]) + 1;
        }
        let sc_pred = sc_sum >= 0;
        let sc_overrides = !loop_overrides
            && tage_pred.strength < SC_WEAK_STRENGTH
            && sc_sum.abs() >= SC_THRESHOLD
            && sc_pred != tage_pred.taken;

        let taken = if loop_overrides {
            loop_pred
        } else if sc_overrides {
            sc_pred
        } else {
            tage_pred.taken
        };
        ScLookup {
            loop_idx,
            loop_hit,
            loop_overrides,
            loop_pred,
            sc_idx,
            sc_sum,
            sc_overrides,
            taken,
        }
    }

    fn full_prediction(&self, pc: u64, bhr: u64) -> (Prediction, ScLookup) {
        let tage_pred = self.tage.predict_full(pc, bhr);
        let s = self.sc_lookup(pc, bhr, &tage_pred);
        let prediction = if s.loop_overrides {
            Prediction {
                taken: s.taken,
                provider: Provider::Loop,
                strength: Prediction::MAX_STRENGTH,
            }
        } else if s.sc_overrides {
            Prediction {
                taken: s.taken,
                provider: Provider::Corrector,
                strength: (s.sc_sum.unsigned_abs() / 4).min(7) as u8,
            }
        } else {
            tage_pred
        };
        (prediction, s)
    }
}

impl BranchPredictor for TageScLite {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        self.full_prediction(pc, bhr).0.taken
    }

    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        self.full_prediction(pc, bhr).0
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let tage_pred = self.tage.predict_full(pc, bhr);
        let s = self.sc_lookup(pc, bhr, &tage_pred);

        // Loop predictor: train matched entries; allocate on a final
        // mispredict when the slot has aged out.
        let e = &mut self.loops[s.loop_idx];
        if s.loop_hit {
            if taken == e.dir {
                e.curr = e.curr.saturating_add(1);
                if e.past > 0 && e.curr > e.past {
                    // Ran past the learned trip count: not a stable loop.
                    e.conf = 0;
                    e.past = 0;
                }
            } else {
                if e.past == e.curr && e.past > 0 {
                    e.conf = (e.conf + 1).min(LOOP_CONF_MAX);
                } else {
                    e.conf = if e.past == 0 { 1 } else { 0 };
                }
                e.past = e.curr;
                e.curr = 0;
            }
            if s.loop_overrides {
                if s.loop_pred == taken {
                    e.age = LOOP_AGE_MAX;
                } else {
                    e.age = e.age.saturating_sub(1);
                }
            }
        } else if s.taken != taken {
            if e.age == 0 {
                // The mispredict that prompts allocation is typically the
                // loop *exit*, so the repeated direction is the opposite
                // of the outcome just observed.
                *e = LoopEntry {
                    tag: Self::loop_tag(pc),
                    past: 0,
                    curr: 0,
                    conf: 0,
                    age: LOOP_AGE_MAX,
                    dir: !taken,
                };
            } else {
                e.age -= 1;
            }
        }

        // Corrector: GEHL-style update on weak TAGE predictions whenever
        // the vote was wrong or inside the training margin.
        if tage_pred.strength < SC_WEAK_STRENGTH {
            let sc_pred = s.sc_sum >= 0;
            if sc_pred != taken || s.sc_sum.abs() < SC_THRESHOLD {
                for (t, &idx) in s.sc_idx.iter().enumerate() {
                    let c = &mut self.sc[t][idx];
                    *c = if taken {
                        (*c + 1).min(SC_CTR_MAX)
                    } else {
                        (*c - 1).max(SC_CTR_MIN)
                    };
                }
            }
        }

        // The TAGE core trains on its own prediction (allocation keys off
        // the tagged-path mispredict, not the overridden final).
        self.tage.update(pc, bhr, taken);
    }

    fn describe(&self) -> String {
        format!(
            "tage-sc-lite({},{}c,{}..{},tag{})",
            self.tage.base_bits,
            self.tage.comps.len(),
            self.tage.min_len,
            self.tage.max_len,
            self.tage.tag_bits
        )
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        self.tage.state_save(out);
        let packed: Vec<u64> = self
            .loops
            .iter()
            .map(|e| {
                u64::from(e.tag)
                    | (u64::from(e.past) << 16)
                    | (u64::from(e.curr) << 32)
                    | (u64::from(e.conf) << 48)
                    | (u64::from(e.age) << 51)
                    | (u64::from(e.dir) << 59)
            })
            .collect();
        put_u64_slice(out, &packed);
        for table in &self.sc {
            let packed: Vec<u32> = table.iter().map(|&c| u32::from(c as u8)).collect();
            put_u32_slice(out, &packed);
        }
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        // The TAGE core consumed a prefix of the blob; re-frame it so the
        // core's reader sees exactly its own bytes. Easiest split: save
        // the current core to learn its byte length (it is fixed for a
        // given configuration).
        let mut core_probe = Vec::new();
        self.tage.state_save(&mut core_probe);
        if bytes.len() < core_probe.len() {
            return Err(format!(
                "tage-sc-lite blob truncated: {} bytes, core alone needs {}",
                bytes.len(),
                core_probe.len()
            ));
        }
        let (core_bytes, rest) = bytes.split_at(core_probe.len());

        let mut r = StateReader::new(rest);
        let packed_loops = r.u64_vec()?;
        if packed_loops.len() != self.loops.len() {
            return Err(format!(
                "loop table restore: got {} entries, need {}",
                packed_loops.len(),
                self.loops.len()
            ));
        }
        let mut loops = Vec::with_capacity(packed_loops.len());
        for (i, p) in packed_loops.iter().enumerate() {
            let e = LoopEntry {
                tag: (p & 0xffff) as u16,
                past: ((p >> 16) & 0xffff) as u16,
                curr: ((p >> 32) & 0xffff) as u16,
                conf: ((p >> 48) & 0x7) as u8,
                age: ((p >> 51) & 0xff) as u8,
                dir: (p >> 59) & 1 == 1,
            };
            if u64::from(e.tag) > mask(LOOP_TAG_BITS)
                || e.conf > LOOP_CONF_MAX
                || e.age > LOOP_AGE_MAX
                || p >> 60 != 0
            {
                return Err(format!("loop entry {i} out of range: {p:#x}"));
            }
            loops.push(e);
        }
        let mut sc = Vec::with_capacity(self.sc.len());
        for (t, table) in self.sc.iter().enumerate() {
            let packed = r.u32_vec()?;
            if packed.len() != table.len() {
                return Err(format!(
                    "corrector table {t} restore: got {} entries, need {}",
                    packed.len(),
                    table.len()
                ));
            }
            let mut counters = Vec::with_capacity(packed.len());
            for (i, p) in packed.iter().enumerate() {
                let c = (p & 0xff) as u8 as i8;
                if *p > 0xff || !(SC_CTR_MIN..=SC_CTR_MAX).contains(&c) {
                    return Err(format!("corrector table {t} entry {i} out of range: {p:#x}"));
                }
                counters.push(c);
            }
            sc.push(counters);
        }
        r.finish()?;
        self.tage.state_load(core_bytes)?;
        self.loops = loops;
        self.sc = sc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gshare, HistoryRegister};

    #[test]
    fn geometric_lengths_hit_endpoints_and_increase() {
        let lens = geometric_lengths(7, 4, 64);
        assert_eq!(lens.first(), Some(&4));
        assert_eq!(lens.last(), Some(&64));
        assert!(lens.windows(2).all(|w| w[0] < w[1]), "{lens:?}");
        // Degenerate-adjacent case: every length distinct even when the
        // rounding collides.
        let tight = geometric_lengths(5, 2, 8);
        assert!(tight.windows(2).all(|w| w[0] < w[1]), "{tight:?}");
    }

    #[test]
    fn fold_compresses_history() {
        assert_eq!(fold(0, 64, 8), 0);
        assert_eq!(fold(0b1111_0110_1010, 12, 4), 0b1111 ^ 0b0110 ^ 0b1010);
        // Only the low `len` bits participate.
        assert_eq!(fold(u64::MAX, 4, 8), 0xf);
    }

    #[test]
    fn ctr_conf_scale() {
        assert_eq!(ctr_conf(0), 0);
        assert_eq!(ctr_conf(-1), 0);
        assert_eq!(ctr_conf(3), 3);
        assert_eq!(ctr_conf(-4), 3);
        assert_eq!(ctr_conf(1), 1);
        assert_eq!(ctr_conf(-2), 1);
    }

    #[test]
    #[should_panic(expected = "component count")]
    fn too_few_components_rejected() {
        Tage::new(10, 1, 2, 32, 8);
    }

    #[test]
    #[should_panic(expected = "1 <= min")]
    fn inverted_history_lengths_rejected() {
        Tage::new(10, 4, 32, 32, 8);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(Tage::reference_64k().describe(), "tage(14,7c,4..64,tag11)");
        assert_eq!(
            TageScLite::new(10, 4, 2, 32, 9).describe(),
            "tage-sc-lite(10,4c,2..32,tag9)"
        );
    }

    #[test]
    fn predict_is_projection_of_predict_full() {
        let mut p = Tage::new(8, 4, 2, 24, 8);
        let mut x = 11u64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (pc, bhr, taken) = (x & 0xffff, x >> 16, x >> 63 == 1);
            let full = p.predict_full(pc, bhr);
            assert_eq!(full.taken, p.predict(pc, bhr));
            assert!(full.strength <= Prediction::MAX_STRENGTH);
            p.update(pc, bhr, taken);
        }
    }

    #[test]
    fn learns_long_history_patterns_gshare_cannot() {
        // Loop with trip count 40: the full pattern needs ~41 bits of
        // history. gshare(12,12) cannot disambiguate the exit; a TAGE
        // component at length >= 41 can.
        let run = |p: &mut dyn BranchPredictor| {
            let mut bhr = HistoryRegister::new(64);
            let mut wrong_late = 0u32;
            for i in 0..40_000u64 {
                let taken = i % 41 != 40;
                let pred = p.predict_train(0x80, bhr.value(), taken);
                if i > 20_000 && pred != taken {
                    wrong_late += 1;
                }
                bhr.push(taken);
            }
            wrong_late
        };
        let mut tage = Tage::new(10, 6, 4, 64, 10);
        let mut gshare = Gshare::new(12, 12);
        let tage_wrong = run(&mut tage);
        let gshare_wrong = run(&mut gshare);
        assert!(
            tage_wrong < 25,
            "tage should learn the trip-41 loop, got {tage_wrong} late mispredicts"
        );
        assert!(
            gshare_wrong > 200,
            "gshare(12,12) should keep missing the exit, got {gshare_wrong}"
        );
    }

    #[test]
    fn provider_moves_off_base_as_components_allocate() {
        let mut p = Tage::new(8, 4, 2, 24, 8);
        let mut bhr = HistoryRegister::new(64);
        let mut tagged_seen = false;
        for i in 0..5000u64 {
            let taken = i % 3 == 0;
            let full = p.predict_full(0x40, bhr.value());
            if matches!(full.provider, Provider::Tagged(_)) {
                tagged_seen = true;
            }
            p.update(0x40, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(tagged_seen, "no tagged component ever provided");
    }

    #[test]
    fn loop_predictor_catches_trips_beyond_any_history() {
        // Trip count 100 exceeds the 64-bit BHR, so the tagged components
        // cannot see the exit coming — only the loop predictor can.
        let run = |p: &mut dyn BranchPredictor| {
            let mut bhr = HistoryRegister::new(64);
            let mut wrong_late = 0u32;
            for i in 0..60_000u64 {
                let taken = i % 101 != 100;
                let pred = p.predict_train(0x80, bhr.value(), taken);
                if i > 30_000 && pred != taken {
                    wrong_late += 1;
                }
                bhr.push(taken);
            }
            wrong_late
        };
        let scl_wrong = run(&mut TageScLite::new(10, 4, 4, 64, 10));
        let tage_wrong = run(&mut Tage::new(10, 4, 4, 64, 10));
        assert!(
            scl_wrong < tage_wrong,
            "loop predictor should beat plain tage on a trip-101 loop: \
             sc-lite {scl_wrong} vs tage {tage_wrong}"
        );
        assert!(scl_wrong < 30, "sc-lite late mispredicts: {scl_wrong}");
    }

    #[test]
    fn loop_provider_reported_when_overriding() {
        let mut p = TageScLite::new(10, 4, 4, 64, 10);
        let mut bhr = HistoryRegister::new(64);
        let mut loop_seen = false;
        for i in 0..60_000u64 {
            let taken = i % 101 != 100;
            if p.predict_full(0x80, bhr.value()).provider == Provider::Loop {
                loop_seen = true;
            }
            p.update(0x80, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(loop_seen, "loop predictor never became the provider");
    }

    /// Drives `n` synthetic branches through a predictor, mixing several
    /// PCs and outcome patterns so tagged components, the loop table,
    /// and the corrector all see traffic.
    fn exercise(p: &mut dyn BranchPredictor, n: u64, seed: u64) {
        let mut bhr = HistoryRegister::new(64);
        let mut x = seed | 1;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x40 + (x % 23) * 4;
            let taken = match x % 3 {
                0 => i % 7 != 6,
                1 => x & 8 == 0,
                _ => i % 41 != 40,
            };
            p.predict_train(pc, bhr.value(), taken);
            bhr.push(taken);
        }
    }

    #[test]
    fn state_round_trips_bit_identically() {
        for (a, b) in [
            (
                Box::new(Tage::new(8, 4, 2, 24, 8)) as Box<dyn BranchPredictor>,
                Box::new(Tage::new(8, 4, 2, 24, 8)) as Box<dyn BranchPredictor>,
            ),
            (
                Box::new(TageScLite::new(8, 4, 2, 24, 8)),
                Box::new(TageScLite::new(8, 4, 2, 24, 8)),
            ),
        ] {
            let (mut trained, mut fresh) = (a, b);
            exercise(&mut *trained, 20_000, 0xc1a0);
            let mut blob = Vec::new();
            trained.state_save(&mut blob);
            fresh.state_load(&blob).unwrap();
            // Same future behavior and identical re-saved bytes.
            let mut blob2 = Vec::new();
            fresh.state_save(&mut blob2);
            assert_eq!(blob, blob2, "{}", trained.describe());
            exercise(&mut *trained, 5_000, 7);
            exercise(&mut *fresh, 5_000, 7);
            let mut after_a = Vec::new();
            let mut after_b = Vec::new();
            trained.state_save(&mut after_a);
            fresh.state_save(&mut after_b);
            assert_eq!(after_a, after_b, "{}", trained.describe());
        }
    }

    #[test]
    fn state_load_rejects_corruption() {
        let mut p = Tage::new(8, 4, 2, 24, 8);
        exercise(&mut p, 5_000, 3);
        let mut blob = Vec::new();
        p.state_save(&mut blob);

        let mut fresh = Tage::new(8, 4, 2, 24, 8);
        assert!(fresh.state_load(&blob[..blob.len() - 1]).is_err());
        assert!(fresh.state_load(&[]).is_err());
        let mut extended = blob.clone();
        extended.push(0);
        assert!(fresh.state_load(&extended).is_err());
        // A differently configured instance must refuse the blob.
        let mut other = Tage::new(10, 4, 2, 24, 8);
        assert!(other.state_load(&blob).is_err());

        let mut scl = TageScLite::new(8, 4, 2, 24, 8);
        let mut scl_blob = Vec::new();
        scl.state_save(&mut scl_blob);
        assert!(scl.state_load(&scl_blob[..scl_blob.len() - 3]).is_err());
    }

    #[test]
    fn useful_counters_decay_on_tick() {
        let mut p = Tage::new(6, 2, 2, 8, 6);
        // Force a useful entry, then cross the tick boundary.
        p.comps[0].entries[0].u = 3;
        p.tick = TICK_PERIOD - 1;
        p.update(0x1234, 0, true);
        assert_eq!(p.comps[0].entries[0].u, 1, "u should halve on decay");
        assert_eq!(p.tick, 0);
    }
}
