//! The bimodal predictor (J. E. Smith, ISCA 1981): a PC-indexed table of
//! two-bit counters.

use crate::packed::{batch_predict_train, PackedTwoBit};
use crate::{assert_batch_shape, mask, table_len, BranchPredictor};

/// PC-indexed two-bit-counter predictor.
///
/// Index: bits `(table_bits + 1)..2` of the PC (instructions are assumed
/// 4-byte aligned). No history — each static branch (modulo aliasing)
/// trains its own counter toward its majority direction.
///
/// # Examples
///
/// ```
/// use cira_predictor::{Bimodal, BranchPredictor};
///
/// let mut p = Bimodal::new(12);
/// for _ in 0..4 {
///     p.update(0x4000, 0, false);
/// }
/// assert!(!p.predict(0x4000, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: PackedTwoBit,
    bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^bits` counters, initialized
    /// weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 28.
    pub fn new(bits: u32) -> Self {
        Self {
            table: PackedTwoBit::new(table_len(bits), 2),
            bits,
        }
    }

    /// Index width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true; tables have ≥2 entries).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & mask(self.bits)) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u64, _bhr: u64) -> bool {
        self.table.predicts_taken(self.index(pc))
    }

    fn update(&mut self, pc: u64, _bhr: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.train(idx, taken);
    }

    fn predict_train(&mut self, pc: u64, _bhr: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        self.table.predict_train(idx, taken)
    }

    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        assert_batch_shape(pcs, bhrs, takens, out_correct);
        let m = mask(self.bits);
        batch_predict_train(&mut self.table, pcs, bhrs, takens, out_correct, |pc, _h| {
            ((pc >> 2) & m) as usize
        });
    }

    fn describe(&self) -> String {
        format!("bimodal({})", self.bits)
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        crate::state::put_u64_slice(out, self.table.words());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        self.table.load_words(&r.u64_vec()?)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_weakly_taken() {
        let p = Bimodal::new(4);
        assert!(p.predict(0x0, 0));
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn learns_majority_direction() {
        let mut p = Bimodal::new(8);
        for _ in 0..10 {
            p.update(0x100, 0, false);
        }
        assert!(!p.predict(0x100, 0));
        // Other branches are unaffected.
        assert!(p.predict(0x200, 0));
    }

    #[test]
    fn aliasing_shares_counters() {
        let mut p = Bimodal::new(4); // 16 entries: pcs 0x0 and 0x40 collide
        for _ in 0..4 {
            p.update(0x0, 0, false);
        }
        assert!(!p.predict(0x40, 0), "aliased pc should see trained counter");
    }

    #[test]
    fn cannot_learn_alternation() {
        // T,N,T,N... leaves a 2-bit counter oscillating; accuracy ~50%.
        let mut p = Bimodal::new(8);
        let mut correct = 0;
        for i in 0..1000 {
            let taken = i % 2 == 0;
            if p.predict(0x40, 0) == taken {
                correct += 1;
            }
            p.update(0x40, 0, taken);
        }
        assert!(
            correct < 700,
            "bimodal should not learn alternation: {correct}"
        );
    }

    #[test]
    fn describe_includes_bits() {
        assert_eq!(Bimodal::new(12).describe(), "bimodal(12)");
    }
}
