//! Two-level local-history predictor (Yeh & Patt, MICRO-24, 1991).
//!
//! Level 1: a PC-indexed table of per-branch history registers.
//! Level 2: a pattern history table (PHT) of two-bit counters indexed by
//! the selected local history (the PAg organization).

use crate::counter::TwoBitCounter;
use crate::{mask, table_len, BranchPredictor};

/// PAg-style two-level adaptive predictor.
///
/// # Examples
///
/// ```
/// use cira_predictor::{BranchPredictor, LocalTwoLevel};
///
/// let mut p = LocalTwoLevel::new(10, 8);
/// // A strict period-3 local pattern becomes fully predictable.
/// for i in 0..600u32 {
///     let taken = i % 3 != 2;
///     p.update(0x40, 0, taken);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LocalTwoLevel {
    histories: Vec<u64>,
    pht: Vec<TwoBitCounter>,
    bht_bits: u32,
    history_bits: u32,
}

impl LocalTwoLevel {
    /// Creates a predictor with `2^bht_bits` local-history entries of
    /// `history_bits` bits each, and a `2^history_bits`-entry PHT.
    ///
    /// # Panics
    ///
    /// Panics if either width is outside `1..=28`.
    pub fn new(bht_bits: u32, history_bits: u32) -> Self {
        Self {
            histories: vec![0; table_len(bht_bits)],
            pht: vec![TwoBitCounter::weakly_taken(); table_len(history_bits)],
            bht_bits,
            history_bits,
        }
    }

    /// log2 of the branch-history-table size.
    pub fn bht_bits(&self) -> u32 {
        self.bht_bits
    }

    /// Width of each local history register.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 2) & mask(self.bht_bits)) as usize
    }
}

impl BranchPredictor for LocalTwoLevel {
    fn predict(&self, pc: u64, _bhr: u64) -> bool {
        let hist = self.histories[self.bht_index(pc)];
        self.pht[(hist & mask(self.history_bits)) as usize].predicts_taken()
    }

    fn update(&mut self, pc: u64, _bhr: u64, taken: bool) {
        let bi = self.bht_index(pc);
        let hist = self.histories[bi] & mask(self.history_bits);
        self.pht[hist as usize].train(taken);
        self.histories[bi] = ((hist << 1) | taken as u64) & mask(self.history_bits);
    }

    fn describe(&self) -> String {
        format!("local({},{})", self.bht_bits, self.history_bits)
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        crate::state::put_u64_slice(out, &self.histories);
        let states: Vec<u32> = self.pht.iter().map(TwoBitCounter::state).collect();
        crate::state::put_u32_slice(out, &states);
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        let histories = r.u64_vec()?;
        let states = r.u32_vec()?;
        if histories.len() != self.histories.len() || states.len() != self.pht.len() {
            return Err(format!(
                "local restore: {} histories / {} pht states, table needs {}/{}",
                histories.len(),
                states.len(),
                self.histories.len(),
                self.pht.len()
            ));
        }
        if let Some(s) = states.iter().find(|&&s| s > 3) {
            return Err(format!("local restore: pht state {s} out of 0..=3"));
        }
        self.histories = histories;
        self.pht = states.iter().map(|&s| TwoBitCounter::with_state(s)).collect();
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_local_period() {
        let mut p = LocalTwoLevel::new(8, 8);
        let mut correct_late = 0;
        let mut n = 0;
        for i in 0..3000u32 {
            let taken = i % 5 != 4; // period-5 local pattern
            if i > 1000 {
                n += 1;
                if p.predict(0x80, 0) == taken {
                    correct_late += 1;
                }
            }
            p.update(0x80, 0, taken);
        }
        let acc = correct_late as f64 / n as f64;
        assert!(acc > 0.98, "local predictor should learn period 5: {acc}");
    }

    #[test]
    fn separate_branches_have_separate_histories() {
        let mut p = LocalTwoLevel::new(8, 6);
        // Branch A always taken, branch B always not-taken.
        for _ in 0..100 {
            p.update(0x100, 0, true);
            p.update(0x200, 0, false);
        }
        assert!(p.predict(0x100, 0));
        assert!(!p.predict(0x200, 0));
    }

    #[test]
    fn ignores_global_history_argument() {
        let mut p = LocalTwoLevel::new(6, 6);
        for _ in 0..10 {
            p.update(0x40, 0xdead, true);
        }
        assert_eq!(p.predict(0x40, 0), p.predict(0x40, u64::MAX));
    }

    #[test]
    fn describe_includes_config() {
        assert_eq!(LocalTwoLevel::new(10, 8).describe(), "local(10,8)");
    }
}
