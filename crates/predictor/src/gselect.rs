//! The gselect predictor: concatenates PC and global-history bits to index
//! the counter table (Pan, So & Rahmeh, ASPLOS-V, 1992).
//!
//! Included as a baseline and for the index-composition ablation: the paper
//! notes (§3.1) that XOR-composition beats concatenation for confidence
//! tables, mirroring gshare-vs-gselect for prediction.

use crate::packed::{batch_predict_train, PackedTwoBit};
use crate::{assert_batch_shape, mask, table_len, BranchPredictor};

/// Concatenated-index global-history predictor.
///
/// The index is `history_bits` of BHR in the low bits and
/// `table_bits - history_bits` PC bits above them.
///
/// # Examples
///
/// ```
/// use cira_predictor::{BranchPredictor, GSelect};
///
/// let mut p = GSelect::new(10, 4);
/// p.update(0x400, 0b1010, true);
/// assert!(p.predict(0x400, 0b1010));
/// ```
#[derive(Debug, Clone)]
pub struct GSelect {
    table: PackedTwoBit,
    table_bits: u32,
    history_bits: u32,
}

impl GSelect {
    /// Creates a gselect predictor, counters initialized weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is outside `1..=28` or
    /// `history_bits > table_bits`.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        let len = table_len(table_bits);
        assert!(
            history_bits <= table_bits,
            "history_bits {history_bits} must not exceed table_bits {table_bits}"
        );
        Self {
            table: PackedTwoBit::new(len, 2),
            table_bits,
            history_bits,
        }
    }

    /// log2 of the table size.
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// Number of BHR bits in the index.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// The table index used for `(pc, bhr)`.
    pub fn index(&self, pc: u64, bhr: u64) -> usize {
        let pc_bits = self.table_bits - self.history_bits;
        let pc_part = (pc >> 2) & mask(pc_bits);
        let h_part = bhr & mask(self.history_bits);
        ((pc_part << self.history_bits) | h_part) as usize
    }
}

impl BranchPredictor for GSelect {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        self.table.predicts_taken(self.index(pc, bhr))
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let idx = self.index(pc, bhr);
        self.table.train(idx, taken);
    }

    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        let idx = self.index(pc, bhr);
        self.table.predict_train(idx, taken)
    }

    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        assert_batch_shape(pcs, bhrs, takens, out_correct);
        let pc_mask = mask(self.table_bits - self.history_bits);
        let h_mask = mask(self.history_bits);
        let h_bits = self.history_bits;
        batch_predict_train(&mut self.table, pcs, bhrs, takens, out_correct, |pc, h| {
            ((((pc >> 2) & pc_mask) << h_bits) | (h & h_mask)) as usize
        });
    }

    fn describe(&self) -> String {
        format!("gselect({},{})", self.table_bits, self.history_bits)
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        crate::state::put_u64_slice(out, self.table.words());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        self.table.load_words(&r.u64_vec()?)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_concatenates() {
        let p = GSelect::new(8, 4);
        // pc bits (after >>2) 0b1011 in the high nibble, history 0b0110 low.
        assert_eq!(p.index(0b1011 << 2, 0b0110), 0b1011_0110);
    }

    #[test]
    fn zero_history_bits_degenerates_to_bimodal_indexing() {
        let p = GSelect::new(8, 0);
        assert_eq!(p.index(0x40 << 2, 0xffff), 0x40);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn history_wider_than_table_rejected() {
        GSelect::new(6, 7);
    }

    #[test]
    fn learns_alternation() {
        let mut p = GSelect::new(10, 6);
        let mut bhr = crate::HistoryRegister::new(6);
        let mut correct = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if p.predict(0x40, bhr.value()) == taken {
                correct += 1;
            }
            p.update(0x40, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(
            correct > 1900,
            "gselect should learn alternation: {correct}"
        );
    }

    #[test]
    fn describe_includes_config() {
        assert_eq!(GSelect::new(10, 4).describe(), "gselect(10,4)");
    }
}
