//! The gshare predictor (McFarling, DEC WRL TN-36, 1993) — the underlying
//! predictor of every experiment in the paper.

use crate::packed::{batch_predict_train, PackedTwoBit};
use crate::{assert_batch_shape, mask, table_len, BranchPredictor, Prediction, Provider};

/// Global-history predictor indexing its counter table with
/// `PC ⊕ BHR`.
///
/// * `table_bits` — log2 of the number of two-bit counters.
/// * `history_bits` — how many BHR bits participate in the XOR
///   (`history_bits <= table_bits`).
///
/// The paper's configurations:
///
/// * [`Gshare::paper_large`] — 2^16 counters, 16 history bits, indexed by
///   PC bits 17..2 XOR the full 16-bit BHR (§1.2; 3.85% mispredictions on
///   IBS).
/// * [`Gshare::paper_small`] — 4K counters, 12 history bits (§5.3; 8.6%).
///
/// # Examples
///
/// ```
/// use cira_predictor::{BranchPredictor, Gshare};
///
/// let mut p = Gshare::new(10, 10);
/// p.update(0x400, 0b1010, true);
/// assert!(p.predict(0x400, 0b1010));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: PackedTwoBit,
    table_bits: u32,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor, counters initialized weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is outside `1..=28` or
    /// `history_bits > table_bits`.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        let len = table_len(table_bits);
        assert!(
            history_bits <= table_bits,
            "history_bits {history_bits} must not exceed table_bits {table_bits}"
        );
        cira_obs::debug!(
            "gshare table allocated",
            table_bits = table_bits,
            history_bits = history_bits
        );
        Self {
            // Weakly taken (state 2) — the paper's initial value.
            table: PackedTwoBit::new(len, 2),
            table_bits,
            history_bits,
        }
    }

    /// The paper's large configuration: 2^16 entries, 16 history bits.
    pub fn paper_large() -> Self {
        Self::new(16, 16)
    }

    /// The paper's small configuration (§5.3): 4K entries, 12 history bits.
    pub fn paper_small() -> Self {
        Self::new(12, 12)
    }

    /// log2 of the table size.
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// Number of BHR bits used in the index.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// The table index used for `(pc, bhr)` — exposed so confidence tables
    /// can reproduce the predictor's indexing exactly.
    pub fn index(&self, pc: u64, bhr: u64) -> usize {
        (((pc >> 2) ^ (bhr & mask(self.history_bits))) & mask(self.table_bits)) as usize
    }

    /// The raw counter state at the index for `(pc, bhr)` (0..=3).
    pub fn counter_state(&self, pc: u64, bhr: u64) -> u32 {
        self.table.state(self.index(pc, bhr))
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        self.table.predicts_taken(self.index(pc, bhr))
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let idx = self.index(pc, bhr);
        self.table.train(idx, taken);
    }

    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        // One index computation and one table access for both halves.
        let idx = self.index(pc, bhr);
        self.table.predict_train(idx, taken)
    }

    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        // The only self-assessment a two-bit counter offers: saturated
        // states (0, 3) are strong, transitional states (1, 2) weak.
        let state = self.table.state(self.index(pc, bhr));
        Prediction {
            taken: state >= 2,
            provider: Provider::Base,
            strength: if state == 0 || state == 3 { 3 } else { 1 },
        }
    }

    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        assert_batch_shape(pcs, bhrs, takens, out_correct);
        let hmask = mask(self.history_bits);
        let tmask = mask(self.table_bits);
        batch_predict_train(&mut self.table, pcs, bhrs, takens, out_correct, |pc, h| {
            (((pc >> 2) ^ (h & hmask)) & tmask) as usize
        });
    }

    fn describe(&self) -> String {
        format!("gshare({},{})", self.table_bits, self.history_bits)
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        crate::state::put_u64_slice(out, self.table.words());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        self.table.load_words(&r.u64_vec()?)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let large = Gshare::paper_large();
        assert_eq!(large.table_bits(), 16);
        assert_eq!(large.history_bits(), 16);
        let small = Gshare::paper_small();
        assert_eq!(small.table_bits(), 12);
        assert_eq!(small.describe(), "gshare(12,12)");
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn history_wider_than_table_rejected() {
        Gshare::new(8, 9);
    }

    #[test]
    fn index_xors_pc_and_history() {
        let p = Gshare::new(8, 8);
        assert_eq!(p.index(0b1100 << 2, 0b0101), 0b1001);
        // History masked to history_bits.
        let q = Gshare::new(8, 4);
        assert_eq!(q.index(0, 0xff), 0x0f);
    }

    #[test]
    fn learns_history_keyed_patterns() {
        // Alternating branch: bimodal can't learn it, gshare can because
        // the history disambiguates the two contexts.
        let mut p = Gshare::new(10, 10);
        let mut bhr = crate::HistoryRegister::new(10);
        let mut correct = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if p.predict(0x40, bhr.value()) == taken {
                correct += 1;
            }
            p.update(0x40, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(correct > 1900, "gshare should learn alternation: {correct}");
    }

    #[test]
    fn learns_loop_exits_within_history() {
        // Loop of trip 6 (T*6 then N): full pattern fits in 10 bits of
        // history, so after warmup every outcome is predictable.
        let mut p = Gshare::new(12, 10);
        let mut bhr = crate::HistoryRegister::new(10);
        let mut wrong_late = 0;
        let mut n = 0;
        for iter in 0..3000 {
            let taken = (iter % 7) != 6;
            let pred = p.predict(0x80, bhr.value());
            if iter > 1000 {
                n += 1;
                if pred != taken {
                    wrong_late += 1;
                }
            }
            p.update(0x80, bhr.value(), taken);
            bhr.push(taken);
        }
        let rate = wrong_late as f64 / n as f64;
        assert!(rate < 0.02, "late misprediction rate {rate}");
    }

    #[test]
    fn batch_matches_scalar_kernel() {
        use crate::ScalarKernel;
        let mut vector = Gshare::new(6, 6); // tiny table: heavy aliasing
        let mut scalar = ScalarKernel(Gshare::new(6, 6));
        let mut x = 7u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n = 4097;
        let pcs: Vec<u64> = (0..n).map(|_| next()).collect();
        let bhrs: Vec<u64> = (0..n).map(|_| next()).collect();
        let takens: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
        let mut out_v = vec![false; n];
        let mut out_s = vec![false; n];
        vector.predict_train_batch(&pcs, &bhrs, &takens, &mut out_v);
        scalar.predict_train_batch(&pcs, &bhrs, &takens, &mut out_s);
        assert_eq!(out_v, out_s);
        for (pc, h) in pcs.iter().zip(&bhrs).take(64) {
            assert_eq!(
                vector.counter_state(*pc, *h),
                scalar.0.counter_state(*pc, *h)
            );
        }
    }

    #[test]
    fn predict_full_reports_counter_strength() {
        let mut p = Gshare::new(8, 8);
        // Fresh counters are weakly taken: weak strength, same direction
        // as predict().
        let full = p.predict_full(0, 0);
        assert_eq!((full.taken, full.strength), (true, 1));
        assert_eq!(full.provider, crate::Provider::Base);
        p.update(0, 0, true); // saturate to strongly taken
        assert_eq!(p.predict_full(0, 0).strength, 3);
        for _ in 0..3 {
            p.update(0, 0, false);
        }
        let full = p.predict_full(0, 0);
        assert_eq!((full.taken, full.strength), (false, 3));
        assert_eq!(full.taken, p.predict(0, 0));
    }

    #[test]
    fn counter_state_visible() {
        let mut p = Gshare::new(8, 8);
        assert_eq!(p.counter_state(0, 0), 2);
        p.update(0, 0, true);
        assert_eq!(p.counter_state(0, 0), 3);
    }
}
