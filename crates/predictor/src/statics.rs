//! Static (non-learning) predictors — the simplest baselines.

use crate::BranchPredictor;

/// Predicts a fixed direction for every branch.
///
/// # Examples
///
/// ```
/// use cira_predictor::{BranchPredictor, StaticDirection};
///
/// let p = StaticDirection::always_taken();
/// assert!(p.predict(0x400, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticDirection {
    taken: bool,
}

impl StaticDirection {
    /// Predicts taken for every branch.
    pub fn always_taken() -> Self {
        Self { taken: true }
    }

    /// Predicts not-taken for every branch.
    pub fn always_not_taken() -> Self {
        Self { taken: false }
    }
}

impl BranchPredictor for StaticDirection {
    fn predict(&self, _pc: u64, _bhr: u64) -> bool {
        self.taken
    }

    fn update(&mut self, _pc: u64, _bhr: u64, _taken: bool) {}

    fn describe(&self) -> String {
        if self.taken {
            "static(taken)".to_owned()
        } else {
            "static(not-taken)".to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_directions() {
        let mut t = StaticDirection::always_taken();
        let n = StaticDirection::always_not_taken();
        assert!(t.predict(0, 0));
        assert!(!n.predict(0, 0));
        t.update(0, 0, false); // no-op
        assert!(t.predict(0, 0));
    }

    #[test]
    fn describe_names() {
        assert_eq!(StaticDirection::always_taken().describe(), "static(taken)");
        assert_eq!(
            StaticDirection::always_not_taken().describe(),
            "static(not-taken)"
        );
    }
}
