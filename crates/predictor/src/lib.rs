//! # cira-predictor
//!
//! Dynamic branch predictors for the `cira` workspace — the substrate under
//! the confidence mechanisms of Jacobsen, Rotenberg & Smith (MICRO-29,
//! 1996).
//!
//! The paper's experiments sit on top of a **gshare** predictor (McFarling,
//! DEC WRL TN-36): 2^16 two-bit counters indexed by the XOR of PC bits 17..2
//! and a 16-bit global branch history register. This crate provides that
//! predictor ([`Gshare`]), the smaller 4K configuration of §5.3, and a
//! family of baselines ([`Bimodal`], [`GSelect`], [`LocalTwoLevel`],
//! [`Hybrid`], [`StaticDirection`], and the anti-aliasing [`Agree`]
//! predictor) used for context, for the hybrid-selector application, and
//! for the small-table aliasing studies.
//!
//! ## Architecture
//!
//! The **global history register lives outside the predictors**: the
//! simulation driver owns a [`HistoryRegister`] and passes its value to
//! [`BranchPredictor::predict`] / [`BranchPredictor::update`]. This mirrors
//! the hardware (one BHR feeding several structures) and lets confidence
//! tables share exactly the history the predictor saw — which the paper's
//! PC⊕BHR confidence indexing requires.
//!
//! # Examples
//!
//! ```
//! use cira_predictor::{BranchPredictor, Gshare, HistoryRegister};
//!
//! let mut predictor = Gshare::paper_large();
//! let mut bhr = HistoryRegister::new(16);
//! // drive one branch through the predictor
//! let predicted = predictor.predict(0x4000, bhr.value());
//! let actual = true;
//! predictor.update(0x4000, bhr.value(), actual);
//! bhr.push(actual);
//! let _ = predicted == actual;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agree;
pub mod bimodal;
pub mod counter;
pub mod gselect;
pub mod gshare;
pub mod history;
pub mod hybrid;
pub mod local;
pub mod packed;
pub mod state;
pub mod statics;
pub mod tage;

pub use agree::Agree;
pub use bimodal::Bimodal;
pub use counter::{SaturatingCounter, TwoBitCounter};
pub use gselect::GSelect;
pub use gshare::Gshare;
pub use history::HistoryRegister;
pub use hybrid::Hybrid;
pub use local::LocalTwoLevel;
pub use packed::PackedTwoBit;
pub use statics::StaticDirection;
pub use tage::{Tage, TageScLite};

/// Which structure inside a predictor supplied the final direction.
///
/// Single-table predictors (gshare, bimodal, …) always report
/// [`Provider::Base`]; TAGE-class predictors report which tagged
/// component matched, or the loop / statistical-corrector side predictor
/// when one of those overrode the tagged match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// The predictor's base (default) structure — the whole predictor for
    /// single-table designs, the bimodal table for TAGE.
    Base,
    /// Tagged component `n` (1-based, longer history = higher `n`).
    Tagged(u8),
    /// The loop predictor override (TAGE-SC-lite).
    Loop,
    /// The statistical-corrector override (TAGE-SC-lite).
    Corrector,
}

/// A prediction with its provenance: the direction, which structure
/// provided it, and how confident that structure is.
///
/// `strength` is on a fixed `0..=`[`Prediction::MAX_STRENGTH`] scale so
/// confidence mechanisms can bucket on it without knowing the predictor:
/// `0` means "no self-assessment" (the default for predictors predating
/// this API), higher is more confident. The scale only needs to
/// *partition* predictions usefully — the coverage analysis orders
/// buckets by measured misprediction rate, not by the raw value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (`true` = taken). Always equals what
    /// [`BranchPredictor::predict`] returns for the same `(pc, bhr)`.
    pub taken: bool,
    /// The structure that supplied the direction.
    pub provider: Provider,
    /// Self-assessed confidence, `0..=`[`Prediction::MAX_STRENGTH`].
    pub strength: u8,
}

impl Prediction {
    /// Largest value [`strength`](Prediction::strength) may take.
    pub const MAX_STRENGTH: u8 = 7;

    /// A prediction carrying no self-assessment (provider
    /// [`Provider::Base`], strength 0) — what the default
    /// [`BranchPredictor::predict_full`] wrapper reports.
    pub fn unassessed(taken: bool) -> Self {
        Prediction {
            taken,
            provider: Provider::Base,
            strength: 0,
        }
    }
}

/// A dynamic conditional-branch direction predictor.
///
/// `bhr` is the current global-history value supplied by the driver (see
/// the crate docs); predictors that do not use global history ignore it.
///
/// Implementations must be deterministic: identical call sequences yield
/// identical predictions.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` (`true` = taken).
    fn predict(&self, pc: u64, bhr: u64) -> bool;

    /// Trains the predictor with the resolved direction.
    ///
    /// `bhr` must be the same global-history value that was passed to the
    /// matching [`predict`](Self::predict) call.
    fn update(&mut self, pc: u64, bhr: u64, taken: bool);

    /// [`predict`](Self::predict) followed by [`update`](Self::update) as
    /// one call, returning the prediction. Overrides may share work between
    /// the two halves (e.g. compute the table index once) but must remain
    /// bit-identical to the default — hot loops rely on that.
    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        let predicted = self.predict(pc, bhr);
        self.update(pc, bhr, taken);
        predicted
    }

    /// Predicts with provenance: the direction plus which internal
    /// structure provided it and that structure's self-assessed
    /// confidence (see [`Prediction`]).
    ///
    /// The returned direction must equal [`predict`](Self::predict) for
    /// the same `(pc, bhr)` — `predict` is a projection of this call, and
    /// the replay kernels rely on the two never disagreeing. The default
    /// wraps `predict` and reports no self-assessment
    /// ([`Prediction::unassessed`]), which keeps every pre-existing
    /// predictor semantically untouched.
    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        Prediction::unassessed(self.predict(pc, bhr))
    }

    /// [`predict_full`](Self::predict_full) followed by
    /// [`update`](Self::update) as one call, returning the full
    /// prediction. Overrides may share work between the two halves but
    /// must remain bit-identical to the default.
    fn predict_train_full(&mut self, pc: u64, bhr: u64, taken: bool) -> Prediction {
        let prediction = self.predict_full(pc, bhr);
        self.update(pc, bhr, taken);
        prediction
    }

    /// Predicts and trains a whole batch of resolved branches, writing
    /// whether each prediction was correct into `out_correct`.
    ///
    /// `bhrs[i]` must be the global-history value *before* record `i`
    /// resolved — the same value a scalar driver would pass to
    /// [`predict_train`](Self::predict_train). Records are processed in
    /// order: record `i`'s training is visible to record `j > i`, exactly
    /// as in the scalar loop.
    ///
    /// The default implementation is the scalar per-record loop; overrides
    /// (gshare, gselect, bimodal, agree) substitute the branchless
    /// lane-parallel kernel and **must remain bit-identical** to the
    /// default — the replay engine's scalar-equivalence suite relies on it.
    ///
    /// # Panics
    ///
    /// Panics if the four slices differ in length.
    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        assert_batch_shape(pcs, bhrs, takens, out_correct);
        for (((&pc, &h), &t), oc) in pcs
            .iter()
            .zip(bhrs)
            .zip(takens)
            .zip(out_correct.iter_mut())
        {
            *oc = self.predict_train(pc, h, t) == t;
        }
    }

    /// Short human-readable description (e.g. `"gshare(16,16)"`).
    fn describe(&self) -> String;

    /// Appends this predictor's **mutable** state (table words, histories,
    /// counters) to `out` using the [`state`] byte discipline. The
    /// immutable configuration — table sizes, index widths — is *not*
    /// serialized: checkpoints carry the spec string separately and rebuild
    /// the predictor before loading state into it.
    ///
    /// Stateless predictors write nothing (the default).
    fn state_save(&self, _out: &mut Vec<u8>) {}

    /// Restores mutable state from bytes produced by
    /// [`state_save`](Self::state_save) on an **identically configured**
    /// instance. After a successful load the predictor must behave
    /// bit-identically to the instance that was saved.
    ///
    /// # Errors
    ///
    /// Returns a message if the blob is truncated, oversized, or does not
    /// match this predictor's configuration. The default accepts only an
    /// empty blob (the stateless predictor's save output).
    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} carries no serializable state but got a {}-byte blob",
                self.describe(),
                bytes.len()
            ))
        }
    }
}

/// Validates that the four batch slices agree in length.
pub(crate) fn assert_batch_shape(pcs: &[u64], bhrs: &[u64], takens: &[bool], out: &[bool]) {
    assert!(
        pcs.len() == bhrs.len() && pcs.len() == takens.len() && pcs.len() == out.len(),
        "batch slices disagree in length: pcs {} bhrs {} takens {} out {}",
        pcs.len(),
        bhrs.len(),
        takens.len(),
        out.len()
    );
}

/// Pins a predictor to the scalar per-record replay path.
///
/// Forwards everything *except* [`BranchPredictor::predict_train_batch`],
/// so the trait's default scalar loop runs even when the wrapped predictor
/// carries a vectorized override. This is the reference side of the
/// scalar-vs-vector differential tests and of the `engine_throughput`
/// kernel comparison; it is not intended for production replays.
#[derive(Debug, Clone)]
pub struct ScalarKernel<P>(pub P);

impl<P: BranchPredictor> BranchPredictor for ScalarKernel<P> {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        self.0.predict(pc, bhr)
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        self.0.update(pc, bhr, taken)
    }

    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        self.0.predict_train(pc, bhr, taken)
    }

    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        self.0.predict_full(pc, bhr)
    }

    fn predict_train_full(&mut self, pc: u64, bhr: u64, taken: bool) -> Prediction {
        self.0.predict_train_full(pc, bhr, taken)
    }

    // predict_train_batch deliberately NOT forwarded: the default
    // per-record loop over `predict_train` is the scalar reference.

    fn describe(&self) -> String {
        self.0.describe()
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        self.0.state_save(out)
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.0.state_load(bytes)
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        (**self).predict(pc, bhr)
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        (**self).update(pc, bhr, taken)
    }

    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        (**self).predict_train(pc, bhr, taken)
    }

    fn predict_full(&self, pc: u64, bhr: u64) -> Prediction {
        (**self).predict_full(pc, bhr)
    }

    fn predict_train_full(&mut self, pc: u64, bhr: u64, taken: bool) -> Prediction {
        (**self).predict_train_full(pc, bhr, taken)
    }

    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        (**self).predict_train_batch(pcs, bhrs, takens, out_correct)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        (**self).state_save(out)
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).state_load(bytes)
    }
}

/// Number of table entries implied by an index width, validating bounds.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 28 (a 256M-entry table is assumed
/// to be a configuration mistake).
pub(crate) fn table_len(bits: u32) -> usize {
    assert!(
        (1..=28).contains(&bits),
        "table index width must be 1..=28 bits, got {bits}"
    );
    1usize << bits
}

/// Masks `value` to the low `bits` bits.
pub(crate) fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_len_powers() {
        assert_eq!(table_len(1), 2);
        assert_eq!(table_len(12), 4096);
        assert_eq!(table_len(16), 65536);
    }

    #[test]
    #[should_panic(expected = "1..=28")]
    fn table_len_rejects_zero() {
        table_len(0);
    }

    #[test]
    #[should_panic(expected = "1..=28")]
    fn table_len_rejects_huge() {
        table_len(29);
    }

    #[test]
    fn boxed_predictor_dispatches() {
        let mut p: Box<dyn BranchPredictor> = Box::new(crate::Bimodal::new(4));
        for _ in 0..4 {
            p.update(0x40, 0, false);
        }
        assert!(!p.predict(0x40, 0));
        assert_eq!(p.describe(), "bimodal(4)");
    }

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xffff);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn default_batch_is_the_scalar_loop() {
        // LocalTwoLevel has no batch override, so predict_train_batch must
        // behave exactly like the per-record loop.
        let mut batched = crate::LocalTwoLevel::new(4, 4);
        let mut serial = crate::LocalTwoLevel::new(4, 4);
        let pcs = [0x40u64, 0x80, 0x40, 0x40, 0x80];
        let bhrs = [0u64; 5];
        let takens = [true, false, true, true, false];
        let mut out = [false; 5];
        batched.predict_train_batch(&pcs, &bhrs, &takens, &mut out);
        for i in 0..5 {
            let correct = serial.predict_train(pcs[i], bhrs[i], takens[i]) == takens[i];
            assert_eq!(out[i], correct, "record {i}");
        }
    }

    #[test]
    fn scalar_kernel_suppresses_batch_override() {
        // Same inputs through the vector batch and through ScalarKernel:
        // outputs and final table state must agree (the override is
        // bit-identical), and ScalarKernel must expose the inner describe.
        let mut vector = crate::Gshare::new(4, 4);
        let mut scalar = ScalarKernel(crate::Gshare::new(4, 4));
        assert_eq!(scalar.describe(), "gshare(4,4)");
        let pcs: Vec<u64> = (0..200u64).map(|i| i * 4).collect();
        let bhrs: Vec<u64> = (0..200u64).map(|i| i * 7).collect();
        let takens: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let mut out_v = vec![false; 200];
        let mut out_s = vec![false; 200];
        vector.predict_train_batch(&pcs, &bhrs, &takens, &mut out_v);
        scalar.predict_train_batch(&pcs, &bhrs, &takens, &mut out_s);
        assert_eq!(out_v, out_s);
        assert_eq!(vector.counter_state(0, 0), scalar.0.counter_state(0, 0));
    }

    #[test]
    #[should_panic(expected = "disagree in length")]
    fn batch_shape_mismatch_rejected() {
        let mut p = crate::Bimodal::new(4);
        let mut out = [false; 2];
        p.predict_train_batch(&[0, 4, 8], &[0, 0, 0], &[true, true, true], &mut out);
    }

    /// The doc-promised panic on mismatched batch slices must hold for
    /// *every* predictor — the default scalar loop, every vectorized
    /// override, and dyn dispatch — not just whichever override happens
    /// to check. One ragged call per implementation.
    #[test]
    fn batch_shape_contract_is_uniform() {
        let predictors: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(crate::Gshare::new(4, 4)),
            Box::new(crate::GSelect::new(4, 2)),
            Box::new(crate::Bimodal::new(4)),
            Box::new(crate::Agree::new(4, 4, 4)),
            Box::new(crate::LocalTwoLevel::new(4, 4)),
            Box::new(crate::Hybrid::new(
                crate::Gshare::new(4, 4),
                crate::Bimodal::new(4),
                4,
            )),
            Box::new(crate::StaticDirection::always_taken()),
            Box::new(crate::Tage::new(6, 4, 2, 16, 7)),
            Box::new(crate::TageScLite::new(6, 4, 2, 16, 7)),
            Box::new(ScalarKernel(crate::Gshare::new(4, 4))),
        ];
        for mut p in predictors {
            let name = p.describe();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut out = [false; 2];
                p.predict_train_batch(&[0, 4, 8], &[0, 0, 0], &[true, true, true], &mut out);
            }));
            assert!(result.is_err(), "{name} accepted ragged batch slices");
        }
    }

    #[test]
    fn default_predict_full_wraps_predict() {
        let mut p = crate::Bimodal::new(4);
        for _ in 0..4 {
            p.update(0x40, 0, true);
        }
        let full = p.predict_full(0x40, 0);
        assert_eq!(full, Prediction::unassessed(true));
        assert_eq!(full.taken, p.predict(0x40, 0));
        assert_eq!(full.provider, Provider::Base);
        assert_eq!(full.strength, 0);
    }

    #[test]
    fn predict_train_full_matches_predict_full_then_update() {
        let mut a = crate::Gshare::new(6, 6);
        let mut b = crate::Gshare::new(6, 6);
        let mut x = 3u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (pc, bhr, taken) = (x & 0xfff, x >> 20, x >> 63 == 1);
            let via_split = a.predict_full(pc, bhr);
            a.update(pc, bhr, taken);
            let via_fused = b.predict_train_full(pc, bhr, taken);
            assert_eq!(via_split, via_fused);
        }
    }

    #[test]
    fn full_prediction_forwards_through_box_and_scalar_kernel() {
        // A provider-aware predictor keeps its provenance through both
        // wrappers — Box<dyn> and ScalarKernel must not flatten it back
        // to the unassessed default.
        let tage = crate::Tage::new(6, 4, 2, 16, 7);
        let boxed: Box<dyn BranchPredictor> = Box::new(tage.clone());
        let scalar = ScalarKernel(tage.clone());
        for pc in [0u64, 0x40, 0x84] {
            assert_eq!(tage.predict_full(pc, 0xa5), boxed.predict_full(pc, 0xa5));
            assert_eq!(tage.predict_full(pc, 0xa5), scalar.predict_full(pc, 0xa5));
        }
    }
}
