//! SWAR-packed two-bit saturating counters: 32 counters per `u64` word.
//!
//! This is the storage layer behind the vectorized replay kernel. A
//! gshare(16,16) table shrinks from 512 KiB of `TwoBitCounter` structs to
//! 16 KiB of packed words — small enough to stay resident in L1 — and the
//! saturating update becomes straight-line arithmetic (no branches for the
//! predictor state machine), so the replay loop retires at a steady rate
//! regardless of how predictable the trace is.
//!
//! The state machine is bit-identical to [`TwoBitCounter`]: a 0..=3
//! saturating counter where states 2..=3 predict taken.
//!
//! [`TwoBitCounter`]: crate::counter::TwoBitCounter

/// Counters stored per packed word.
const LANES: usize = 32;

/// A table of two-bit saturating counters packed 32 per `u64`.
///
/// Counter `i` occupies bits `2*(i % 32) .. 2*(i % 32) + 2` of word
/// `i / 32`; within a lane the two bits are the plain binary state 0..=3.
///
/// # Examples
///
/// ```
/// use cira_predictor::packed::PackedTwoBit;
///
/// let mut t = PackedTwoBit::new(64, 2); // weakly taken
/// assert!(t.predicts_taken(33));
/// t.train(33, false);
/// t.train(33, false);
/// assert_eq!(t.state(33), 0);
/// assert!(!t.predicts_taken(33));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTwoBit {
    words: Vec<u64>,
    len: usize,
}

impl PackedTwoBit {
    /// Creates a table of `len` counters, all in `init_state`.
    ///
    /// # Panics
    ///
    /// Panics if `init_state > 3`.
    pub fn new(len: usize, init_state: u32) -> Self {
        assert!(init_state <= 3, "2-bit counter state must be 0..=3");
        // Replicate the 2-bit state into every lane of the word.
        let pattern = u64::from(init_state) * 0x5555_5555_5555_5555;
        Self {
            words: vec![pattern; len.div_ceil(LANES)],
            len,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no counters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The state 0..=3 of counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn state(&self, i: usize) -> u32 {
        assert!(i < self.len, "counter {i} out of range {}", self.len);
        ((self.words[i / LANES] >> ((i % LANES) * 2)) & 3) as u32
    }

    /// Sets counter `i` to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `state > 3`.
    #[inline]
    pub fn set_state(&mut self, i: usize, state: u32) {
        assert!(i < self.len, "counter {i} out of range {}", self.len);
        assert!(state <= 3, "2-bit counter state must be 0..=3");
        let sh = (i % LANES) * 2;
        let w = &mut self.words[i / LANES];
        *w = (*w & !(3u64 << sh)) | (u64::from(state) << sh);
    }

    /// The direction counter `i` predicts (states 2..=3 predict taken).
    #[inline]
    pub fn predicts_taken(&self, i: usize) -> bool {
        self.state(i) >= 2
    }

    /// Trains counter `i` toward `taken` with branchless saturation.
    #[inline]
    pub fn train(&mut self, i: usize, taken: bool) {
        self.predict_train(i, taken);
    }

    /// Reads the prediction of counter `i` and trains it, as one
    /// read-modify-write of the packed word. Returns the *pre-update*
    /// prediction — bit-identical to `predicts_taken` followed by `train`.
    #[inline]
    pub fn predict_train(&mut self, i: usize, taken: bool) -> bool {
        let sh = (i % LANES) * 2;
        let w = &mut self.words[i / LANES];
        let s = (*w >> sh) & 3;
        let t = taken as u64;
        // Saturating ±1 without branches: the inc term is zero at state 3,
        // the dec term is zero at state 0, and `taken` selects between them.
        let s2 = s + (t & (s != 3) as u64) - ((1 - t) & (s != 0) as u64);
        *w = (*w & !(3u64 << sh)) | (s2 << sh);
        s >= 2
    }

    /// The packed backing words — 32 counters per `u64`, counter `i` in
    /// bits `2*(i % 32)..` of word `i / 32`. Exposed for checkpoint
    /// serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Replaces the backing words with `words` (a checkpoint restore).
    /// Every 2-bit lane is a valid counter state by construction, so only
    /// the word count needs validating.
    ///
    /// # Errors
    ///
    /// Returns a message if `words` does not have exactly the word count
    /// this table was created with.
    pub fn load_words(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.words.len() {
            return Err(format!(
                "packed table restore: got {} words, table of {} counters needs {}",
                words.len(),
                self.len,
                self.words.len()
            ));
        }
        self.words.copy_from_slice(words);
        Ok(())
    }

    /// Hints that the word holding counter `i` will be accessed soon.
    ///
    /// On x86_64 this issues an L1 prefetch; elsewhere it degrades to a
    /// plain read the optimizer must keep (the portable "touch" phase of a
    /// two-phase gather). Out-of-range indices are ignored.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if let Some(slot) = self.words.get(i / LANES) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `slot` is a live reference, so the pointer is valid;
            // prefetch has no architectural side effects.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    (slot as *const u64).cast::<i8>(),
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                std::hint::black_box(*slot);
            }
        }
    }
}

/// Sub-chunk size for the two-phase gather: indices for the *next* block
/// are computed and prefetched while the current block's counters are
/// updated serially, overlapping table-miss latency with update work.
pub(crate) const BLOCK: usize = 64;

/// Shared batch kernel for predictors whose table index is a pure function
/// of `(pc, bhr)` — gshare, gselect, bimodal.
///
/// Three phases per 64-record sub-chunk: (1) a tight, auto-vectorizable
/// index-computation loop, (2) a prefetch/touch pass over the *next*
/// sub-chunk's table words, (3) a serial branchless read-modify-write pass.
/// Phase 3 must stay serial and in program order: two records in the same
/// batch may alias the same counter, and the second must observe the
/// first's update.
pub(crate) fn batch_predict_train(
    table: &mut PackedTwoBit,
    pcs: &[u64],
    bhrs: &[u64],
    takens: &[bool],
    out_correct: &mut [bool],
    index_of: impl Fn(u64, u64) -> usize,
) {
    let n = pcs.len();
    let mut cur = [0u32; BLOCK];
    let mut nxt = [0u32; BLOCK];
    let mut start = 0;
    let mut c = BLOCK.min(n);
    fill_indices(&mut cur[..c], &pcs[..c], &bhrs[..c], &index_of);
    for &i in &cur[..c] {
        table.prefetch(i as usize);
    }
    while start < n {
        let next_start = start + c;
        let nc = BLOCK.min(n - next_start);
        if nc > 0 {
            fill_indices(
                &mut nxt[..nc],
                &pcs[next_start..next_start + nc],
                &bhrs[next_start..next_start + nc],
                &index_of,
            );
            for &i in &nxt[..nc] {
                table.prefetch(i as usize);
            }
        }
        let out = &mut out_correct[start..start + c];
        for ((&i, &t), oc) in cur[..c].iter().zip(&takens[start..start + c]).zip(out) {
            *oc = table.predict_train(i as usize, t) == t;
        }
        std::mem::swap(&mut cur, &mut nxt);
        start = next_start;
        c = nc;
    }
}

/// Phase-1 helper: computes table indices for one sub-chunk.
#[inline]
fn fill_indices(out: &mut [u32], pcs: &[u64], bhrs: &[u64], index_of: impl Fn(u64, u64) -> usize) {
    for (slot, (&pc, &h)) in out.iter_mut().zip(pcs.iter().zip(bhrs)) {
        *slot = index_of(pc, h) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::TwoBitCounter;

    #[test]
    fn matches_two_bit_counter_state_machine() {
        // Drive a packed counter and a reference TwoBitCounter through the
        // same pseudo-random outcome sequence from every initial state.
        for init in 0..=3u32 {
            let mut packed = PackedTwoBit::new(40, init);
            let mut reference = TwoBitCounter::with_state(init);
            let lane = 37; // straddles into the second word
            let mut x = 0x9e37_79b9_u32;
            for _ in 0..200 {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                let taken = x & 1 == 1;
                assert_eq!(packed.predicts_taken(lane), reference.predicts_taken());
                let predicted = packed.predict_train(lane, taken);
                assert_eq!(predicted, reference.predicts_taken());
                reference.train(taken);
                assert_eq!(packed.state(lane), reference.state());
            }
        }
    }

    #[test]
    fn lanes_are_independent() {
        let mut t = PackedTwoBit::new(96, 2);
        t.train(0, true); // 3
        t.train(1, false); // 1
        t.train(64, false); // 1 (third word)
        assert_eq!(t.state(0), 3);
        assert_eq!(t.state(1), 1);
        assert_eq!(t.state(2), 2); // untouched neighbor
        assert_eq!(t.state(64), 1);
        assert_eq!(t.state(95), 2);
    }

    #[test]
    fn set_state_round_trips() {
        let mut t = PackedTwoBit::new(33, 0);
        for s in 0..=3 {
            t.set_state(32, s);
            assert_eq!(t.state(32), s);
            assert_eq!(t.state(31), 0, "neighbor lane must not change");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn state_bounds_checked() {
        PackedTwoBit::new(10, 0).state(10);
    }

    #[test]
    #[should_panic(expected = "0..=3")]
    fn init_state_validated() {
        PackedTwoBit::new(4, 4);
    }

    #[test]
    fn prefetch_out_of_range_is_ignored() {
        PackedTwoBit::new(4, 0).prefetch(1 << 20);
    }

    #[test]
    fn batch_kernel_matches_serial_train() {
        // Random pcs/histories with heavy aliasing into a tiny table, so
        // the serial-RMW ordering requirement is actually exercised.
        let mut x = 1u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n = 300; // non-multiple of the 64-lane block
        let pcs: Vec<u64> = (0..n).map(|_| next()).collect();
        let bhrs: Vec<u64> = (0..n).map(|_| next()).collect();
        let takens: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
        let index_of = |pc: u64, h: u64| ((pc >> 2) ^ h) as usize & 0xf;

        let mut batch_table = PackedTwoBit::new(16, 2);
        let mut out = vec![false; n];
        batch_predict_train(&mut batch_table, &pcs, &bhrs, &takens, &mut out, index_of);

        let mut serial_table = PackedTwoBit::new(16, 2);
        for j in 0..n {
            let predicted = serial_table.predict_train(index_of(pcs[j], bhrs[j]), takens[j]);
            assert_eq!(out[j], predicted == takens[j], "record {j}");
        }
        assert_eq!(batch_table, serial_table);
    }

    #[test]
    fn batch_kernel_handles_empty_input() {
        let mut t = PackedTwoBit::new(4, 2);
        batch_predict_train(&mut t, &[], &[], &[], &mut [], |_, _| 0);
        assert_eq!(t, PackedTwoBit::new(4, 2));
    }
}
