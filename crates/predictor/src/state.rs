//! Byte-level helpers for serializing predictor and mechanism state.
//!
//! The checkpoint codec (`cira-store`'s `CIRD` format) persists the
//! *mutable* state of a predictor or confidence mechanism — table words,
//! counters, history registers — while the immutable configuration (table
//! sizes, index widths, init policies) travels separately as a spec string
//! and is rebuilt before the state is loaded. These helpers define the one
//! byte discipline every `state_save`/`state_load` implementation uses:
//! little-endian fixed-width integers, and `u32`-count-prefixed slices.
//!
//! Readers validate every length against the remaining input before
//! allocating, so a truncated or corrupted blob fails cleanly instead of
//! requesting a multi-gigabyte vector.

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` count followed by each word little-endian.
pub fn put_u64_slice(out: &mut Vec<u8>, words: &[u64]) {
    put_u32(out, words.len() as u32);
    for w in words {
        put_u64(out, *w);
    }
}

/// Appends a `u32` count followed by each value little-endian.
pub fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_u32(out, *v);
    }
}

/// Appends a `u32` byte length followed by the raw bytes.
pub fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    put_u32(out, blob.len() as u32);
    out.extend_from_slice(blob);
}

/// A bounds-checked cursor over a state blob.
///
/// # Examples
///
/// ```
/// use cira_predictor::state::{put_u64_slice, StateReader};
///
/// let mut buf = Vec::new();
/// put_u64_slice(&mut buf, &[1, 2, 3]);
/// let mut r = StateReader::new(&buf);
/// assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
/// r.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "state blob truncated: need {n} bytes at offset {}, have {}",
                self.at,
                self.remaining()
            ));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-count-prefixed slice of `u64` words.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, String> {
        let count = self.u32()? as usize;
        if count > self.remaining() / 8 {
            return Err(format!(
                "state blob declares {count} u64 words but only {} bytes remain",
                self.remaining()
            ));
        }
        (0..count).map(|_| self.u64()).collect()
    }

    /// Reads a `u32`-count-prefixed slice of `u32` values.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, String> {
        let count = self.u32()? as usize;
        if count > self.remaining() / 4 {
            return Err(format!(
                "state blob declares {count} u32 values but only {} bytes remain",
                self.remaining()
            ));
        }
        (0..count).map(|_| self.u32()).collect()
    }

    /// Reads a `u32`-length-prefixed byte blob.
    pub fn blob(&mut self) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Succeeds only if every byte was consumed.
    pub fn finish(self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!(
                "state blob has {} trailing bytes after offset {}",
                self.remaining(),
                self.at
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        let mut r = StateReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        r.finish().unwrap();
    }

    #[test]
    fn slices_and_blobs_round_trip() {
        let mut buf = Vec::new();
        put_u64_slice(&mut buf, &[3, 1, 4]);
        put_u32_slice(&mut buf, &[1, 5, 9, 2]);
        put_blob(&mut buf, b"cird");
        let mut r = StateReader::new(&buf);
        assert_eq!(r.u64_vec().unwrap(), vec![3, 1, 4]);
        assert_eq!(r.u32_vec().unwrap(), vec![1, 5, 9, 2]);
        assert_eq!(r.blob().unwrap(), b"cird");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        buf.pop();
        let mut r = StateReader::new(&buf);
        assert!(r.u64().unwrap_err().contains("truncated"));
    }

    #[test]
    fn hostile_count_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // declares 4 billion words, holds none
        let mut r = StateReader::new(&buf);
        assert!(r.u64_vec().unwrap_err().contains("declares"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = StateReader::new(&[0u8; 3]);
        assert!(r.finish().unwrap_err().contains("trailing"));
    }
}
