//! Saturating counters — the storage primitive of both branch predictors
//! and the paper's compressed confidence tables.

use std::fmt;

/// An up/down counter saturating at `0` and `max`.
///
/// Used directly for confidence reductions (§5.1 of the paper uses 0..=16
/// counters) and, through [`TwoBitCounter`], for prediction tables.
///
/// # Examples
///
/// ```
/// use cira_predictor::counter::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(16, 16); // start saturated high
/// c.dec();
/// assert_eq!(c.value(), 15);
/// c.set(0);
/// c.dec();
/// assert_eq!(c.value(), 0); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates a counter with the given initial value and maximum.
    ///
    /// # Panics
    ///
    /// Panics if `value > max`.
    pub fn new(value: u32, max: u32) -> Self {
        assert!(value <= max, "initial value {value} exceeds max {max}");
        Self { value, max }
    }

    /// Current value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Saturation maximum.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Sets the value.
    ///
    /// # Panics
    ///
    /// Panics if `value > max`.
    pub fn set(&mut self, value: u32) {
        assert!(value <= self.max, "value {value} exceeds max {}", self.max);
        self.value = value;
    }

    /// Increments, saturating at `max`. Returns the new value.
    pub fn inc(&mut self) -> u32 {
        if self.value < self.max {
            self.value += 1;
        }
        self.value
    }

    /// Decrements, saturating at `0`. Returns the new value.
    pub fn dec(&mut self) -> u32 {
        if self.value > 0 {
            self.value -= 1;
        }
        self.value
    }

    /// Resets to zero (used by the paper's resetting counters).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Whether the counter sits at its maximum.
    pub fn is_saturated_high(&self) -> bool {
        self.value == self.max
    }

    /// Whether the counter sits at zero.
    pub fn is_saturated_low(&self) -> bool {
        self.value == 0
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

/// The classic 2-bit bimodal prediction counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. The paper initializes
/// prediction tables to *weakly taken* (state 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoBitCounter(SaturatingCounter);

impl TwoBitCounter {
    /// A counter in the weakly-taken state — the paper's initial value.
    pub fn weakly_taken() -> Self {
        TwoBitCounter(SaturatingCounter::new(2, 3))
    }

    /// A counter in an arbitrary state 0..=3.
    ///
    /// # Panics
    ///
    /// Panics if `state > 3`.
    pub fn with_state(state: u32) -> Self {
        TwoBitCounter(SaturatingCounter::new(state, 3))
    }

    /// Current state 0..=3.
    pub fn state(&self) -> u32 {
        self.0.value()
    }

    /// The direction this counter predicts.
    pub fn predicts_taken(&self) -> bool {
        self.0.value() >= 2
    }

    /// Trains the counter toward the resolved direction.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0.inc();
        } else {
            self.0.dec();
        }
    }
}

impl Default for TwoBitCounter {
    /// Same as [`TwoBitCounter::weakly_taken`].
    fn default() -> Self {
        Self::weakly_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(0, 3);
        assert!(c.is_saturated_low());
        assert_eq!(c.dec(), 0);
        assert_eq!(c.inc(), 1);
        assert_eq!(c.inc(), 2);
        assert_eq!(c.inc(), 3);
        assert_eq!(c.inc(), 3);
        assert!(c.is_saturated_high());
    }

    #[test]
    fn reset_goes_to_zero() {
        let mut c = SaturatingCounter::new(5, 16);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn set_within_bounds() {
        let mut c = SaturatingCounter::new(0, 16);
        c.set(16);
        assert!(c.is_saturated_high());
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn new_rejects_value_above_max() {
        SaturatingCounter::new(4, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn set_rejects_value_above_max() {
        SaturatingCounter::new(0, 3).set(4);
    }

    #[test]
    fn display_shows_value_and_max() {
        assert_eq!(SaturatingCounter::new(2, 16).to_string(), "2/16");
    }

    #[test]
    fn two_bit_state_machine() {
        let mut c = TwoBitCounter::weakly_taken();
        assert_eq!(c.state(), 2);
        assert!(c.predicts_taken());
        c.train(false); // 1
        assert!(!c.predicts_taken());
        c.train(false); // 0
        c.train(false); // stays 0
        assert_eq!(c.state(), 0);
        c.train(true); // 1
        assert!(!c.predicts_taken()); // hysteresis
        c.train(true); // 2
        assert!(c.predicts_taken());
        c.train(true); // 3
        c.train(true); // stays 3
        assert_eq!(c.state(), 3);
    }

    #[test]
    fn two_bit_default_is_weakly_taken() {
        assert_eq!(TwoBitCounter::default().state(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn two_bit_with_state_rejects_high() {
        TwoBitCounter::with_state(4);
    }
}
