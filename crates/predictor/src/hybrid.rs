//! McFarling-style combining (hybrid) predictor.
//!
//! Two component predictors run in parallel; a PC-indexed chooser table of
//! two-bit counters selects which component's prediction to use. The
//! chooser trains only when the components disagree in correctness. The
//! paper's application 3 replaces this ad-hoc chooser with explicit
//! confidence estimates (see `cira-apps::hybrid_selector`).

use crate::counter::TwoBitCounter;
use crate::{mask, table_len, BranchPredictor};

/// Combining predictor over two components.
///
/// Chooser state ≥ 2 selects the **first** component.
///
/// # Examples
///
/// ```
/// use cira_predictor::{Bimodal, BranchPredictor, Gshare, Hybrid};
///
/// let mut p = Hybrid::new(Gshare::new(10, 10), Bimodal::new(10), 10);
/// p.update(0x40, 0, true);
/// let _ = p.predict(0x40, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    first: A,
    second: B,
    chooser: Vec<TwoBitCounter>,
    chooser_bits: u32,
}

impl<A: BranchPredictor, B: BranchPredictor> Hybrid<A, B> {
    /// Creates a hybrid with a `2^chooser_bits`-entry chooser, initialized
    /// to weakly-prefer the first component.
    ///
    /// # Panics
    ///
    /// Panics if `chooser_bits` is outside `1..=28`.
    pub fn new(first: A, second: B, chooser_bits: u32) -> Self {
        cira_obs::debug!("hybrid chooser allocated", chooser_bits = chooser_bits);
        Self {
            first,
            second,
            chooser: vec![TwoBitCounter::weakly_taken(); table_len(chooser_bits)],
            chooser_bits,
        }
    }

    /// Borrows the first component.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// Borrows the second component.
    pub fn second(&self) -> &B {
        &self.second
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) & mask(self.chooser_bits)) as usize
    }

    /// Whether the chooser currently selects the first component for `pc`.
    pub fn selects_first(&self, pc: u64) -> bool {
        self.chooser[self.chooser_index(pc)].predicts_taken()
    }
}

impl<A: BranchPredictor, B: BranchPredictor> BranchPredictor for Hybrid<A, B> {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        if self.selects_first(pc) {
            self.first.predict(pc, bhr)
        } else {
            self.second.predict(pc, bhr)
        }
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let p1 = self.first.predict(pc, bhr);
        let p2 = self.second.predict(pc, bhr);
        let c1 = p1 == taken;
        let c2 = p2 == taken;
        if c1 != c2 {
            let idx = self.chooser_index(pc);
            // Train toward the component that was right.
            self.chooser[idx].train(c1);
        }
        self.first.update(pc, bhr, taken);
        self.second.update(pc, bhr, taken);
    }

    fn describe(&self) -> String {
        format!(
            "hybrid({}+{},chooser {})",
            self.first.describe(),
            self.second.describe(),
            self.chooser_bits
        )
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        let mut first = Vec::new();
        self.first.state_save(&mut first);
        crate::state::put_blob(out, &first);
        let mut second = Vec::new();
        self.second.state_save(&mut second);
        crate::state::put_blob(out, &second);
        let states: Vec<u32> = self.chooser.iter().map(TwoBitCounter::state).collect();
        crate::state::put_u32_slice(out, &states);
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        let first = r.blob()?.to_vec();
        let second = r.blob()?.to_vec();
        let states = r.u32_vec()?;
        if states.len() != self.chooser.len() {
            return Err(format!(
                "hybrid restore: {} chooser states, table needs {}",
                states.len(),
                self.chooser.len()
            ));
        }
        if let Some(s) = states.iter().find(|&&s| s > 3) {
            return Err(format!("hybrid restore: chooser state {s} out of 0..=3"));
        }
        self.first.state_load(&first)?;
        self.second.state_load(&second)?;
        self.chooser = states.iter().map(|&s| TwoBitCounter::with_state(s)).collect();
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bimodal, Gshare, HistoryRegister, StaticDirection};

    #[test]
    fn chooser_migrates_to_better_component() {
        // Component 1 is always-not-taken, component 2 always-taken;
        // on an always-taken branch the chooser must learn component 2.
        let mut p = Hybrid::new(
            StaticDirection::always_not_taken(),
            StaticDirection::always_taken(),
            8,
        );
        assert!(p.selects_first(0x40));
        for _ in 0..4 {
            p.update(0x40, 0, true);
        }
        assert!(!p.selects_first(0x40));
        assert!(p.predict(0x40, 0));
    }

    #[test]
    fn hybrid_tracks_best_component_on_mixed_workload() {
        // Branch A alternates (gshare-friendly), branch B is biased
        // not-taken (bimodal-friendly, and gshare handles it too); the
        // hybrid should approach the better component on each.
        let mut hybrid = Hybrid::new(Gshare::new(10, 10), Bimodal::new(10), 10);
        let mut bhr = HistoryRegister::new(10);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..4000 {
            let (pc, taken) = if i % 2 == 0 {
                (0x100u64, (i / 2) % 2 == 0)
            } else {
                (0x200u64, false)
            };
            let pred = hybrid.predict(pc, bhr.value());
            if i > 2000 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            hybrid.update(pc, bhr.value(), taken);
            bhr.push(taken);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "hybrid accuracy {acc}");
    }

    #[test]
    fn components_accessible() {
        let p = Hybrid::new(Bimodal::new(4), Bimodal::new(5), 4);
        assert_eq!(p.first().bits(), 4);
        assert_eq!(p.second().bits(), 5);
        assert!(p.describe().contains("hybrid(bimodal(4)+bimodal(5)"));
    }
}
