//! The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997).
//!
//! Included because it attacks exactly the failure mode the paper's §5.3
//! measures: destructive aliasing in small shared counter tables. Each
//! static branch gets a *bias bit* (its first observed direction, cached in
//! a PC-indexed table); the shared history-indexed counters then predict
//! whether the branch **agrees** with its bias rather than its absolute
//! direction. Two aliasing branches that both usually agree reinforce each
//! other instead of fighting.

use crate::counter::TwoBitCounter;
use crate::{mask, table_len, BranchPredictor};

/// Agree predictor: PC-indexed bias bits + gshare-style agree counters.
///
/// # Examples
///
/// ```
/// use cira_predictor::{agree::Agree, BranchPredictor};
///
/// let mut p = Agree::new(10, 10, 10);
/// p.update(0x40, 0, false); // first outcome sets the bias
/// assert!(!p.predict(0x40, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Agree {
    /// Agree/disagree counters, indexed like gshare (PC ⊕ BHR).
    counters: Vec<TwoBitCounter>,
    /// Bias bits with a valid flag, indexed by PC.
    bias: Vec<Option<bool>>,
    table_bits: u32,
    history_bits: u32,
    bias_bits: u32,
}

impl Agree {
    /// Creates an agree predictor.
    ///
    /// * `table_bits` — log2 of the agree-counter table size.
    /// * `history_bits` — BHR bits XORed into the counter index.
    /// * `bias_bits` — log2 of the bias-bit table size.
    ///
    /// # Panics
    ///
    /// Panics if any width is outside `1..=28` or
    /// `history_bits > table_bits`.
    pub fn new(table_bits: u32, history_bits: u32, bias_bits: u32) -> Self {
        assert!(
            history_bits <= table_bits,
            "history_bits {history_bits} must not exceed table_bits {table_bits}"
        );
        Self {
            // Weakly-taken state doubles as "weakly agree".
            counters: vec![TwoBitCounter::weakly_taken(); table_len(table_bits)],
            bias: vec![None; table_len(bias_bits)],
            table_bits,
            history_bits,
            bias_bits,
        }
    }

    fn counter_index(&self, pc: u64, bhr: u64) -> usize {
        (((pc >> 2) ^ (bhr & mask(self.history_bits))) & mask(self.table_bits)) as usize
    }

    fn bias_index(&self, pc: u64) -> usize {
        ((pc >> 2) & mask(self.bias_bits)) as usize
    }

    /// The bias direction currently cached for `pc` (None before the
    /// branch's first update, or after an aliasing overwrite).
    pub fn bias_of(&self, pc: u64) -> Option<bool> {
        self.bias[self.bias_index(pc)]
    }
}

impl BranchPredictor for Agree {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        // Until the bias is known, fall back to predicting taken (the
        // common static heuristic).
        let bias = self.bias[self.bias_index(pc)].unwrap_or(true);
        let agrees = self.counters[self.counter_index(pc, bhr)].predicts_taken();
        if agrees {
            bias
        } else {
            !bias
        }
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let bi = self.bias_index(pc);
        let bias = *self.bias[bi].get_or_insert(taken);
        let agreed = taken == bias;
        let ci = self.counter_index(pc, bhr);
        self.counters[ci].train(agreed);
    }

    fn describe(&self) -> String {
        format!(
            "agree({},{},bias {})",
            self.table_bits, self.history_bits, self.bias_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryRegister;

    #[test]
    fn first_update_fixes_bias() {
        let mut p = Agree::new(8, 8, 8);
        assert_eq!(p.bias_of(0x40), None);
        p.update(0x40, 0, false);
        assert_eq!(p.bias_of(0x40), Some(false));
        // Later updates do not overwrite the bias.
        p.update(0x40, 0, true);
        assert_eq!(p.bias_of(0x40), Some(false));
    }

    #[test]
    fn learns_biased_branch_through_agreement() {
        let mut p = Agree::new(10, 10, 10);
        let mut bhr = HistoryRegister::new(10);
        let mut wrong_late = 0;
        for i in 0..2000 {
            let taken = i % 10 != 0; // 90% taken
            let pred = p.predict(0x80, bhr.value());
            if i > 500 && pred != taken && taken {
                wrong_late += 1; // only count majority-direction misses
            }
            p.update(0x80, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(wrong_late < 40, "agree should track the bias: {wrong_late}");
    }

    #[test]
    fn constructive_aliasing_between_agreeing_branches() {
        // Two branches with opposite directions share every counter
        // (1-entry counter table). gshare would fight; agree does not,
        // because both branches agree with their own bias bits.
        let mut p = Agree::new(1, 0, 8);
        let mut miss = 0;
        for i in 0..400 {
            for (pc, taken) in [(0x40u64, true), (0x80u64, false)] {
                if i > 4 && p.predict(pc, 0) != taken {
                    miss += 1;
                }
                p.update(pc, 0, taken);
            }
        }
        assert_eq!(miss, 0, "agreeing branches must not interfere");
    }

    #[test]
    fn gshare_fights_where_agree_does_not() {
        use crate::Gshare;
        let mut g = Gshare::new(1, 0);
        let mut miss = 0;
        for _ in 0..400 {
            for (pc, taken) in [(0x40u64, true), (0x80u64, false)] {
                if g.predict(pc, 0) != taken {
                    miss += 1;
                }
                g.update(pc, 0, taken);
            }
        }
        assert!(
            miss > 300,
            "gshare should thrash on this alias pair: {miss}"
        );
    }

    #[test]
    fn describe_includes_config() {
        assert_eq!(Agree::new(12, 12, 10).describe(), "agree(12,12,bias 10)");
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn history_wider_than_table_rejected() {
        Agree::new(8, 9, 8);
    }
}
