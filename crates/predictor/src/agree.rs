//! The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997).
//!
//! Included because it attacks exactly the failure mode the paper's §5.3
//! measures: destructive aliasing in small shared counter tables. Each
//! static branch gets a *bias bit* (its first observed direction, cached in
//! a PC-indexed table); the shared history-indexed counters then predict
//! whether the branch **agrees** with its bias rather than its absolute
//! direction. Two aliasing branches that both usually agree reinforce each
//! other instead of fighting.

use crate::packed::{PackedTwoBit, BLOCK};
use crate::{assert_batch_shape, mask, table_len, BranchPredictor};

/// Agree predictor: PC-indexed bias bits + gshare-style agree counters.
///
/// # Examples
///
/// ```
/// use cira_predictor::{agree::Agree, BranchPredictor};
///
/// let mut p = Agree::new(10, 10, 10);
/// p.update(0x40, 0, false); // first outcome sets the bias
/// assert!(!p.predict(0x40, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Agree {
    /// Agree/disagree counters, indexed like gshare (PC ⊕ BHR).
    counters: PackedTwoBit,
    /// Whether the bias for entry `i` has been set (bit `i % 64` of word
    /// `i / 64`). Together with `bias_dir` this packs the old
    /// `Vec<Option<bool>>` into two bitmaps for branchless access.
    bias_valid: Vec<u64>,
    /// The cached bias direction; meaningful only where `bias_valid` is set.
    bias_dir: Vec<u64>,
    table_bits: u32,
    history_bits: u32,
    bias_bits: u32,
}

impl Agree {
    /// Creates an agree predictor.
    ///
    /// * `table_bits` — log2 of the agree-counter table size.
    /// * `history_bits` — BHR bits XORed into the counter index.
    /// * `bias_bits` — log2 of the bias-bit table size.
    ///
    /// # Panics
    ///
    /// Panics if any width is outside `1..=28` or
    /// `history_bits > table_bits`.
    pub fn new(table_bits: u32, history_bits: u32, bias_bits: u32) -> Self {
        assert!(
            history_bits <= table_bits,
            "history_bits {history_bits} must not exceed table_bits {table_bits}"
        );
        let bias_words = table_len(bias_bits).div_ceil(64);
        Self {
            // Weakly-taken state doubles as "weakly agree".
            counters: PackedTwoBit::new(table_len(table_bits), 2),
            bias_valid: vec![0; bias_words],
            bias_dir: vec![0; bias_words],
            table_bits,
            history_bits,
            bias_bits,
        }
    }

    fn counter_index(&self, pc: u64, bhr: u64) -> usize {
        (((pc >> 2) ^ (bhr & mask(self.history_bits))) & mask(self.table_bits)) as usize
    }

    fn bias_index(&self, pc: u64) -> usize {
        ((pc >> 2) & mask(self.bias_bits)) as usize
    }

    /// Reads `(valid, direction)` for bias entry `bi`.
    #[inline]
    fn bias_entry(&self, bi: usize) -> (bool, bool) {
        let bit = 1u64 << (bi % 64);
        (
            self.bias_valid[bi / 64] & bit != 0,
            self.bias_dir[bi / 64] & bit != 0,
        )
    }

    /// Installs `taken` as the bias of entry `bi` if it is not yet valid,
    /// and returns the (possibly just-installed) bias — branchless
    /// equivalent of the old `Option::get_or_insert`.
    #[inline]
    fn bias_get_or_insert(&mut self, bi: usize, taken: bool) -> bool {
        let sh = bi % 64;
        let bit = 1u64 << sh;
        let valid = self.bias_valid[bi / 64] & bit != 0;
        let dir = self.bias_dir[bi / 64] & bit != 0;
        let bias = (valid & dir) | (!valid & taken);
        self.bias_dir[bi / 64] |= ((!valid & taken) as u64) << sh;
        self.bias_valid[bi / 64] |= bit;
        bias
    }

    /// The bias direction currently cached for `pc` (None before the
    /// branch's first update, or after an aliasing overwrite).
    pub fn bias_of(&self, pc: u64) -> Option<bool> {
        let (valid, dir) = self.bias_entry(self.bias_index(pc));
        valid.then_some(dir)
    }
}

impl BranchPredictor for Agree {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        // Until the bias is known, fall back to predicting taken (the
        // common static heuristic).
        let (valid, dir) = self.bias_entry(self.bias_index(pc));
        let bias = dir | !valid;
        let agrees = self.counters.predicts_taken(self.counter_index(pc, bhr));
        // agrees → bias, disagrees → !bias, i.e. XNOR.
        !(bias ^ agrees)
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let bi = self.bias_index(pc);
        let bias = self.bias_get_or_insert(bi, taken);
        let agreed = taken == bias;
        let ci = self.counter_index(pc, bhr);
        self.counters.train(ci, agreed);
    }

    fn predict_train(&mut self, pc: u64, bhr: u64, taken: bool) -> bool {
        // Shares the two index computations between the halves; the bias
        // must be read *before* a first-touch install, as in predict.
        let bi = self.bias_index(pc);
        let ci = self.counter_index(pc, bhr);
        let (valid, dir) = self.bias_entry(bi);
        let agrees = self.counters.predicts_taken(ci);
        let predicted = !((dir | !valid) ^ agrees);
        let bias = self.bias_get_or_insert(bi, taken);
        self.counters.train(ci, taken == bias);
        predicted
    }

    fn predict_train_batch(
        &mut self,
        pcs: &[u64],
        bhrs: &[u64],
        takens: &[bool],
        out_correct: &mut [bool],
    ) {
        assert_batch_shape(pcs, bhrs, takens, out_correct);
        let hmask = mask(self.history_bits);
        let tmask = mask(self.table_bits);
        let bmask = mask(self.bias_bits);
        let n = pcs.len();
        let mut ci = [0u32; BLOCK];
        let mut bi = [0u32; BLOCK];
        let mut start = 0;
        while start < n {
            let c = BLOCK.min(n - start);
            // Phase 1: vectorizable index computation for both tables.
            for (slot, (&pc, &h)) in ci[..c]
                .iter_mut()
                .zip(pcs[start..].iter().zip(&bhrs[start..]))
            {
                *slot = (((pc >> 2) ^ (h & hmask)) & tmask) as u32;
            }
            for (slot, &pc) in bi[..c].iter_mut().zip(&pcs[start..start + c]) {
                *slot = ((pc >> 2) & bmask) as u32;
            }
            // Phase 2: touch the counter words (the bias bitmaps are tiny).
            for &i in &ci[..c] {
                self.counters.prefetch(i as usize);
            }
            // Phase 3: serial branchless read-modify-write.
            let out = &mut out_correct[start..start + c];
            for (((&i, &b), &t), oc) in ci[..c]
                .iter()
                .zip(&bi[..c])
                .zip(&takens[start..start + c])
                .zip(out)
            {
                let (valid, dir) = self.bias_entry(b as usize);
                let agrees = self.counters.predicts_taken(i as usize);
                let predicted = !((dir | !valid) ^ agrees);
                let bias = self.bias_get_or_insert(b as usize, t);
                self.counters.train(i as usize, t == bias);
                *oc = predicted == t;
            }
            start += c;
        }
    }

    fn describe(&self) -> String {
        format!(
            "agree({},{},bias {})",
            self.table_bits, self.history_bits, self.bias_bits
        )
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        crate::state::put_u64_slice(out, self.counters.words());
        crate::state::put_u64_slice(out, &self.bias_valid);
        crate::state::put_u64_slice(out, &self.bias_dir);
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = crate::state::StateReader::new(bytes);
        let counters = r.u64_vec()?;
        let valid = r.u64_vec()?;
        let dir = r.u64_vec()?;
        if valid.len() != self.bias_valid.len() || dir.len() != self.bias_dir.len() {
            return Err(format!(
                "agree restore: bias bitmaps of {}/{} words, table needs {}",
                valid.len(),
                dir.len(),
                self.bias_valid.len()
            ));
        }
        self.counters.load_words(&counters)?;
        self.bias_valid = valid;
        self.bias_dir = dir;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryRegister;

    #[test]
    fn first_update_fixes_bias() {
        let mut p = Agree::new(8, 8, 8);
        assert_eq!(p.bias_of(0x40), None);
        p.update(0x40, 0, false);
        assert_eq!(p.bias_of(0x40), Some(false));
        // Later updates do not overwrite the bias.
        p.update(0x40, 0, true);
        assert_eq!(p.bias_of(0x40), Some(false));
    }

    #[test]
    fn learns_biased_branch_through_agreement() {
        let mut p = Agree::new(10, 10, 10);
        let mut bhr = HistoryRegister::new(10);
        let mut wrong_late = 0;
        for i in 0..2000 {
            let taken = i % 10 != 0; // 90% taken
            let pred = p.predict(0x80, bhr.value());
            if i > 500 && pred != taken && taken {
                wrong_late += 1; // only count majority-direction misses
            }
            p.update(0x80, bhr.value(), taken);
            bhr.push(taken);
        }
        assert!(wrong_late < 40, "agree should track the bias: {wrong_late}");
    }

    #[test]
    fn constructive_aliasing_between_agreeing_branches() {
        // Two branches with opposite directions share every counter
        // (1-entry counter table). gshare would fight; agree does not,
        // because both branches agree with their own bias bits.
        let mut p = Agree::new(1, 0, 8);
        let mut miss = 0;
        for i in 0..400 {
            for (pc, taken) in [(0x40u64, true), (0x80u64, false)] {
                if i > 4 && p.predict(pc, 0) != taken {
                    miss += 1;
                }
                p.update(pc, 0, taken);
            }
        }
        assert_eq!(miss, 0, "agreeing branches must not interfere");
    }

    #[test]
    fn gshare_fights_where_agree_does_not() {
        use crate::Gshare;
        let mut g = Gshare::new(1, 0);
        let mut miss = 0;
        for _ in 0..400 {
            for (pc, taken) in [(0x40u64, true), (0x80u64, false)] {
                if g.predict(pc, 0) != taken {
                    miss += 1;
                }
                g.update(pc, 0, taken);
            }
        }
        assert!(
            miss > 300,
            "gshare should thrash on this alias pair: {miss}"
        );
    }

    #[test]
    fn batch_matches_scalar_kernel() {
        use crate::ScalarKernel;
        let mut vector = Agree::new(5, 5, 4); // tiny tables: heavy aliasing
        let mut scalar = ScalarKernel(Agree::new(5, 5, 4));
        let mut x = 99u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n = 1000;
        let pcs: Vec<u64> = (0..n).map(|_| next()).collect();
        let bhrs: Vec<u64> = (0..n).map(|_| next()).collect();
        let takens: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
        let mut out_v = vec![false; n];
        let mut out_s = vec![false; n];
        vector.predict_train_batch(&pcs, &bhrs, &takens, &mut out_v);
        scalar.predict_train_batch(&pcs, &bhrs, &takens, &mut out_s);
        assert_eq!(out_v, out_s);
        for &pc in pcs.iter().take(64) {
            assert_eq!(vector.bias_of(pc), scalar.0.bias_of(pc));
        }
    }

    #[test]
    fn describe_includes_config() {
        assert_eq!(Agree::new(12, 12, 10).describe(), "agree(12,12,bias 10)");
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn history_wider_than_table_rejected() {
        Agree::new(8, 9, 8);
    }
}
