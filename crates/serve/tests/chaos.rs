//! Fault-injection tests: a real server, a [`ChaosProxy`] in the middle,
//! and a retrying client — the rev 1.2 contract is that connection
//! kills, stalls, and idle evictions change *nothing* about the final
//! statistics, which must stay bit-identical to the offline engine.

use std::time::Duration;

use cira_analysis::engine::pool::WorkerPool;
use cira_analysis::engine::replay::StreamingReplay;
use cira_analysis::spec;
use cira_serve::chaos::{schedule_from_seed, ChaosProxy, FaultSpec};
use cira_serve::client::RetryPolicy;
use cira_serve::frame::{read_frame, write_frame, ReadOutcome};
use cira_serve::proto::{code, decode_server, encode_client, ClientFrame, ServerFrame, PROTO_VERSION};
use cira_serve::server::{serve, ServerConfig, ServerHandle};
use cira_serve::{Client, ClientError, HelloConfig};
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// Every scenario runs at each of these shard counts — identical fault
/// schedules, identical assertions: sharding must not change what a
/// client (or the offline reference) can observe.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn start_server(cfg: ServerConfig) -> ServerHandle {
    serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind")
}

fn base_cfg(shards: usize) -> ServerConfig {
    ServerConfig {
        shards,
        ..ServerConfig::default()
    }
}

fn bench_trace(bench: usize, len: usize) -> PackedTrace {
    ibs_like_suite()[bench].walker().take(len).collect()
}

/// The offline reference: one `StreamingReplay` fed the whole trace.
fn local_reference(config: &HelloConfig, trace: &PackedTrace) -> cira_analysis::BucketStats {
    let predictor = spec::parse_predictor(&config.predictor).unwrap();
    let index = spec::parse_index(&config.index).unwrap();
    let init = spec::parse_init(&config.init).unwrap();
    let mechanism = spec::parse_mechanism(&config.mechanism, index, init).unwrap();
    let mut replay = StreamingReplay::new(predictor, mechanism);
    replay.feed(trace);
    replay.stats().clone()
}

/// A policy tuned for tests: fast, plenty of attempts, deterministic.
fn test_retries(seed: u64) -> RetryPolicy {
    RetryPolicy::retries(12)
        .with_delays(Duration::from_millis(25), Duration::from_millis(250))
        .with_jitter_seed(seed)
}

fn metric(handle: &ServerHandle, name: &str) -> u64 {
    handle
        .metrics()
        .snapshot()
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no metric {name}"))
        .1
}

#[test]
fn mid_batch_connection_kill_resumes_bit_identical() {
    for shards in SHARD_COUNTS {
        mid_batch_kill_body(shards);
    }
}

fn mid_batch_kill_body(shards: usize) {
    let handle = start_server(base_cfg(shards));
    let upstream = handle.local_addr().to_string();
    // Connection 1 dies after 2 KiB client→server — mid-BATCH, since the
    // HELLO is under 100 bytes and every batch frame is far larger.
    // Connection 2 (the RESUME) runs clean.
    let proxy = ChaosProxy::start(&upstream, vec![FaultSpec::kill_c2s(2048)]).unwrap();

    let trace = bench_trace(0, 20_000);
    let config = HelloConfig::default();
    let expected = local_reference(&config, &trace);

    let mut client = Client::builder(&proxy.addr())
        .read_timeout(Duration::from_secs(2))
        .retry(test_retries(1))
        .connect(config)
        .expect("connect through proxy");
    let totals = client.stream(&trace, 1000).expect("stream through faults");
    assert_eq!(totals.records, 20_000, "every record exactly once");
    assert_eq!(client.snapshot_stats().unwrap(), expected, "bit-exactness");

    assert_eq!(proxy.kills(), 1, "the fault actually fired");
    assert!(proxy.connections() >= 2, "client reconnected");
    assert!(client.retries() >= 1);
    assert!(client.resumes() >= 1);
    assert!(metric(&handle, "sessions_parked") >= 1);
    assert!(metric(&handle, "sessions_resumed") >= 1);
    assert!(metric(&handle, "resume_attempts") >= 1);

    // The new instruments reach the Prometheus exposition too.
    let mut raw = Client::connect_raw(&upstream).unwrap();
    let doc = cira_serve::cira_obs::promtext::Exposition::parse_validated(
        &raw.metrics_text().unwrap(),
    )
    .expect("well-formed exposition");
    assert!(doc.value("cira_server_sessions_resumed_total").unwrap() >= 1.0);
    assert!(doc.value("cira_server_sessions_parked_total").unwrap() >= 1.0);
    assert_eq!(doc.value("cira_server_sessions_shed_total"), Some(0.0));
    raw.goodbye().unwrap();

    client.goodbye().expect("goodbye");
    proxy.shutdown_and_join();
    handle.shutdown_and_join();
}

#[test]
fn stalled_then_resumed_stream_is_bit_identical() {
    for shards in SHARD_COUNTS {
        stalled_then_resumed_body(shards);
    }
}

fn stalled_then_resumed_body(shards: usize) {
    let handle = start_server(base_cfg(shards));
    let upstream = handle.local_addr().to_string();
    // Connection 1 freezes server→client for 3 s once ~400 bytes of acks
    // have flowed — mid-stream, without closing anything. The client's
    // 300 ms read patience gives up long before the freeze ends, so it
    // must abandon the half-alive connection and RESUME on a fresh one.
    let spec = FaultSpec::clean().with_stall_s2c(400, Duration::from_secs(3));
    let proxy = ChaosProxy::start(&upstream, vec![spec]).unwrap();

    let trace = bench_trace(3, 16_000);
    let config = HelloConfig {
        predictor: "gshare:12:12".into(),
        mechanism: "resetting:16".into(),
        index: "pcxorbhr:12".into(),
        init: "ones".into(),
        threshold: 16,
    };
    let expected = local_reference(&config, &trace);

    let mut client = Client::builder(&proxy.addr())
        .read_timeout(Duration::from_millis(300))
        .retry(test_retries(2))
        .connect(config)
        .expect("connect through proxy");
    let totals = client.stream(&trace, 500).expect("stream through stall");
    assert_eq!(totals.records, 16_000);
    assert_eq!(client.snapshot_stats().unwrap(), expected, "bit-exactness");
    assert!(client.resumes() >= 1, "the stall forced a resume");
    assert!(metric(&handle, "sessions_resumed") >= 1);

    client.goodbye().expect("goodbye");
    proxy.shutdown_and_join();
    handle.shutdown_and_join();
}

#[test]
fn seeded_fault_schedules_stay_bit_identical() {
    for shards in SHARD_COUNTS {
        seeded_fault_schedules_body(shards);
    }
}

fn seeded_fault_schedules_body(shards: usize) {
    // Five seeds, three faulted connections each: kills land anywhere —
    // mid-HELLO, mid-HELLO_ACK, mid-BATCH, mid-ack, mid-RESUME — with
    // chunked dribbling and delays mixed in by the schedule generator.
    for seed in [1u64, 2, 3, 42, 0xC1A0] {
        let handle = start_server(base_cfg(shards));
        let upstream = handle.local_addr().to_string();
        let schedule = schedule_from_seed(seed, 3);
        let proxy = ChaosProxy::start(&upstream, schedule).unwrap();

        let trace = bench_trace((seed % 6) as usize, 12_000);
        let config = HelloConfig::default();
        let expected = local_reference(&config, &trace);

        let mut client = Client::builder(&proxy.addr())
            .read_timeout(Duration::from_secs(1))
            .retry(test_retries(seed))
            .connect(config)
            .unwrap_or_else(|e| panic!("seed {seed}: connect: {e}"));
        let totals = client
            .stream(&trace, 800)
            .unwrap_or_else(|e| panic!("seed {seed}: stream: {e}"));
        assert_eq!(totals.records, 12_000, "seed {seed}: records");
        let got = client
            .snapshot_stats()
            .unwrap_or_else(|e| panic!("seed {seed}: snapshot: {e}"));
        assert_eq!(got, expected, "seed {seed}: server != offline engine");
        assert!(proxy.kills() >= 1, "seed {seed}: no fault fired");

        // Best-effort close: the goodbye itself may hit a fault.
        let _ = client.goodbye();
        proxy.shutdown_and_join();
        handle.shutdown_and_join();
    }
}

#[test]
fn capacity_exhausted_server_sheds_with_busy() {
    for shards in SHARD_COUNTS {
        capacity_exhausted_body(shards);
    }
}

fn capacity_exhausted_body(shards: usize) {
    let cfg = ServerConfig {
        max_sessions: 1,
        busy_retry_ms: 123,
        ..base_cfg(shards)
    };
    let handle = start_server(cfg);
    let addr = handle.local_addr().to_string();

    // First session takes the only slot.
    let mut first = Client::connect(&addr, HelloConfig::default()).expect("first connect");
    first.stream(&bench_trace(1, 2_000), 500).unwrap();

    // Second HELLO is shed promptly with the typed BUSY — not a hang,
    // not a silent close.
    match Client::connect(&addr, HelloConfig::default()) {
        Err(ClientError::Busy {
            retry_after_ms,
            message,
        }) => {
            assert_eq!(retry_after_ms, 123, "hint comes from ServerConfig");
            assert!(!message.is_empty());
        }
        other => panic!("expected BUSY, got {other:?}"),
    }
    assert_eq!(metric(&handle, "sessions_shed"), 1);
    assert_eq!(metric(&handle, "sessions_live"), 1);

    // A retrying client waits out the BUSY hints and gets in once the
    // first session says goodbye.
    let waiter = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::builder(&addr)
                .retry(
                    RetryPolicy::retries(40)
                        .with_delays(Duration::from_millis(10), Duration::from_millis(50))
                        .with_jitter_seed(9),
                )
                .connect(HelloConfig::default())
                .expect("retrying connect after capacity frees");
            let totals = client.stream(&bench_trace(2, 1_000), 250).unwrap();
            client.goodbye().unwrap();
            totals.records
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    first.goodbye().expect("first goodbye");
    assert_eq!(waiter.join().expect("waiter thread"), 1_000);
    assert!(metric(&handle, "sessions_shed") >= 1);
    handle.shutdown_and_join();
}

#[test]
fn idle_session_is_evicted_parked_and_resumable() {
    for shards in SHARD_COUNTS {
        idle_evicted_body(shards);
    }
}

fn idle_evicted_body(shards: usize) {
    let cfg = ServerConfig {
        idle_timeout_ms: 150,
        ..base_cfg(shards)
    };
    let handle = start_server(cfg);
    let addr = handle.local_addr().to_string();

    let trace = bench_trace(4, 8_000);
    let config = HelloConfig::default();
    let expected = local_reference(&config, &trace);

    let mut client = Client::builder(&addr)
        .read_timeout(Duration::from_millis(500))
        .retry(test_retries(5))
        .connect(config)
        .expect("connect");
    client.stream(&trace, 2_000).expect("stream");

    // Go quiet past the idle budget: the server evicts the connection
    // and parks the session.
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(metric(&handle, "sessions_idle_evicted"), 1);

    // The next request transparently resumes and sees the same state.
    assert_eq!(client.snapshot_stats().expect("snapshot"), expected);
    assert!(client.resumes() >= 1, "idle eviction forced a resume");
    assert!(metric(&handle, "sessions_parked") >= 1);
    client.goodbye().expect("goodbye");
    handle.shutdown_and_join();
}

#[test]
fn server_death_restart_resume_is_bit_identical() {
    for shards in SHARD_COUNTS {
        restart_resume_body(shards, "default", HelloConfig::default());
    }
}

/// The same death/restart/resume scenario, but the session carries TAGE
/// tagged-component state and a shadow-predictor mechanism through the
/// park checkpoint — the richest state blobs the spec grammar can name.
#[test]
fn server_death_restart_resume_is_bit_identical_for_tage() {
    let config = HelloConfig {
        predictor: "tage-sc-lite:10:4:2:32:9".into(),
        mechanism: "self:tage-sc-lite:10:4:2:32:9".into(),
        index: "pcxorbhr:10".into(),
        init: "ones".into(),
        threshold: 8,
    };
    restart_resume_body(2, "tage", config);
}

fn restart_resume_body(shards: usize, tag: &str, config: HelloConfig) {
    let dir = std::env::temp_dir().join(format!(
        "cira-chaos-restart-{}-s{shards}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        park_dir: Some(dir.clone()),
        ..base_cfg(shards)
    };

    let trace = bench_trace(2, 24_000);
    let head: PackedTrace = (0..16_000).map(|i| trace.get(i).unwrap()).collect();
    let tail: PackedTrace = (16_000..24_000).map(|i| trace.get(i).unwrap()).collect();
    let expected = local_reference(&config, &trace);

    // Incarnation one: stream the head, PARK, die. PARKED_ACK is a
    // durability receipt — by the time park() returns, the checkpoint is
    // synced to the page file, so nothing depends on a graceful exit.
    let token = {
        let handle = start_server(cfg.clone());
        let addr = handle.local_addr().to_string();
        let mut client = Client::connect(&addr, config).expect("connect");
        client.stream(&head, 2_000).expect("stream head");
        let token = client.park().expect("park");
        handle.shutdown_and_join();
        token
    };

    // Incarnation two: a fresh server process on the same directory
    // rebuilds its park index from the store at startup.
    let handle = start_server(cfg);
    let addr = handle.local_addr().to_string();
    assert_eq!(metric(&handle, "sessions_live"), 1, "recovered at startup");
    assert_eq!(metric(&handle, "park_disk_records"), 1);

    let mut client = Client::builder(&addr)
        .resume(token)
        .expect("resume across restart");
    client.stream(&tail, 2_000).expect("stream tail");
    assert_eq!(
        client.snapshot_stats().unwrap(),
        expected,
        "statistics must be bit-identical across a server death"
    );
    assert!(metric(&handle, "park_loaded") >= 1, "resume came off disk");

    client.goodbye().expect("goodbye");
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn park_pressure_spills_cold_sessions_and_reloads_them() {
    for shards in SHARD_COUNTS {
        park_pressure_body(shards);
    }
}

fn park_pressure_body(shards: usize) {
    let dir = std::env::temp_dir().join(format!(
        "cira-chaos-spill-{}-s{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        park_capacity: 2,
        park_dir: Some(dir.clone()),
        ..base_cfg(shards)
    };
    let handle = start_server(cfg);
    let addr = handle.local_addr().to_string();
    let config = HelloConfig::default();

    // Park six sessions against a two-slot hot tier: at least four must
    // be evicted from memory — spilled, not dropped, since every park is
    // written through to disk. The parked population exceeds what the
    // hot tier can hold.
    let mut tokens = Vec::new();
    let mut traces = Vec::new();
    for bench in 0..6 {
        let trace = bench_trace(bench, 4_000);
        let mut client = Client::connect(&addr, config.clone()).expect("connect");
        client.stream(&trace, 1_000).expect("stream");
        tokens.push(client.park().expect("park"));
        traces.push(trace);
    }
    assert_eq!(metric(&handle, "park_disk_records"), 6, "all six durable");
    assert!(metric(&handle, "park_spilled") >= 4, "hot tier held at two");
    assert_eq!(
        metric(&handle, "sessions_live"),
        6,
        "parked sessions count as live"
    );

    // The first-parked session is long gone from the hot tier, so this
    // resume must decode the checkpoint back off the page file.
    let expected = local_reference(&config, &traces[0]);
    let mut client = Client::builder(&addr)
        .resume(tokens[0])
        .expect("resume the coldest session");
    assert_eq!(
        client.snapshot_stats().unwrap(),
        expected,
        "disk reload is bit-identical"
    );
    assert!(metric(&handle, "park_loaded") >= 1);
    let hits = metric(&handle, "store_page_hits");
    let misses = metric(&handle, "store_page_misses");
    assert!(hits + misses > 0, "page cache saw traffic");

    client.goodbye().expect("goodbye");
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bogus_and_expired_resume_tokens_are_refused() {
    for shards in SHARD_COUNTS {
        bogus_resume_body(shards);
    }
}

fn bogus_resume_body(shards: usize) {
    let cfg = ServerConfig {
        park_ttl_ms: 50,
        ..base_cfg(shards)
    };
    let handle = start_server(cfg);
    let addr = handle.local_addr().to_string();

    // A RESUME naming no session at all.
    {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &encode_client(&ClientFrame::Resume {
                version: PROTO_VERSION,
                token: 0xDEAD_BEEF,
            }),
        )
        .unwrap();
        match read_frame(&mut stream, u32::MAX, 100).unwrap() {
            ReadOutcome::Frame(body) => match decode_server(&body).unwrap() {
                ServerFrame::Error { code: c, .. } => assert_eq!(c, code::UNKNOWN_SESSION),
                other => panic!("expected UNKNOWN_SESSION, got {other:?}"),
            },
            other => panic!("no reply: {other:?}"),
        }
    }
    assert_eq!(metric(&handle, "resume_failures"), 1);

    // A real session, parked by an abrupt disconnect, then left past the
    // 50 ms TTL: the client's resume must fail for good, not hand back
    // stale state.
    let mut client = Client::builder(&addr)
        .read_timeout(Duration::from_millis(500))
        .retry(
            RetryPolicy::retries(3)
                .with_delays(Duration::from_millis(120), Duration::from_millis(200))
                .with_jitter_seed(7),
        )
        .connect(HelloConfig::default())
        .expect("connect");
    client.stream(&bench_trace(5, 2_000), 500).unwrap();
    // Dropping the client closes the socket with no GOODBYE — an abrupt
    // close, so the server parks the session.
    drop(client);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while metric(&handle, "sessions_parked") == 0 {
        assert!(std::time::Instant::now() < deadline, "session never parked");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Past the TTL, the accept loop's tick sweeps it out.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while metric(&handle, "park_evicted_ttl") == 0 {
        assert!(std::time::Instant::now() < deadline, "TTL sweep never ran");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown_and_join();
}
