//! Flight-recorder integration: a real server with tracing **enabled**
//! must stay bit-identical to the offline engine (the recorder may
//! observe the pipeline, never perturb it) and its dump must cover the
//! whole request lifecycle — accept, parse, inbox hand-off, batch
//! checkout, scoring (and its per-chunk kernel spans), completion,
//! write queue/flush — plus a park spill, a park load, and a cross-shard
//! resume migration.

use cira_analysis::engine::pool::WorkerPool;
use cira_analysis::engine::replay::StreamingReplay;
use cira_analysis::spec;
use cira_serve::server::{serve, ServerConfig};
use cira_serve::{Client, HelloConfig};
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

fn hello() -> HelloConfig {
    HelloConfig {
        predictor: "gshare:12:12".into(),
        mechanism: "resetting:16".into(),
        index: "pcxorbhr:12".into(),
        init: "ones".into(),
        threshold: 16,
    }
}

/// The offline reference: one `StreamingReplay` fed the whole trace.
fn local_reference(config: &HelloConfig, trace: &PackedTrace) -> (u64, cira_analysis::BucketStats) {
    let predictor = spec::parse_predictor(&config.predictor).unwrap();
    let index = spec::parse_index(&config.index).unwrap();
    let init = spec::parse_init(&config.init).unwrap();
    let mechanism = spec::parse_mechanism(&config.mechanism, index, init).unwrap();
    let mut replay = StreamingReplay::new(predictor, mechanism);
    replay.feed(trace);
    (replay.run().mispredicts, replay.stats().clone())
}

/// Pulls the server's Chrome trace JSON over a raw CIRS connection.
fn dump(addr: &str) -> String {
    let mut raw = Client::connect_raw(addr).expect("raw connect");
    let json = raw.trace_json().expect("TRACE_DUMP");
    raw.goodbye().expect("raw goodbye");
    json
}

#[test]
fn traced_server_is_bit_identical_and_dumps_every_lifecycle_stage() {
    let cfg = ServerConfig {
        shards: 2,
        trace: true,
        trace_capacity: 1 << 14,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind");
    let addr = handle.local_addr().to_string();

    let config = hello();
    let trace: PackedTrace = ibs_like_suite()[0].walker().take(30_000).collect();
    let (local_miss, local_stats) = local_reference(&config, &trace);

    // Tracing on: scoring must still be bit-identical to the offline
    // engine — the recorder observes the pipeline without perturbing it.
    let mut client = Client::connect(&addr, config).expect("connect");
    let totals = client.stream(&trace, 4096).expect("stream");
    assert_eq!(totals.records, 30_000);
    assert_eq!(totals.mispredicts, local_miss);
    let server_stats = client.snapshot_stats().expect("snapshot");
    assert_eq!(server_stats, local_stats, "tracing perturbed the results");

    // Park/resume cycles until some resume lands on the shard that does
    // not own the token (owner = token % shards, accepts round-robin, and
    // every park mints a fresh random token — each cycle migrates with
    // probability ~1/2, so 24 cycles cannot all stay home in practice).
    let mut token = client.park().expect("park");
    let mut json = String::new();
    for _ in 0..24 {
        let mut resumed = Client::builder(&addr).resume(token).expect("resume");
        token = resumed.park().expect("re-park");
        json = dump(&addr);
        if json.contains("\"migrate\"") {
            break;
        }
    }

    // A loadable Chrome trace: one JSON object with a traceEvents array.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'), "{json}");
    assert!(json.contains("\"traceEvents\""), "{json}");

    // Every lifecycle stage must appear, park spill/load and the
    // cross-shard migration included.
    for stage in [
        "accept",
        "parse",
        "inbox",
        "checkout",
        "score",
        "chunk",
        "complete",
        "write_queue",
        "write_flush",
        "park_spill",
        "park_load",
        "migrate",
    ] {
        assert!(
            json.contains(&format!("\"{stage}\"")),
            "no {stage} event in the dump"
        );
    }

    // The recorder actually captured events, and the build exposes the
    // recorded/dropped accounting through the server registry.
    let text = handle.registry().render();
    let doc = cira_serve::cira_obs::promtext::Exposition::parse_validated(&text)
        .expect("well-formed exposition");
    assert!(
        doc.value("cira_trace_events_recorded_total").unwrap_or(0.0) > 0.0,
        "no events recorded"
    );
    assert!(text.contains("cira_build_info{"), "no build_info gauge");

    handle.shutdown_and_join();
}
