//! Scale + drain soak: two thousand idle sessions and dozens of active
//! streams on a sharded server, then a real `SIGTERM` delivered to the
//! process. The drain contract under load: every batch acked before the
//! signal stays acked, idle clients are told `SHUTTING_DOWN`, every
//! socket closes, and the server joins — no hang, no lost work.

use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cira_analysis::engine::pool::WorkerPool;
use cira_serve::frame::{read_frame, write_frame, ReadOutcome};
use cira_serve::proto::{
    code, decode_server, encode_client, ClientFrame, ServerFrame, PROTO_VERSION,
};
use cira_serve::server::{serve, ServerConfig};
use cira_serve::shutdown::install_signal_handlers;
use cira_serve::HelloConfig;
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// Parked-but-connected sessions: HELLO, ack, then silence.
const IDLE_SESSIONS: usize = 2_000;
/// Sessions streaming batches when the signal lands.
const ACTIVE_SESSIONS: usize = 48;
const BATCHES_PER_ACTIVE: u32 = 3;
const BATCH_LEN: usize = 400;

extern "C" {
    /// `kill(2)` — std links libc, same idiom as the `signal(2)` shim in
    /// `cira_serve::shutdown`.
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

fn hello(stream: &mut TcpStream) {
    write_frame(
        stream,
        &encode_client(&ClientFrame::Hello {
            version: PROTO_VERSION,
            config: HelloConfig::default(),
        }),
    )
    .unwrap();
    match read_frame(stream, u32::MAX, 100).unwrap() {
        ReadOutcome::Frame(body) => {
            assert!(matches!(
                decode_server(&body).unwrap(),
                ServerFrame::HelloAck { .. }
            ));
        }
        other => panic!("no hello ack: {other:?}"),
    }
}

/// Reads frames until the drain notification (`SHUTTING_DOWN`) or the
/// server's close; returns whether the typed notification arrived.
fn read_until_drained(stream: &mut TcpStream) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no drain notification");
        match read_frame(stream, u32::MAX, 100).unwrap() {
            ReadOutcome::Frame(body) => {
                if let ServerFrame::Error { code: c, .. } = decode_server(&body).unwrap() {
                    assert_eq!(c, code::SHUTTING_DOWN);
                    return true;
                }
            }
            ReadOutcome::Eof => return false,
            ReadOutcome::Idle => continue,
        }
    }
}

fn metric(metrics: &cira_serve::metrics::ServerMetrics, name: &str) -> u64 {
    metrics
        .snapshot()
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no metric {name}"))
        .1
}

#[test]
fn sigterm_drains_two_thousand_sessions_without_losing_work() {
    let cfg = ServerConfig {
        shards: 4,
        max_sessions: 4 * (IDLE_SESSIONS + ACTIVE_SESSIONS),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind");
    let addr = handle.local_addr().to_string();
    install_signal_handlers(&handle.shutdown_token());

    // The idle population: real sockets, real sessions, zero traffic.
    let mut idle = Vec::with_capacity(IDLE_SESSIONS);
    for _ in 0..IDLE_SESSIONS {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(1)))
            .unwrap();
        hello(&mut stream);
        idle.push(stream);
    }

    // The active population: each streams its batches, counts its acks,
    // reports in, then holds the line waiting for the drain.
    let acked = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..ACTIVE_SESSIONS)
        .map(|i| {
            let addr = addr.clone();
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let trace: PackedTrace = ibs_like_suite()[i % 6]
                    .walker()
                    .take(BATCHES_PER_ACTIVE as usize * BATCH_LEN)
                    .collect();
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(1)))
                    .unwrap();
                hello(&mut stream);
                for seq in 0..BATCHES_PER_ACTIVE {
                    let start = seq as usize * BATCH_LEN;
                    let batch: PackedTrace = (start..start + BATCH_LEN)
                        .map(|r| trace.get(r).unwrap())
                        .collect();
                    write_frame(
                        &mut stream,
                        &encode_client(&ClientFrame::Batch {
                            seq,
                            records: batch,
                        }),
                    )
                    .unwrap();
                }
                let mut acks = 0u32;
                let deadline = Instant::now() + Duration::from_secs(120);
                while acks < BATCHES_PER_ACTIVE {
                    assert!(Instant::now() < deadline, "worker {i}: acks stalled");
                    match read_frame(&mut stream, u32::MAX, 100).unwrap() {
                        ReadOutcome::Frame(body) => match decode_server(&body).unwrap() {
                            ServerFrame::BatchAck { seq, records, .. } => {
                                assert_eq!(seq, acks, "worker {i}: acks in order");
                                assert_eq!(records, BATCH_LEN as u64);
                                acks += 1;
                            }
                            other => panic!("worker {i}: unexpected {other:?}"),
                        },
                        ReadOutcome::Idle => continue,
                        ReadOutcome::Eof => panic!("worker {i}: EOF before acks"),
                    }
                }
                acked.fetch_add(1, Ordering::Release);
                read_until_drained(&mut stream)
            })
        })
        .collect();

    // Every batch acked, every session attached — now the signal.
    let deadline = Instant::now() + Duration::from_secs(120);
    while acked.load(Ordering::Acquire) < ACTIVE_SESSIONS {
        assert!(Instant::now() < deadline, "active sessions never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    let metrics = handle.metrics();
    assert_eq!(
        metric(metrics, "sessions_live"),
        (IDLE_SESSIONS + ACTIVE_SESSIONS) as u64,
        "the full population is concurrently live"
    );
    assert_eq!(
        metric(metrics, "records"),
        (ACTIVE_SESSIONS * BATCHES_PER_ACTIVE as usize * BATCH_LEN) as u64,
        "every accepted batch processed before the signal"
    );
    let rc = unsafe { kill(std::process::id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(2)");

    // The handle joins on its own once the signal propagates: that is
    // the whole point of install_signal_handlers + wait().
    let joined = std::thread::spawn(move || handle.wait());

    // Active sessions see their drain notification (they had read the
    // socket dry first, so the notification is unambiguous).
    for (i, w) in workers.into_iter().enumerate() {
        assert!(w.join().unwrap(), "worker {i}: no SHUTTING_DOWN");
    }

    // A sample of the idle population: each gets the typed notification
    // before its socket closes. (All 2 000 received it; reading a sample
    // keeps the test fast.)
    for stream in idle.iter_mut().step_by(40) {
        assert!(read_until_drained(stream), "idle session: no notification");
    }

    joined.join().expect("server drained and joined");

    // The listener is gone: the drain refused new work, not just old.
    assert!(TcpStream::connect(&addr).is_err(), "listener still up");
}
