//! CIRD checkpoint round-trips across the predictor × mechanism spec
//! grid.
//!
//! Three properties, each over the whole grid:
//!
//! 1. **Codec round-trip** — `Session::to_checkpoint` → `encode` →
//!    `decode` → `from_checkpoint` continues bit-identically to the
//!    session that never stopped (the batched/SWAR kernel path).
//! 2. **Kernel agnosticism** — a checkpoint written by the vectorized
//!    kernel restores into a scalar-pinned engine (and vice versa) and
//!    still finishes bit-identical to a single uninterrupted run: the
//!    state blobs are canonical, not kernel-private.
//! 3. **Corruption rejection** — any truncation and any single-byte flip
//!    of the encoded image is refused by `decode`, never half-trusted.

use cira_analysis::engine::replay::StreamingReplay;
use cira_analysis::spec::{parse_init, parse_mechanism, parse_predictor, IndexForm};
use cira_core::ScalarObserve;
use cira_predictor::ScalarKernel;
use cira_serve::proto::HelloConfig;
use cira_serve::session::Session;
use cira_store::Checkpoint;
use cira_trace::codec::PackedTrace;
use cira_trace::BranchRecord;

const PREDICTORS: [&str; 10] = [
    "gshare:10:10",
    "gshare:10:6",
    "gselect:10:4",
    "bimodal:10",
    "local:8:6",
    "agree:10:10:8",
    // TAGE-class predictors checkpoint their tagged components, policy
    // counters, and (sc-lite) loop/corrector tables through the same
    // CIRD blob discipline.
    "tage:10:4:2:32:9",
    "tage-sc-lite:10:4:2:32:9",
    "taken",
    "not-taken",
];

const MECHANISMS: [&str; 6] = [
    "cir:8",
    "ones-count:8",
    "saturating:16",
    "resetting:16",
    "two-level:pcxorbhr-cir",
    // The shadow-predictor mechanism checkpoints its shadow's state.
    "self:tage:10:4:2:32:9",
];

const INDICES: [&str; 5] = ["pc:10", "bhr:10", "pcxorbhr:10", "pcconcatbhr:10", "gcir:6"];

const INITS: [&str; 4] = ["ones", "zeros", "lastbit", "random:7"];

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed.max(1);
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// A synthetic trace with a small hot site set and per-site bias (same
/// construction as the kernel differential suite).
fn synth_trace(seed: u64, len: usize) -> PackedTrace {
    let mut rng = xorshift(seed);
    (0..len)
        .map(|_| {
            let site = rng() % 97;
            let pc = 0x40_0000 + (site << 2);
            let taken = rng() % 100 < 20 + (site * 7) % 75;
            BranchRecord::new(pc, taken)
        })
        .collect()
}

fn config(predictor: &str, mechanism: &str, index: &str, init: &str) -> HelloConfig {
    HelloConfig {
        predictor: predictor.into(),
        mechanism: mechanism.into(),
        index: index.into(),
        init: init.into(),
        threshold: 8,
    }
}

/// Property 1 for one spec cell: park mid-stream through the codec, then
/// finish both sessions and require identical acks and snapshots.
fn assert_round_trip(head: &PackedTrace, tail: &PackedTrace, cfg: &HelloConfig) {
    let label = format!("{} / {} @ {} init {}", cfg.predictor, cfg.mechanism, cfg.index, cfg.init);
    let mut original = Session::from_hello(cfg, 0xA5A5).expect(&label);
    original.apply_batch(0, head);

    let checkpoint = original.to_checkpoint(42);
    let bytes = checkpoint.encode();
    let decoded = Checkpoint::decode(&bytes).unwrap_or_else(|e| panic!("{label}: decode: {e}"));
    assert_eq!(decoded, checkpoint, "{label}: codec round-trip");

    let mut restored =
        Session::from_checkpoint(&decoded, 0xA5A5).unwrap_or_else(|e| panic!("{label}: {e}"));
    let a = original.apply_batch(1, tail);
    let b = restored.apply_batch(1, tail);
    assert_eq!(a, b, "{label}: tail acks diverge after restore");
    assert_eq!(
        original.snapshot(),
        restored.snapshot(),
        "{label}: snapshots diverge after restore"
    );
}

#[test]
fn session_checkpoints_round_trip_across_the_spec_grid() {
    let trace = synth_trace(0xC14D, 3_000);
    let head: PackedTrace = (0..2_000).map(|i| trace.get(i).unwrap()).collect();
    let tail: PackedTrace = (2_000..3_000).map(|i| trace.get(i).unwrap()).collect();
    for predictor in PREDICTORS {
        for mechanism in MECHANISMS {
            assert_round_trip(&head, &tail, &config(predictor, mechanism, "pcxorbhr:10", "ones"));
        }
    }
    // Index functions and init policies sweep with a fixed pairing.
    for index in INDICES {
        for init in INITS {
            assert_round_trip(&head, &tail, &config("gshare:10:10", "resetting:16", index, init));
        }
    }
}

/// Builds a replay pinned to the trait-default scalar loops.
fn scalar_replay(cfg: &HelloConfig) -> StreamingReplay {
    let predictor = ScalarKernel(parse_predictor(&cfg.predictor).unwrap());
    let index = cfg.index.parse::<IndexForm>().unwrap().build();
    let init = parse_init(&cfg.init).unwrap();
    let mechanism = ScalarObserve(parse_mechanism(&cfg.mechanism, index, init).unwrap());
    StreamingReplay::new(Box::new(predictor), Box::new(mechanism))
}

/// Builds a replay on the default (vectorized/SWAR) kernels.
fn swar_replay(cfg: &HelloConfig) -> StreamingReplay {
    let predictor = parse_predictor(&cfg.predictor).unwrap();
    let index = cfg.index.parse::<IndexForm>().unwrap().build();
    let init = parse_init(&cfg.init).unwrap();
    let mechanism = parse_mechanism(&cfg.mechanism, index, init).unwrap();
    StreamingReplay::new(predictor, mechanism)
}

/// Moves a mid-stream replay's state into a fresh replay through the raw
/// state blobs — exactly what the CIRD codec carries.
fn transfer(from: &StreamingReplay, into: &mut StreamingReplay) {
    into.set_bhr(from.bhr_value());
    into.load_predictor_state(&from.predictor_state())
        .expect("predictor state loads");
    into.load_mechanism_state(&from.mechanism_state())
        .expect("mechanism state loads");
    into.restore_stats(from.stats().clone());
    into.restore_run(from.run());
}

#[test]
fn checkpoint_state_blobs_are_kernel_agnostic() {
    let trace = synth_trace(0x5CA1, 3_000);
    let head: PackedTrace = (0..2_000).map(|i| trace.get(i).unwrap()).collect();
    let tail: PackedTrace = (2_000..3_000).map(|i| trace.get(i).unwrap()).collect();
    for predictor in PREDICTORS {
        for mechanism in MECHANISMS {
            let cfg = config(predictor, mechanism, "pcxorbhr:10", "ones");
            let label = format!("{predictor} / {mechanism}");

            let mut reference = swar_replay(&cfg);
            reference.feed(&trace);

            // SWAR writes the state, a scalar engine finishes the run.
            let mut writer = swar_replay(&cfg);
            writer.feed(&head);
            let mut scalar = scalar_replay(&cfg);
            transfer(&writer, &mut scalar);
            scalar.feed(&tail);
            assert_eq!(scalar.stats(), reference.stats(), "{label}: SWAR→scalar");
            assert_eq!(scalar.run(), reference.run(), "{label}: SWAR→scalar run");

            // Scalar writes the state, the SWAR engine finishes the run.
            let mut writer = scalar_replay(&cfg);
            writer.feed(&head);
            let mut swar = swar_replay(&cfg);
            transfer(&writer, &mut swar);
            swar.feed(&tail);
            assert_eq!(swar.stats(), reference.stats(), "{label}: scalar→SWAR");
            assert_eq!(swar.run(), reference.run(), "{label}: scalar→SWAR run");
        }
    }
}

#[test]
fn truncated_and_corrupted_checkpoints_are_rejected() {
    // A small-table cell keeps the image a few KiB, so exhaustive
    // truncation and byte-flip sweeps stay fast.
    let trace = synth_trace(0xBADC, 1_500);
    let mut session = Session::from_hello(&config("gshare:6:6", "resetting:4", "pcxorbhr:6", "ones"), 7)
        .expect("session");
    session.apply_batch(0, &trace);
    let bytes = session.to_checkpoint(7).encode();
    assert!(Checkpoint::decode(&bytes).is_ok(), "pristine image decodes");

    for len in 0..bytes.len() {
        assert!(
            Checkpoint::decode(&bytes[..len]).is_err(),
            "truncation to {len} of {} bytes must be rejected",
            bytes.len()
        );
    }
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x40;
        assert!(
            Checkpoint::decode(&flipped).is_err(),
            "flip at byte {i} of {} must be rejected",
            bytes.len()
        );
    }
}
