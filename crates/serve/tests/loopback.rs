//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, and the contract the whole crate exists for — server-side
//! statistics bit-identical to the offline engine, under concurrency,
//! abuse, and shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cira_analysis::engine::pool::WorkerPool;
use cira_analysis::engine::replay::StreamingReplay;
use cira_analysis::spec;
use cira_serve::frame::{read_frame, write_frame, ReadOutcome};
use cira_serve::proto::{
    code, decode_server, encode_client, ClientFrame, ServerFrame, PROTO_VERSION,
};
use cira_serve::server::{serve, ServerConfig, ServerHandle};
use cira_serve::{Client, ClientError, HelloConfig};
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// Every suite runs at each of these shard counts — same traffic, same
/// assertions: the sharded event loop must be observationally identical
/// to a single loop, bit-exact statistics included.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn start_server(shards: usize) -> ServerHandle {
    let cfg = ServerConfig {
        shards,
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind")
}

fn bench_trace(bench: usize, len: usize) -> PackedTrace {
    ibs_like_suite()[bench].walker().take(len).collect()
}

/// The offline reference: one `StreamingReplay` fed the whole trace.
fn local_reference(config: &HelloConfig, trace: &PackedTrace) -> (u64, cira_analysis::BucketStats) {
    let predictor = spec::parse_predictor(&config.predictor).unwrap();
    let index = spec::parse_index(&config.index).unwrap();
    let init = spec::parse_init(&config.init).unwrap();
    let mechanism = spec::parse_mechanism(&config.mechanism, index, init).unwrap();
    let mut replay = StreamingReplay::new(predictor, mechanism);
    replay.feed(trace);
    (replay.run().mispredicts, replay.stats().clone())
}

#[test]
fn concurrent_sessions_with_different_configs_are_bit_identical() {
    for shards in SHARD_COUNTS {
        concurrent_sessions_body(shards);
    }
}

fn concurrent_sessions_body(shards: usize) {
    let handle = start_server(shards);
    let addr = handle.local_addr().to_string();

    // Three sessions, three configs, three benchmarks, three batch sizes.
    let cases = [
        (
            HelloConfig {
                predictor: "gshare:12:12".into(),
                mechanism: "resetting:16".into(),
                index: "pcxorbhr:12".into(),
                init: "ones".into(),
                threshold: 16,
            },
            0usize, // gcc
            997usize,
        ),
        (
            HelloConfig {
                predictor: "bimodal:10".into(),
                mechanism: "saturating:8".into(),
                index: "pc:10".into(),
                init: "zeros".into(),
                threshold: 4,
            },
            3, // jpeg
            4096,
        ),
        (
            HelloConfig {
                predictor: "gshare64k".into(),
                mechanism: "two-level:pcxorbhr-cir".into(),
                index: "pcxorbhr:16".into(),
                init: "ones".into(),
                threshold: 100,
            },
            5,
            30_000, // a single big batch
        ),
    ];

    let workers: Vec<_> = cases
        .iter()
        .cloned()
        .map(|(config, bench, batch)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let trace = bench_trace(bench, 30_000);
                let (local_miss, local_stats) = local_reference(&config, &trace);
                let mut client = Client::connect(&addr, config).expect("connect");
                let totals = client.stream(&trace, batch).expect("stream");
                assert_eq!(totals.records, 30_000);
                assert_eq!(totals.mispredicts, local_miss);
                let server_stats = client.snapshot_stats().expect("snapshot");
                assert_eq!(server_stats, local_stats, "server != local engine");
                client.goodbye().expect("goodbye");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread");
    }

    let metrics = handle.metrics().snapshot();
    let get = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(get("sessions_opened"), 3);
    assert_eq!(get("records"), 90_000);

    // The per-batch histograms must agree with the counters: every record
    // counted arrived in some batch, and every batch was timed.
    let batch_records = handle.metrics().batch_records.snapshot();
    let batch_service = handle.metrics().batch_service_us.snapshot();
    assert_eq!(batch_records.count, get("batches"));
    assert_eq!(batch_records.sum, 90_000);
    assert_eq!(batch_service.count, get("batches"));

    // Rev 1.1: STATS and METRICS answer on a raw connection, no HELLO.
    let mut raw = Client::connect_raw(&addr).expect("raw connect");
    let wire = raw.stats().expect("pre-session STATS");
    let wget = |name: &str| wire.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(wget("sessions_opened"), 3);
    assert_eq!(wget("records"), 90_000);
    assert!(wire.iter().any(|(n, _)| n == "uptime_seconds"));
    let text = raw.metrics_text().expect("pre-session METRICS");
    let doc = cira_serve::cira_obs::promtext::Exposition::parse_validated(&text)
        .expect("well-formed exposition");
    assert_eq!(doc.value("cira_server_sessions_opened_total"), Some(3.0));
    assert_eq!(doc.value("cira_session_records_total"), Some(90_000.0));
    raw.goodbye().expect("raw goodbye");
    handle.shutdown_and_join();
}

#[test]
fn reset_gives_a_fresh_session_over_the_wire() {
    for shards in SHARD_COUNTS {
        reset_fresh_session_body(shards);
    }
}

fn reset_fresh_session_body(shards: usize) {
    let handle = start_server(shards);
    let addr = handle.local_addr().to_string();
    let trace = bench_trace(1, 8_000);

    let mut client = Client::connect(&addr, HelloConfig::default()).unwrap();
    client.stream(&trace, 1000).unwrap();
    let first = client.snapshot_stats().unwrap();
    client.reset().unwrap();
    client.stream(&trace, 3333).unwrap();
    let second = client.snapshot_stats().unwrap();
    assert_eq!(first, second, "reset must fully restore initial state");
    client.goodbye().unwrap();
    handle.shutdown_and_join();
}

/// Connects raw, sends `frames` bodies, and returns the first decoded
/// server reply.
fn raw_exchange(addr: &str, bodies: &[Vec<u8>]) -> ServerFrame {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for body in bodies {
        write_frame(&mut stream, body).expect("write");
    }
    match read_frame(&mut stream, u32::MAX, 100).expect("read") {
        ReadOutcome::Frame(body) => decode_server(&body).expect("decode"),
        other => panic!("no reply: {other:?}"),
    }
}

fn error_code(frame: ServerFrame) -> u16 {
    match frame {
        ServerFrame::Error { code, .. } => code,
        other => panic!("expected ERROR, got {other:?}"),
    }
}

#[test]
fn hostile_clients_get_errors_and_the_server_survives() {
    for shards in SHARD_COUNTS {
        hostile_clients_body(shards);
    }
}

fn hostile_clients_body(shards: usize) {
    let handle = start_server(shards);
    let addr = handle.local_addr().to_string();
    let hello = |version| {
        encode_client(&ClientFrame::Hello {
            version,
            config: HelloConfig::default(),
        })
    };

    // Unknown protocol version.
    assert_eq!(
        error_code(raw_exchange(&addr, &[hello(PROTO_VERSION + 9)])),
        code::UNSUPPORTED_VERSION
    );

    // Garbage frame type.
    assert_eq!(
        error_code(raw_exchange(&addr, &[vec![0xEE, 1, 2, 3]])),
        code::MALFORMED
    );

    // A batch before any HELLO.
    let batch = encode_client(&ClientFrame::Batch {
        seq: 0,
        records: bench_trace(0, 64),
    });
    assert_eq!(error_code(raw_exchange(&addr, &[batch])), code::HELLO_REQUIRED);

    // A bad spec in the HELLO.
    let bad_spec = encode_client(&ClientFrame::Hello {
        version: PROTO_VERSION,
        config: HelloConfig {
            predictor: "frobnicate:1".into(),
            ..HelloConfig::default()
        },
    });
    assert_eq!(error_code(raw_exchange(&addr, &[bad_spec])), code::BAD_SPEC);

    // Through the typed client, a HELLO rejection names the specs the
    // client offered — grammar skew (a server that predates `tage:…` or
    // `self:…`) must be diagnosable from the error alone.
    let skewed = HelloConfig {
        predictor: "frobnicate:1".into(),
        mechanism: "self:tage64k".into(),
        ..HelloConfig::default()
    };
    match Client::connect(&addr, skewed) {
        Err(ClientError::Server { code: c, message }) => {
            assert_eq!(c, code::BAD_SPEC);
            assert!(
                message.contains("predictor=frobnicate:1")
                    && message.contains("mechanism=self:tage64k"),
                "rejection must echo the offered specs, got: {message}"
            );
        }
        other => panic!("expected BAD_SPEC with offered specs, got {other:?}"),
    }

    // An oversized length prefix — body never sent.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&(64u32 << 20).to_le_bytes()).unwrap();
        let reply = match read_frame(&mut stream, u32::MAX, 100).expect("read") {
            ReadOutcome::Frame(body) => decode_server(&body).expect("decode"),
            other => panic!("no reply: {other:?}"),
        };
        assert_eq!(error_code(reply), code::OVERSIZED);
    }

    // A mid-frame disconnect: length prefix promises 100 bytes, 10 arrive.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[7u8; 10]).unwrap();
        drop(stream);
    }

    // After all that abuse, a well-behaved client still gets exact service.
    let trace = bench_trace(2, 10_000);
    let config = HelloConfig::default();
    let (_, local_stats) = local_reference(&config, &trace);
    let mut client = Client::connect(&addr, config).expect("connect after abuse");
    client.stream(&trace, 2048).expect("stream after abuse");
    assert_eq!(client.snapshot_stats().unwrap(), local_stats);
    client.goodbye().unwrap();

    let metrics = handle.metrics().snapshot();
    let get = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
    assert!(get("protocol_errors") >= 5, "metrics: {metrics:?}");

    // Each distinct abuse landed in its own breakdown slot...
    assert!(get("protocol_errors_unsupported_version") >= 1);
    assert!(get("protocol_errors_malformed") >= 1);
    assert!(get("protocol_errors_hello_required") >= 1);
    assert!(get("protocol_errors_bad_spec") >= 1);
    assert!(get("protocol_errors_oversized") >= 1);
    // ...and the lump counter is exactly the sum of the breakdown.
    let breakdown: u64 = metrics
        .iter()
        .filter(|(n, _)| n.starts_with("protocol_errors_"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(get("protocol_errors"), breakdown);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_drains_batches_accepted_before_disconnect() {
    for shards in SHARD_COUNTS {
        shutdown_drains_body(shards);
    }
}

fn shutdown_drains_body(shards: usize) {
    let handle = start_server(shards);
    let addr = handle.local_addr().to_string();

    // Send HELLO + 3 batches, then vanish without reading a single ack:
    // the server still owes itself the work.
    let trace = bench_trace(4, 3 * 2_000);
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &encode_client(&ClientFrame::Hello {
                version: PROTO_VERSION,
                config: HelloConfig::default(),
            }),
        )
        .unwrap();
        // Wait for the ack so the session definitely exists.
        match read_frame(&mut stream, u32::MAX, 100).unwrap() {
            ReadOutcome::Frame(body) => {
                assert!(matches!(
                    decode_server(&body).unwrap(),
                    ServerFrame::HelloAck { .. }
                ));
            }
            other => panic!("no hello ack: {other:?}"),
        }
        for (seq, start) in (0..3u32).map(|s| (s, s as usize * 2_000)) {
            let batch: PackedTrace = (start..start + 2_000)
                .map(|i| trace.get(i).unwrap())
                .collect();
            write_frame(
                &mut stream,
                &encode_client(&ClientFrame::Batch {
                    seq,
                    records: batch,
                }),
            )
            .unwrap();
        }
    } // socket dropped: EOF after the buffered frames

    // Every accepted batch must be processed even though the client died.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let records = handle
            .metrics()
            .snapshot()
            .iter()
            .find(|(n, _)| n == "records")
            .unwrap()
            .1;
        if records == 6_000 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {records}/6000 records drained"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown_and_join();
}

#[test]
fn shutting_down_server_tells_idle_clients_and_joins() {
    for shards in SHARD_COUNTS {
        shutting_down_tells_idle_body(shards);
    }
}

fn shutting_down_tells_idle_body(shards: usize) {
    let handle = start_server(shards);
    let addr = handle.local_addr().to_string();
    let trace = bench_trace(0, 5_000);

    let mut client = Client::connect(&addr, HelloConfig::default()).unwrap();
    client.stream(&trace, 1024).unwrap();

    // Trigger shutdown while the client sits idle; the server must finish
    // the connection with a SHUTTING_DOWN error, not a silent close.
    let token = handle.shutdown_token();
    let joiner = std::thread::spawn(move || handle.shutdown_and_join());
    token.trigger();

    // A STATS that lands before the server's next idle tick is still
    // answered, so poll until the connection reports the shutdown.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.stats() {
            Ok(_) => {
                assert!(Instant::now() < deadline, "server never said goodbye");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(ClientError::Server { code: c, .. }) => {
                assert_eq!(c, code::SHUTTING_DOWN);
                break;
            }
            // The race where our STATS lands after the close is also fine.
            Err(ClientError::Io(_) | ClientError::Protocol(_)) => break,
            Err(other) => panic!("{other}"),
        }
    }
    joiner.join().expect("shutdown joins");

    // New connections are refused once the listener is gone.
    assert!(TcpStream::connect(&addr).is_err());
}
