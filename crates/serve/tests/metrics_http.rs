//! The observability acceptance test: a live server with a `/metrics`
//! HTTP listener, real traffic, and a scrape validated as well-formed
//! Prometheus text exposition covering server, session, and pool metrics.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cira_analysis::engine::pool::WorkerPool;
use cira_serve::cira_obs::promtext::{Exposition, MetricType};
use cira_serve::server::{serve, ServerConfig};
use cira_serve::{Client, HelloConfig};
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// One HTTP/1.0 request against `addr`, returning `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// The scrape must hold the same exact counts at every shard count.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn live_scrape_is_valid_prometheus_text_covering_all_layers() {
    for shards in SHARD_COUNTS {
        live_scrape_body(shards);
    }
}

fn live_scrape_body(shards: usize) {
    let cfg = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        shards,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind");
    let http_addr = handle.metrics_http_addr().expect("metrics listener");

    // Generate real traffic so the scrape has nonzero series.
    let trace: PackedTrace = ibs_like_suite()[0].walker().take(12_000).collect();
    let mut client = Client::connect(
        &handle.local_addr().to_string(),
        HelloConfig::default(),
    )
    .expect("connect");
    let totals = client.stream(&trace, 3_000).expect("stream");
    assert_eq!(totals.records, 12_000);
    client.goodbye().expect("goodbye");

    let (status, body) = http_get(http_addr, "/metrics");
    assert!(status.contains("200"), "status: {status}");

    // Well-formed text exposition: one `# TYPE` per family, samples only
    // under their family, counters finite and non-negative, histograms
    // cumulative and monotone — all enforced by the validating parser.
    let doc = Exposition::parse_validated(&body).expect("valid exposition");

    // Server layer.
    assert_eq!(doc.value("cira_server_connections_total"), Some(1.0));
    assert_eq!(doc.value("cira_server_sessions_opened_total"), Some(1.0));
    assert!(doc.value("cira_server_frames_in_total").unwrap() >= 5.0);
    assert!(doc.value("cira_server_uptime_seconds").is_some());
    let errs = doc.family("cira_server_protocol_errors_total").unwrap();
    assert_eq!(errs.kind, MetricType::Counter);
    assert!(errs.samples.len() >= 7, "per-code breakdown present");

    // Shard layer: one labeled series per event loop.
    let shard_conns = doc.family("cira_serve_shard_connections").unwrap();
    assert_eq!(shard_conns.samples.len(), shards, "one series per shard");

    // Session layer, including well-formed latency histograms.
    assert_eq!(doc.value("cira_session_records_total"), Some(12_000.0));
    assert_eq!(doc.value("cira_session_batches_total"), Some(4.0));
    let batch_hist = doc.histogram("cira_session_batch_records").unwrap();
    assert_eq!(batch_hist.count, 4);
    assert_eq!(batch_hist.sum, 12_000.0);
    let service = doc.histogram("cira_session_batch_service_us").unwrap();
    assert_eq!(service.count, 4);

    // Pool layer: the shared worker pool executed the batch drains. A
    // drain task services every batch queued at that moment, so 4
    // batches can legitimately coalesce into as little as one task.
    assert!(doc.value("cira_pool_workers").unwrap() >= 1.0);
    assert!(doc.value("cira_pool_tasks_executed_total").unwrap() >= 1.0);
    let latency = doc.histogram("cira_pool_task_latency_us").unwrap();
    assert!(latency.count >= 1);

    // The wire-level METRICS frame serves the same registry.
    let mut raw = Client::connect_raw(&handle.local_addr().to_string()).unwrap();
    let wire_doc =
        Exposition::parse_validated(&raw.metrics_text().unwrap()).expect("wire exposition");
    assert_eq!(
        wire_doc.value("cira_session_records_total"),
        Some(12_000.0)
    );
    raw.goodbye().unwrap();

    // The other HTTP routes behave.
    let (status, body) = http_get(http_addr, "/healthz");
    assert!(status.contains("200"), "status: {status}");
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("ok"));
    assert!(lines.next().is_some_and(|l| l.starts_with("version=")));
    assert!(lines.next().is_some_and(|l| l.starts_with("uptime_seconds=")));
    let (status, _) = http_get(http_addr, "/nope");
    assert!(status.contains("404"), "status: {status}");

    handle.shutdown_and_join();

    // Shutdown also stops the metrics listener.
    assert!(TcpStream::connect(http_addr).is_err());
}
