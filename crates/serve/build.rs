//! Captures the compiler version at build time so the server can expose
//! build provenance (`cira_build_info`) without a registry dependency.

use std::process::Command;

fn main() {
    let rustc = std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into());
    let version = Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=CIRA_RUSTC_VERSION={version}");
}
