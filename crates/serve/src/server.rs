//! The TCP server: N sharded epoll event loops (thread-per-core), with
//! batch execution fanned across a shared [`WorkerPool`].
//!
//! # Threading model
//!
//! * **N shard threads**, each running one nonblocking
//!   [`crate::event::Epoll`] loop. Shard 0 owns the listener and
//!   round-robins accepted sockets across all shards (handed over
//!   through an eventfd-wakeable inbox). Every connection lives on
//!   exactly one shard: its parse buffer, its write queue, and its
//!   session are single-threaded state, mutated only by that shard.
//! * **Readiness-driven parsing**: a readable socket is drained into a
//!   per-connection [`crate::frame::FrameBuffer`]; complete frames are
//!   pulled out incrementally. Control frames (`STATS`, `SNAPSHOT`,
//!   `RESET`, `GOODBYE`, …) are answered inline on the shard; `BATCH`
//!   runs are checked out with the session and executed on the shared
//!   [`WorkerPool`], and the acks come back to the owning shard via its
//!   inbox — heavy scoring work is multiplexed over the pool's threads
//!   no matter how many connections exist.
//! * **Session affinity**: a resume token `t` is owned by shard
//!   `t % nshards` — `HELLO` mints tokens that map back to the issuing
//!   shard, and a `RESUME` arriving anywhere else migrates the
//!   connection (socket, buffers and all) to its owner before the park
//!   lookup. A resumed session therefore always lands on the shard that
//!   ran it before it parked.
//! * **Backpressure**: a session with `max_inflight` undispatched
//!   batches stops being read (its `EPOLLIN` interest is dropped) — the
//!   client eventually blocks on TCP write, bounding memory per
//!   connection. Acks queue on a write queue flushed on `EPOLLOUT`; a
//!   peer that stops reading its acks trips the per-frame
//!   [`ServerConfig::write_timeout_ms`] deadline instead of pinning a
//!   thread.
//! * **Timers** — park TTL sweeps, background spill of hot-only parked
//!   sessions to the disk tier, idle eviction, slow-loris stall
//!   tracking, and write deadlines — all run as shard-local ticks every
//!   [`ServerConfig::read_tick_ms`].
//! * **Shutdown**: triggering the [`ShutdownToken`] stops the accept
//!   loop and puts every shard into drain: in-flight batch runs finish
//!   and are acked, every connection gets a `SHUTTING_DOWN` error, and
//!   [`ServerHandle::shutdown_and_join`] returns only after all shards
//!   exited and the park drained to disk — no accepted work is dropped.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cira_analysis::engine::pool::WorkerPool;
use cira_obs::http::MetricsServer;
use cira_obs::trace::{self, Stage};
use cira_obs::Registry;
use cira_trace::codec::PackedTrace;

use crate::event::{
    Epoll, Event, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::frame::{write_frame, FrameBuffer, FrameError, Ingest, DEFAULT_MAX_FRAME};
use crate::metrics::{register_shards, ServerMetrics, ShardMetrics};
use crate::park::{ParkRefusal, SessionPark};
use crate::proto::{
    code, decode_client, encode_server, ClientFrame, ServerFrame, PROTO_VERSION,
};
use crate::session::Session;
use crate::shutdown::ShutdownToken;

/// Epoll token of a shard's inbox eventfd.
const WAKE_TOKEN: u64 = 0;
/// Epoll token of the listener (shard 0 only).
const LISTEN_TOKEN: u64 = 1;
/// First token handed to a connection; tokens are monotonic and never
/// reused, so a stale event for a closed connection misses the map.
const FIRST_CONN_TOKEN: u64 = 2;
/// Ready events fetched per `epoll_wait`.
const EVENTS_PER_WAIT: usize = 128;
/// Hot-only parked sessions written to disk per background spill step.
const SPILL_BATCH: usize = 32;
/// Parsed-but-undispatched frames tolerated beyond `max_inflight`
/// before a connection's read interest is dropped (control frames are
/// cheap; only batches count against `max_inflight` itself).
const PARSED_HEADROOM: usize = 16;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted frame body, bytes.
    pub max_frame: u32,
    /// Batches buffered per session before its socket stops being read.
    pub max_inflight: u32,
    /// Shard timer tick, milliseconds: the epoll wait timeout, and the
    /// cadence of sweeps, spills, idle/stall checks, write deadlines.
    pub read_tick_ms: u64,
    /// Mid-frame ticks without progress tolerated before the peer is
    /// dropped as a slow-loris.
    pub stall_ticks: u32,
    /// Per-frame write deadline, milliseconds, measured from the moment
    /// the frame is queued: a peer that stops reading its acks must not
    /// hold buffers forever. `0` disables the deadline.
    pub write_timeout_ms: u64,
    /// Sessions alive at once (attached + parked) before new `HELLO`s
    /// are shed with a `BUSY` frame (rev 1.2).
    pub max_sessions: usize,
    /// Retry-after hint carried in `BUSY` frames, milliseconds.
    pub busy_retry_ms: u32,
    /// Detached sessions kept for `RESUME` (rev 1.2); `0` disables
    /// parking entirely.
    pub park_capacity: usize,
    /// How long a parked session survives before TTL eviction,
    /// milliseconds.
    pub park_ttl_ms: u64,
    /// Close (and park) a session whose connection sends no frame for
    /// this long, milliseconds; `0` disables idle eviction.
    pub idle_timeout_ms: u64,
    /// Directory for the durable park tier (rev 1.3). When set, parked
    /// sessions are checkpointed to a `cira-store` page file there
    /// (`park.cirstore`) and survive a full server restart — including
    /// `kill -9`. `None` keeps parking in-memory only.
    pub park_dir: Option<PathBuf>,
    /// Byte budget for the durable park tier's page file; `0` means
    /// unlimited. When exhausted, parks degrade (teardown parks stay
    /// hot-only) or are refused with `STORE_FULL` (explicit `PARK`).
    pub park_disk_capacity: u64,
    /// Address for the HTTP `GET /metrics` listener (e.g.
    /// `127.0.0.1:9184`), or `None` to expose metrics only over the wire
    /// protocol.
    pub metrics_addr: Option<String>,
    /// Event-loop shards (one epoll loop on one thread each). `0`
    /// resolves to `std::thread::available_parallelism()` at startup.
    pub shards: usize,
    /// Record flight-recorder span events from startup (rev 1.5). The
    /// instrumentation is compiled in either way; disabled it costs one
    /// relaxed atomic load per site (see `BENCH_obs.json`).
    pub trace: bool,
    /// Per-thread trace ring capacity in events (rounded up to a power
    /// of two). Older events are overwritten and counted as dropped.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 4,
            read_tick_ms: 100,
            stall_ticks: 600, // 60 s of mid-frame silence at the default tick
            write_timeout_ms: 30_000,
            max_sessions: 1024,
            busy_retry_ms: 500,
            park_capacity: 64,
            park_ttl_ms: 60_000,
            idle_timeout_ms: 0,
            park_dir: None,
            park_disk_capacity: 0,
            metrics_addr: None,
            shards: 0,
            trace: false,
            trace_capacity: trace::DEFAULT_CAPACITY,
        }
    }
}

/// Process-wide state every shard shares: metrics, the registry,
/// session-id/token generation, and the park of detached sessions.
#[derive(Debug)]
struct Shared {
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    session_ids: AtomicU64,
    /// Seed mixed into resume tokens so they are not guessable across
    /// server restarts.
    token_seed: u64,
    token_ids: AtomicU64,
    park: SessionPark,
    /// How often TTL sweeps run (a fraction of the park TTL).
    sweep_every: Duration,
    /// Monotonic deadline for the next sweep; checked from every
    /// shard's tick, deadline-guarded so only one shard actually runs
    /// it.
    next_sweep: Mutex<Instant>,
    /// How often a background spill step runs.
    spill_every: Duration,
    /// Monotonic deadline for the next spill step; same guard pattern
    /// as `next_sweep`.
    next_spill: Mutex<Instant>,
}

impl Shared {
    /// A fresh, unguessable-enough resume token (splitmix64 over a
    /// per-process random seed plus a counter — no token collides within
    /// a process, and values don't repeat across restarts).
    fn next_token(&self) -> u64 {
        let x = self
            .token_seed
            .wrapping_add(self.token_ids.fetch_add(1, Ordering::Relaxed));
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A fresh token owned by `shard` (`token % nshards == shard`), so
    /// the session's eventual `RESUME` lands where it was minted.
    fn next_token_for(&self, shard: usize, nshards: usize) -> u64 {
        loop {
            let t = self.next_token();
            if nshards <= 1 || (t % nshards as u64) as usize == shard {
                return t;
            }
        }
    }

    /// TTL-sweeps the park if the sweep deadline has passed. Cheap when
    /// it hasn't: one lock, one comparison.
    fn maybe_sweep(&self) {
        let now = Instant::now();
        {
            let mut next = self.next_sweep.lock().unwrap_or_else(|e| e.into_inner());
            if *next > now {
                return;
            }
            *next = now + self.sweep_every;
        }
        self.sweep_park();
    }

    /// TTL-sweeps the park, keeping the eviction counters and the live
    /// gauge in step.
    fn sweep_park(&self) {
        let outcome = self.park.sweep();
        if outcome.expired > 0 {
            self.metrics.park_evicted_ttl.add(outcome.expired as u64);
            self.metrics.sessions_live.add(-(outcome.expired as i64));
            cira_obs::debug!("parked sessions expired", evicted = outcome.expired);
        }
        self.publish_store_gauges();
    }

    /// Writes a bounded batch of hot-only parked sessions through to the
    /// disk tier if the spill deadline has passed (rev 1.4): teardown
    /// parks are durable within a tick or two of parking without the
    /// connection ever waiting on an fsync. A full store stops the step
    /// quietly — the next explicit `PARK` reports `STORE_FULL`; the
    /// background path just retries after the next eviction or sweep.
    fn maybe_spill(&self) {
        if !self.park.has_disk() {
            return;
        }
        let now = Instant::now();
        {
            let mut next = self.next_spill.lock().unwrap_or_else(|e| e.into_inner());
            if *next > now {
                return;
            }
            *next = now + self.spill_every;
        }
        let span = trace::Span::begin(Stage::ParkSpill, 0, 0, trace::NO_SHARD);
        let outcome = self.park.spill_step(SPILL_BATCH);
        if outcome.written > 0 {
            span.end_with(outcome.written as u64);
            self.metrics.park_bg_spilled.add(outcome.written as u64);
            self.publish_store_gauges();
            cira_obs::debug!(
                "parked sessions spilled in background",
                written = outcome.written
            );
        }
    }

    /// Refreshes the disk-tier gauges (record/byte footprint and the
    /// buffer pool's hit/miss counters) after any park mutation.
    fn publish_store_gauges(&self) {
        if !self.park.has_disk() {
            return;
        }
        self.metrics.park_disk_records.set(self.park.disk_records() as i64);
        self.metrics.park_disk_bytes.set(self.park.disk_bytes() as i64);
        let (hits, misses) = self.park.page_cache_stats();
        self.metrics.store_page_hits.set(hits as i64);
        self.metrics.store_page_misses.set(misses as i64);
    }

    /// Applies a [`crate::park::ParkOutcome`]'s counter deltas: spills
    /// keep their sessions (disk copy retained), evictions destroy them.
    fn account_park(&self, outcome: &crate::park::ParkOutcome) {
        if outcome.evicted > 0 {
            self.metrics.park_evicted_capacity.add(outcome.evicted as u64);
            self.metrics.sessions_live.add(-(outcome.evicted as i64));
        }
        if outcome.spilled > 0 {
            self.metrics.park_spilled.add(outcome.spilled as u64);
        }
        if outcome.store_full {
            self.metrics.park_store_full.inc();
        }
        self.publish_store_gauges();
    }
}

/// A session attached to a live connection, with its server-side id.
/// While a batch run executes on the pool the `Active` travels with the
/// job (checked out of the connection) and comes back in the
/// [`Done`] completion — at most one job runs a session at a time, so
/// batches apply in arrival order with no locking around session state.
#[derive(Debug)]
struct Active {
    id: u64,
    session: Session,
}

/// How a connection should be closed once its write queue drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Close {
    /// Orderly exchange: the session (if any) is destroyed, not parked.
    Clean,
    /// Fault: the session (if any) is parked for `RESUME`.
    Abrupt,
}

/// One queued outbound frame: length prefix + body, a partial-write
/// cursor, and the absolute deadline by which the peer must have
/// consumed it.
#[derive(Debug)]
struct WriteItem {
    /// 4-byte little-endian length prefix followed by the encoded body.
    buf: Vec<u8>,
    /// Bytes of `buf` already written.
    off: usize,
    /// Body length (for the `bytes_out` counter on completion).
    body_len: usize,
    /// Queue-time write deadline, when `write_timeout_ms > 0`.
    deadline: Option<Instant>,
}

/// All per-connection state, owned by exactly one shard at a time.
#[derive(Debug)]
struct ConnState {
    stream: TcpStream,
    fd: RawFd,
    /// Epoll token on the owning shard (reassigned on migration).
    token: u64,
    /// Incremental parse buffer filled on readiness.
    rbuf: FrameBuffer,
    /// Decoded frames awaiting dispatch.
    parsed: VecDeque<ClientFrame>,
    /// Batches inside `parsed` (the backpressure signal).
    queued_batches: usize,
    /// Outbound frames awaiting `EPOLLOUT`.
    wq: VecDeque<WriteItem>,
    /// The attached session, unless checked out into a running job.
    active: Option<Active>,
    /// A batch run for this connection is executing on the pool.
    busy: bool,
    /// Interest bits currently registered with epoll.
    interest: u32,
    /// When the last complete frame arrived (idle eviction).
    last_frame: Instant,
    /// Total bytes ever ingested (stall progress detection).
    ingested: u64,
    /// `ingested` as of the last stall check.
    last_seen_ingested: u64,
    /// Milliseconds spent mid-frame without progress.
    stall_ms: u64,
    /// The peer closed its write half.
    read_eof: bool,
    /// The stream is unusable; queued writes are discarded.
    io_dead: bool,
    /// Set once the connection is condemned; it tears down as soon as
    /// it is not busy and its write queue has drained (or died).
    closing: Option<Close>,
}

impl ConnState {
    fn new(stream: TcpStream, fd: RawFd, token: u64) -> Self {
        Self {
            stream,
            fd,
            token,
            rbuf: FrameBuffer::new(),
            parsed: VecDeque::new(),
            queued_batches: 0,
            wq: VecDeque::new(),
            active: None,
            busy: false,
            interest: 0,
            last_frame: Instant::now(),
            ingested: 0,
            last_seen_ingested: 0,
            stall_ms: 0,
            read_eof: false,
            io_dead: false,
            closing: None,
        }
    }
}

/// A connection in flight between shards: everything it owns plus the
/// `RESUME` frame that triggered the migration (re-dispatched on the
/// owning shard).
#[derive(Debug)]
struct Handoff {
    conn: ConnState,
    resume: ClientFrame,
}

/// A finished batch run coming back from the pool to the owning shard.
#[derive(Debug)]
struct Done {
    conn_id: u64,
    active: Active,
    acks: Vec<ServerFrame>,
}

/// Messages posted to a shard's inbox (new sockets from the acceptor,
/// migrating connections, batch completions).
#[derive(Debug)]
enum ShardMsg {
    NewConn(TcpStream),
    Handoff(Box<Handoff>),
    Done(Box<Done>),
}

/// A shard's cross-thread mailbox: a locked queue plus the eventfd that
/// wakes the shard's epoll loop when something lands in it.
#[derive(Debug)]
struct ShardShared {
    inbox: Mutex<VecDeque<ShardMsg>>,
    wake: WakeFd,
}

impl ShardShared {
    fn post(&self, msg: ShardMsg) {
        self.inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(msg);
        self.wake.wake();
    }
}

/// A connection's flight-recorder trace id: the owning shard in the
/// high bits keeps per-shard epoll tokens unique process-wide (the +1
/// distinguishes shard 0's connections from the "no trace id" zero).
fn conn_trace_id(shard: usize, conn_token: u64) -> u64 {
    ((shard as u64 + 1) << 32) | (conn_token & 0xffff_ffff)
}

/// What dispatching one frame decided.
enum Action {
    Continue,
    CloseClean,
    CloseAbrupt,
    /// `RESUME` for a token another shard owns: migrate the connection.
    Migrate { owner: usize, resume: ClientFrame },
}

/// One event-loop shard: an epoll instance, the connections it owns,
/// and (on shard 0) the listener.
struct Shard {
    index: usize,
    nshards: usize,
    cfg: ServerConfig,
    pool: &'static WorkerPool,
    shared: Arc<Shared>,
    /// This shard's own mailbox.
    me: Arc<ShardShared>,
    /// Every shard's mailbox, self included, indexed by shard.
    peers: Vec<Arc<ShardShared>>,
    epoll: Epoll,
    /// The accept socket; only shard 0 holds one.
    listener: Option<TcpListener>,
    conns: HashMap<u64, ConnState>,
    next_conn: u64,
    /// Round-robin cursor for distributing accepted sockets.
    rr: usize,
    smetrics: Arc<Vec<ShardMetrics>>,
    shutdown: ShutdownToken,
    draining: bool,
}

impl Shard {
    fn run(mut self) {
        trace::register_thread(
            &format!("cira-serve-shard{}", self.index),
            Some(self.index as u16),
        );
        let tick = Duration::from_millis(self.cfg.read_tick_ms.max(1));
        let timeout_ms = tick.as_millis().min(i32::MAX as u128) as i32;
        let mut events = [Event::default(); EVENTS_PER_WAIT];
        let mut last_tick = Instant::now();
        loop {
            let n = self.epoll.wait(&mut events, timeout_ms).unwrap_or(0);
            if n > 0 {
                self.smetrics[self.index].wakeups.inc();
            }
            self.smetrics[self.index].ready_depth.set(n as i64);
            for ev in &events[..n] {
                let (key, ready) = (ev.key(), ev.ready());
                match key {
                    WAKE_TOKEN => {
                        self.me.wake.drain();
                        self.drain_inbox();
                    }
                    LISTEN_TOKEN => self.accept_ready(),
                    id => self.service(id, ready),
                }
            }
            if self.shutdown.is_triggered() && !self.draining {
                self.enter_drain();
            }
            let now = Instant::now();
            if now.duration_since(last_tick) >= tick {
                let dt = now.duration_since(last_tick);
                last_tick = now;
                self.tick(dt);
            }
            if self.draining
                && self.conns.is_empty()
                && self
                    .me
                    .inbox
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty()
            {
                break;
            }
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        id
    }

    fn drain_inbox(&mut self) {
        loop {
            let msg = self
                .me
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match msg {
                Some(ShardMsg::NewConn(stream)) => {
                    trace::instant(Stage::Inbox, 0, 0, self.index as u16, 0);
                    self.register_conn(stream);
                }
                Some(ShardMsg::Handoff(h)) => {
                    trace::instant(Stage::Inbox, 0, 0, self.index as u16, 1);
                    self.adopt(h);
                }
                Some(ShardMsg::Done(d)) => {
                    if trace::enabled() {
                        trace::instant(
                            Stage::Inbox,
                            conn_trace_id(self.index, d.conn_id),
                            d.active.session.token(),
                            self.index as u16,
                            d.acks.len() as u64,
                        );
                    }
                    self.complete(d);
                }
                None => break,
            }
        }
    }

    /// Accepts until the listener would block, distributing sockets
    /// round-robin across all shards (self included).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, peer)) => {
                    self.shared.metrics.connections_total.inc();
                    self.shared.metrics.connections_active.inc();
                    cira_obs::debug!("connection accepted", peer = peer);
                    let target = self.rr % self.nshards;
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.index {
                        self.register_conn(stream);
                    } else {
                        self.peers[target].post(ShardMsg::NewConn(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock, or transient accept errors
            }
        }
    }

    /// Takes ownership of a socket: nonblocking, registered, tracked.
    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.shared.metrics.connections_active.dec();
            return;
        }
        let id = self.next_id();
        let fd = stream.as_raw_fd();
        let mut conn = ConnState::new(stream, fd, id);
        if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP, id).is_err() {
            self.shared.metrics.connections_active.dec();
            return;
        }
        conn.interest = EPOLLIN | EPOLLRDHUP;
        trace::instant(Stage::Accept, conn_trace_id(self.index, id), 0, self.index as u16, 0);
        self.smetrics[self.index].connections.inc();
        if self.draining {
            self.send(
                &mut conn,
                &ServerFrame::Error {
                    code: code::SHUTTING_DOWN,
                    message: "server is shutting down".to_owned(),
                },
            );
            conn.closing = Some(Close::Clean);
        }
        self.dispose(id, conn);
    }

    /// Receives a migrating connection and re-dispatches its `RESUME`.
    fn adopt(&mut self, h: Box<Handoff>) {
        let Handoff { mut conn, resume } = *h;
        let id = self.next_id();
        conn.token = id;
        conn.interest = 0;
        self.smetrics[self.index].connections.inc();
        if self.epoll.add(conn.fd, 0, id).is_err() {
            conn.closing = Some(Close::Abrupt);
            conn.io_dead = true;
            self.teardown(conn, false);
            return;
        }
        conn.parsed.push_front(resume);
        self.pump_and_dispose(id, conn);
    }

    /// Lands a finished batch run: the session checks back in, acks are
    /// queued, and anything the connection parsed meanwhile dispatches.
    fn complete(&mut self, d: Box<Done>) {
        let Done {
            conn_id,
            active,
            acks,
        } = *d;
        let Some(mut conn) = self.conns.remove(&conn_id) else {
            // Defensive: connections stay in the map while busy, so this
            // should not happen — but never silently lose a session.
            self.park_orphan(active);
            return;
        };
        if trace::enabled() {
            trace::instant(
                Stage::Complete,
                conn_trace_id(self.index, conn_id),
                active.session.token(),
                self.index as u16,
                acks.len() as u64,
            );
        }
        conn.busy = false;
        debug_assert!(conn.active.is_none(), "session double-attached");
        conn.active = Some(active);
        for ack in &acks {
            self.send(&mut conn, ack);
        }
        self.pump_and_dispose(conn_id, conn);
    }

    /// Parks a session whose connection vanished mid-run (mirrors the
    /// teardown park path, minus the socket).
    fn park_orphan(&self, active: Active) {
        if self.cfg.park_capacity == 0 && !self.shared.park.has_disk() {
            self.shared.metrics.sessions_live.dec();
            return;
        }
        let token = active.session.token();
        let outcome = self.shared.park.insert(token, active.id, active.session);
        self.shared.account_park(&outcome);
        if self.cfg.park_capacity > 0 || outcome.persisted {
            self.shared.metrics.sessions_parked.inc();
        }
    }

    /// One connection's readiness: ingest, flush, then pump.
    fn service(&mut self, id: u64, ready: u32) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        if ready & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
            && !conn.read_eof
            && conn.closing.is_none()
        {
            match conn.rbuf.fill_from(&mut conn.stream) {
                Ok(Ingest::Drained { bytes }) | Ok(Ingest::More { bytes }) => {
                    conn.ingested = conn.ingested.wrapping_add(bytes as u64);
                }
                Ok(Ingest::Eof { bytes }) => {
                    conn.ingested = conn.ingested.wrapping_add(bytes as u64);
                    conn.read_eof = true;
                }
                Err(_) => {
                    conn.io_dead = true;
                    conn.wq.clear();
                    if conn.closing.is_none() {
                        conn.closing = Some(Close::Abrupt);
                    }
                }
            }
        }
        if ready & EPOLLOUT != 0 {
            self.flush(&mut conn);
        }
        self.pump_and_dispose(id, conn);
    }

    /// Parse → dispatch → finish-check → dispose, the common tail of
    /// every per-connection entry point. The connection is owned (out of
    /// the map) for the duration and re-inserted unless it tears down or
    /// migrates.
    fn pump_and_dispose(&mut self, id: u64, mut conn: ConnState) {
        if conn.closing.is_none() {
            self.parse(&mut conn);
        }
        if let Some((owner, resume)) = self.dispatch(id, &mut conn) {
            let _ = self.epoll.del(conn.fd);
            conn.interest = 0;
            if trace::enabled() {
                let token = match &resume {
                    ClientFrame::Resume { token, .. } => *token,
                    _ => 0,
                };
                trace::instant(
                    Stage::Migrate,
                    conn_trace_id(self.index, conn.token),
                    token,
                    self.index as u16,
                    owner as u64,
                );
            }
            self.smetrics[self.index].connections.dec();
            self.smetrics[self.index].migrations_out.inc();
            cira_obs::debug!(
                "resume migrating to owning shard",
                from = self.index,
                to = owner
            );
            self.peers[owner].post(ShardMsg::Handoff(Box::new(Handoff { conn, resume })));
            return;
        }
        self.finish_checks(&mut conn);
        if conn.closing.is_some() {
            conn.parsed.clear();
            conn.queued_batches = 0;
        }
        self.dispose(id, conn);
    }

    /// Pulls complete frames out of the parse buffer.
    fn parse(&mut self, conn: &mut ConnState) {
        let metrics = Arc::clone(&self.shared.metrics);
        while conn.closing.is_none() {
            match conn.rbuf.next_frame(self.cfg.max_frame) {
                Ok(Some(body)) => {
                    conn.last_frame = Instant::now();
                    metrics.frames_in.inc();
                    metrics.bytes_in.add(body.len() as u64);
                    if trace::enabled() {
                        trace::instant(
                            Stage::Parse,
                            conn_trace_id(self.index, conn.token),
                            conn.active.as_ref().map_or(0, |a| a.session.token()),
                            self.index as u16,
                            body.len() as u64,
                        );
                    }
                    match decode_client(&body) {
                        Ok(frame) => {
                            if matches!(frame, ClientFrame::Batch { .. }) {
                                conn.queued_batches += 1;
                            }
                            conn.parsed.push_back(frame);
                        }
                        Err(e) => {
                            self.conn_error(conn, code::MALFORMED, e.to_string());
                            conn.closing = Some(Close::Abrupt);
                        }
                    }
                }
                Ok(None) => break,
                Err(FrameError::Oversized { len, max }) => {
                    self.conn_error(
                        conn,
                        code::OVERSIZED,
                        format!("frame of {len} bytes exceeds maximum {max}"),
                    );
                    conn.closing = Some(Close::Abrupt);
                }
                Err(_) => {
                    conn.closing = Some(Close::Abrupt);
                }
            }
        }
    }

    /// Dispatches parsed frames in order until the connection is busy,
    /// condemned, or out of frames. Consecutive batches are checked out
    /// as one pool job. Returns a migration target if a `RESUME` belongs
    /// to another shard.
    fn dispatch(&mut self, id: u64, conn: &mut ConnState) -> Option<(usize, ClientFrame)> {
        loop {
            if conn.closing.is_some() || conn.busy {
                return None;
            }
            let batch_run = matches!(conn.parsed.front(), Some(ClientFrame::Batch { .. }))
                && conn.active.is_some();
            if batch_run {
                let mut run = Vec::new();
                while matches!(conn.parsed.front(), Some(ClientFrame::Batch { .. })) {
                    if let Some(ClientFrame::Batch { seq, records }) = conn.parsed.pop_front()
                    {
                        conn.queued_batches = conn.queued_batches.saturating_sub(1);
                        run.push((seq, records));
                    }
                }
                let active = conn.active.take().expect("session checked above");
                conn.busy = true;
                if trace::enabled() {
                    trace::instant(
                        Stage::Checkout,
                        conn_trace_id(self.index, id),
                        active.session.token(),
                        self.index as u16,
                        run.len() as u64,
                    );
                }
                self.spawn_batch_job(id, active, run);
                continue;
            }
            let frame = conn.parsed.pop_front()?;
            if matches!(frame, ClientFrame::Batch { .. }) {
                conn.queued_batches = conn.queued_batches.saturating_sub(1);
            }
            match self.process_frame(conn, frame) {
                Action::Continue => {}
                Action::CloseClean => conn.closing = Some(Close::Clean),
                Action::CloseAbrupt => conn.closing = Some(Close::Abrupt),
                Action::Migrate { owner, resume } => return Some((owner, resume)),
            }
        }
    }

    /// Ships a run of batches (with the checked-out session) to the
    /// worker pool; the completion comes back through this shard's inbox.
    fn spawn_batch_job(&self, id: u64, mut active: Active, run: Vec<(u32, PackedTrace)>) {
        let metrics = Arc::clone(&self.shared.metrics);
        let me = Arc::clone(&self.me);
        let trace_id = conn_trace_id(self.index, id);
        let shard = self.index as u16;
        self.pool.spawn(move || {
            // Ambient attribution: chunk events inside the engine and
            // any store I/O this job triggers inherit the ids.
            trace::set_ctx(trace_id, active.session.token(), shard);
            let mut acks = Vec::with_capacity(run.len());
            for (seq, records) in run {
                let n = records.len() as u64;
                let span = trace::Span::begin_ctx(Stage::Score);
                let t0 = Instant::now();
                let ack = active.session.apply_batch(seq, &records);
                let service_us = t0.elapsed().as_micros() as u64;
                span.end_with(n);
                if let ServerFrame::BatchAck {
                    mispredicts,
                    low_confidence,
                    ..
                } = &ack
                {
                    metrics.batches.inc();
                    metrics.records.add(n);
                    metrics.mispredicts.add(*mispredicts);
                    metrics.low_confidence.add(*low_confidence);
                    metrics.batch_records.record(n);
                    metrics.batch_service_us.record(service_us);
                }
                acks.push(ack);
            }
            trace::clear_ctx();
            me.post(ShardMsg::Done(Box::new(Done {
                conn_id: id,
                active,
                acks,
            })));
        });
    }

    /// End-of-stream and drain transitions, once everything parsed has
    /// dispatched.
    fn finish_checks(&mut self, conn: &mut ConnState) {
        if conn.closing.is_some() || conn.busy || !conn.parsed.is_empty() {
            return;
        }
        if conn.read_eof {
            if conn.rbuf.mid_frame() {
                // Mid-frame disconnect: nothing sensible to say to the
                // peer; just clean up (breakdown slot 0).
                self.shared.metrics.protocol_error(0);
            }
            conn.closing = Some(Close::Abrupt);
        } else if self.draining {
            // Everything already accepted is answered; tell the peer,
            // close. The process is going away, so the session is *not*
            // parked here — the handle's final drain persists the park.
            self.send(
                conn,
                &ServerFrame::Error {
                    code: code::SHUTTING_DOWN,
                    message: "server is shutting down".to_owned(),
                },
            );
            conn.closing = Some(Close::Clean);
        }
    }

    /// Tears down now if condemned and quiescent, otherwise re-arms
    /// interest and returns the connection to the map.
    fn dispose(&mut self, id: u64, mut conn: ConnState) {
        if let Some(close) = conn.closing {
            if !conn.busy && (conn.wq.is_empty() || conn.io_dead) {
                self.teardown(conn, close == Close::Clean);
                return;
            }
        }
        self.update_interest(&mut conn);
        self.conns.insert(id, conn);
    }

    /// Recomputes and applies epoll interest: reads gated on dispatch
    /// backlog (backpressure), writes on a non-empty queue.
    fn update_interest(&self, conn: &mut ConnState) {
        let mut want = 0u32;
        let parsed_cap = self.cfg.max_inflight as usize + PARSED_HEADROOM;
        if conn.closing.is_none()
            && !conn.read_eof
            && !conn.io_dead
            && !self.draining
            && conn.queued_batches < self.cfg.max_inflight as usize
            && conn.parsed.len() < parsed_cap
        {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !conn.wq.is_empty() && !conn.io_dead {
            want |= EPOLLOUT;
        }
        if want != conn.interest && self.epoll.modify(conn.fd, want, conn.token).is_ok() {
            conn.interest = want;
        }
    }

    /// Final close: deregister, park-or-destroy the session, shut the
    /// socket down, settle the gauges.
    fn teardown(&mut self, mut conn: ConnState, clean: bool) {
        let _ = self.epoll.del(conn.fd);
        let metrics = &self.shared.metrics;
        if let Some(active) = conn.active.take() {
            if clean || (self.cfg.park_capacity == 0 && !self.shared.park.has_disk()) {
                metrics.sessions_live.dec();
            } else {
                // Park for RESUME; the last acked batch is durable state.
                // The checkpoint reaches disk via the background spill
                // within a tick or two (explicit PARK frames are still
                // write-through before their ack).
                let token = active.session.token();
                let session_id = active.id;
                trace::set_ctx(conn_trace_id(self.index, conn.token), token, self.index as u16);
                let span = trace::Span::begin_ctx(Stage::ParkSpill);
                let outcome = self.shared.park.insert(token, session_id, active.session);
                span.end_with(outcome.persisted as u64);
                trace::clear_ctx();
                self.shared.account_park(&outcome);
                // `evicted` counts destroyed sessions; with hot capacity
                // 0 and no disk write-through that is this session
                // itself, i.e. it was not parked at all.
                let parked = self.cfg.park_capacity > 0 || outcome.persisted;
                if parked {
                    metrics.sessions_parked.inc();
                    cira_obs::debug!(
                        "session parked",
                        session = session_id,
                        token = token,
                        shard = self.index,
                        durable = outcome.persisted,
                    );
                }
            }
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        metrics.connections_active.dec();
        self.smetrics[self.index].connections.dec();
        cira_obs::debug!("connection closed");
    }

    /// Serializes one frame onto the write queue (stamping its deadline)
    /// and flushes as much as the socket will take right now.
    fn send(&self, conn: &mut ConnState, frame: &ServerFrame) {
        if conn.io_dead {
            return;
        }
        let body = encode_server(frame);
        if trace::enabled() {
            trace::instant(
                Stage::WriteQueue,
                conn_trace_id(self.index, conn.token),
                conn.active.as_ref().map_or(0, |a| a.session.token()),
                self.index as u16,
                body.len() as u64,
            );
        }
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let deadline = (self.cfg.write_timeout_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(self.cfg.write_timeout_ms));
        conn.wq.push_back(WriteItem {
            off: 0,
            body_len: body.len(),
            buf,
            deadline,
        });
        self.flush(conn);
    }

    /// Flushes the write queue until it empties or the socket would
    /// block; a write error condemns the connection.
    fn flush(&self, conn: &mut ConnState) {
        let span = (trace::enabled() && !conn.wq.is_empty()).then(|| {
            trace::Span::begin(
                Stage::WriteFlush,
                conn_trace_id(self.index, conn.token),
                conn.active.as_ref().map_or(0, |a| a.session.token()),
                self.index as u16,
            )
        });
        let written = self.flush_inner(conn);
        if let Some(span) = span {
            span.end_with(written);
        }
    }

    /// [`flush`](Self::flush) minus the tracing shell; returns the bytes
    /// written this call.
    fn flush_inner(&self, conn: &mut ConnState) -> u64 {
        let ConnState {
            stream,
            wq,
            io_dead,
            closing,
            ..
        } = conn;
        let mut written = 0u64;
        if *io_dead {
            wq.clear();
            return written;
        }
        while let Some(item) = wq.front_mut() {
            while item.off < item.buf.len() {
                match stream.write(&item.buf[item.off..]) {
                    Ok(0) => {
                        *io_dead = true;
                        break;
                    }
                    Ok(n) => {
                        item.off += n;
                        written += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return written,
                    Err(_) => {
                        *io_dead = true;
                        break;
                    }
                }
            }
            if *io_dead {
                wq.clear();
                if closing.is_none() {
                    *closing = Some(Close::Abrupt);
                }
                return written;
            }
            let body_len = item.body_len;
            self.shared.metrics.frames_out.inc();
            self.shared.metrics.bytes_out.add(body_len as u64);
            wq.pop_front();
        }
        written
    }

    /// Counts a protocol violation, queues its `ERROR` frame, and — with
    /// tracing on — snapshots the flight recorder so the events leading
    /// up to the fault survive (throttled to one dump per second).
    fn conn_error(&self, conn: &mut ConnState, error_code: u16, message: String) {
        self.shared.metrics.protocol_error(error_code);
        trace::instant(
            Stage::Fault,
            conn_trace_id(self.index, conn.token),
            0,
            self.index as u16,
            u64::from(error_code),
        );
        if let Some(path) = trace::flight_dump("protocol-error") {
            cira_obs::info!("flight recorder dumped", path = path.display());
        }
        cira_obs::debug!("protocol error", code = error_code, detail = message);
        self.send(
            conn,
            &ServerFrame::Error {
                code: error_code,
                message,
            },
        );
    }

    /// Handles one non-batch frame inline on the shard. Ordering with
    /// respect to batches is structural: frames dispatch strictly in
    /// arrival order and never while a batch run is in flight, so every
    /// `SNAPSHOT`/`RESET`/`PARK`/`GOODBYE` observes all batches that
    /// preceded it.
    fn process_frame(&mut self, conn: &mut ConnState, frame: ClientFrame) -> Action {
        let has_session = conn.active.is_some();
        let metrics = Arc::clone(&self.shared.metrics);
        match frame {
            ClientFrame::Hello { version, config } => {
                if version != PROTO_VERSION {
                    self.conn_error(
                        conn,
                        code::UNSUPPORTED_VERSION,
                        format!(
                            "protocol version {version} not supported; this server speaks {PROTO_VERSION}"
                        ),
                    );
                    return Action::CloseClean;
                }
                // Load shedding: every live session (attached or parked)
                // holds predictor + table state, so cap them and tell the
                // client when to come back rather than thrash or hang.
                if !has_session
                    && metrics.sessions_live.get().max(0) as usize >= self.cfg.max_sessions
                {
                    metrics.sessions_shed.inc();
                    cira_obs::info!(
                        "session shed at capacity",
                        max_sessions = self.cfg.max_sessions,
                        retry_after_ms = self.cfg.busy_retry_ms,
                    );
                    self.send(
                        conn,
                        &ServerFrame::Busy {
                            retry_after_ms: self.cfg.busy_retry_ms,
                            message: format!(
                                "at capacity ({} sessions); retry later",
                                self.cfg.max_sessions
                            ),
                        },
                    );
                    return Action::CloseClean;
                }
                let token = self.shared.next_token_for(self.index, self.nshards);
                match Session::from_hello(&config, token) {
                    Ok(session) => {
                        let session_id =
                            self.shared.session_ids.fetch_add(1, Ordering::Relaxed);
                        let ack = ServerFrame::HelloAck {
                            version: PROTO_VERSION,
                            session: session_id,
                            max_frame: self.cfg.max_frame,
                            max_inflight: self.cfg.max_inflight,
                            predictor: session.predictor_desc().to_owned(),
                            mechanism: session.mechanism_desc().to_owned(),
                            token,
                        };
                        cira_obs::info!(
                            "session opened",
                            session = session_id,
                            predictor = session.predictor_desc(),
                            mechanism = session.mechanism_desc(),
                        );
                        let replaced = conn.active.replace(Active {
                            id: session_id,
                            session,
                        });
                        metrics.sessions_opened.inc();
                        // Re-HELLO on a live connection destroys the old
                        // session, so the live gauge only moves for new ones.
                        if replaced.is_none() {
                            metrics.sessions_live.inc();
                        }
                        self.send(conn, &ack);
                        Action::Continue
                    }
                    Err(message) => {
                        self.conn_error(conn, code::BAD_SPEC, message);
                        Action::CloseClean
                    }
                }
            }
            ClientFrame::Resume { version, token } => {
                if version != PROTO_VERSION {
                    self.conn_error(
                        conn,
                        code::UNSUPPORTED_VERSION,
                        format!(
                            "protocol version {version} not supported; this server speaks {PROTO_VERSION}"
                        ),
                    );
                    return Action::CloseClean;
                }
                // Session affinity: tokens are owned by `token % nshards`.
                // A resume landing elsewhere migrates the connection to
                // its owner (which re-dispatches this same frame) —
                // unless the server is draining, in which case any shard
                // answers.
                let owner = (token % self.nshards as u64) as usize;
                if !has_session && owner != self.index && !self.draining {
                    return Action::Migrate {
                        owner,
                        resume: ClientFrame::Resume { version, token },
                    };
                }
                metrics.resume_attempts.inc();
                if has_session {
                    self.conn_error(
                        conn,
                        code::MALFORMED,
                        "RESUME on a connection that already has a session".to_owned(),
                    );
                    return Action::CloseAbrupt;
                }
                trace::set_ctx(conn_trace_id(self.index, conn.token), token, self.index as u16);
                let load_span = trace::Span::begin_ctx(Stage::ParkLoad);
                let taken = self.shared.park.take(token);
                load_span.end_with(taken.as_ref().is_some_and(|r| r.from_disk) as u64);
                trace::clear_ctx();
                match taken {
                    Some(resumed) => {
                        let session_id = resumed.session_id;
                        let from_disk = resumed.from_disk;
                        let session = resumed.session;
                        let ack =
                            session.resume_ack(session_id, self.cfg.max_frame, self.cfg.max_inflight);
                        cira_obs::info!(
                            "session resumed",
                            session = session_id,
                            last_seq = format!("{:?}", session.last_seq()),
                            from_disk = from_disk,
                            shard = self.index,
                        );
                        conn.active = Some(Active {
                            id: session_id,
                            session,
                        });
                        metrics.sessions_resumed.inc();
                        if from_disk {
                            // The hot tier missed: this session was spilled
                            // or recovered, decoded from its checkpoint.
                            metrics.park_loaded.inc();
                        }
                        self.shared.publish_store_gauges();
                        self.send(conn, &ack);
                        Action::Continue
                    }
                    None => {
                        metrics.resume_failures.inc();
                        self.conn_error(
                            conn,
                            code::UNKNOWN_SESSION,
                            "resume token names no parked session (expired or evicted)"
                                .to_owned(),
                        );
                        Action::CloseClean
                    }
                }
            }
            // Observability and close frames need no session (rev 1.1):
            // operator tooling like `cira stats` connects, asks, disconnects.
            ClientFrame::Stats => {
                self.send(conn, &ServerFrame::StatsReply(metrics.snapshot()));
                Action::Continue
            }
            ClientFrame::Metrics => {
                self.send(
                    conn,
                    &ServerFrame::MetricsReply {
                        text: self.shared.registry.render(),
                    },
                );
                Action::Continue
            }
            ClientFrame::TraceDump => {
                // Well-formed JSON with an empty event list when tracing
                // is off, so `cira trace dump` degrades gracefully.
                self.send(
                    conn,
                    &ServerFrame::TraceDumpReply {
                        json: trace::dump_chrome_json(None),
                    },
                );
                Action::Continue
            }
            ClientFrame::Goodbye => {
                self.send(conn, &ServerFrame::GoodbyeAck);
                Action::CloseClean
            }
            _ if !has_session => {
                self.conn_error(
                    conn,
                    code::HELLO_REQUIRED,
                    "first frame must be HELLO".to_owned(),
                );
                Action::CloseClean
            }
            ClientFrame::Batch { .. } => {
                // Batches with a session are checked out as pool jobs in
                // `dispatch`; they never reach this inline path.
                debug_assert!(false, "BATCH dispatches to the worker pool");
                Action::Continue
            }
            ClientFrame::Snapshot => {
                let reply = conn
                    .active
                    .as_ref()
                    .expect("session checked above")
                    .session
                    .snapshot();
                self.send(conn, &reply);
                Action::Continue
            }
            ClientFrame::Reset => {
                conn.active
                    .as_mut()
                    .expect("session checked above")
                    .session
                    .reset();
                metrics.sessions_reset.inc();
                self.send(conn, &ServerFrame::ResetAck);
                Action::Continue
            }
            ClientFrame::Park => {
                let active = conn.active.take().expect("session checked above");
                let Active { id, session } = active;
                let token = session.token();
                trace::set_ctx(conn_trace_id(self.index, conn.token), token, self.index as u16);
                let park_span = trace::Span::begin_ctx(Stage::ParkSpill);
                let parked = self.shared.park.insert_durable(token, id, session);
                park_span.end_with(parked.is_ok() as u64);
                trace::clear_ctx();
                match parked {
                    Ok(outcome) => {
                        self.shared.account_park(&outcome);
                        metrics.sessions_parked.inc();
                        cira_obs::info!(
                            "session parked on request",
                            session = id,
                            durable = outcome.persisted,
                        );
                        // The ack is the durability receipt: sent only after
                        // the checkpoint is on disk (when a disk tier exists).
                        self.send(conn, &ServerFrame::ParkedAck { token });
                        Action::CloseClean
                    }
                    Err(ParkRefusal::Full(session)) => {
                        // Transient: hand the session back and mirror BUSY.
                        metrics.park_store_full.inc();
                        conn.active = Some(Active {
                            id,
                            session: *session,
                        });
                        self.send(
                            conn,
                            &ServerFrame::StoreFull {
                                retry_after_ms: self.cfg.busy_retry_ms,
                                message: "disk park tier at capacity; session still attached"
                                    .to_owned(),
                            },
                        );
                        Action::Continue
                    }
                    Err(ParkRefusal::Disabled(session)) => {
                        // Permanent for this server config; typed ERROR.
                        conn.active = Some(Active {
                            id,
                            session: *session,
                        });
                        self.conn_error(
                            conn,
                            code::STORE_FULL,
                            "parking disabled on this server; session still attached"
                                .to_owned(),
                        );
                        Action::Continue
                    }
                }
            }
        }
    }

    /// Stops accepting and condemns every idle connection; busy ones
    /// drain their in-flight run first.
    fn enter_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.del(listener.as_raw_fd());
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.remove(&id) {
                self.pump_and_dispose(id, conn);
            }
        }
    }

    /// The shard-local timer: park sweeps and spills, the parse-buffer
    /// gauge, and per-connection stall/idle/write-deadline checks.
    fn tick(&mut self, dt: Duration) {
        // SIGUSR1 asks for an on-demand flight-recorder dump; the swap
        // in `take_usr1` means exactly one shard services each signal.
        if crate::shutdown::take_usr1() {
            if !trace::is_initialized() {
                cira_obs::warn!(
                    "SIGUSR1 trace dump skipped (tracing never initialized; start with --trace)"
                );
            } else {
                match trace::dump_to_dir("sigusr1") {
                    Some(path) => {
                        cira_obs::info!("trace dumped on SIGUSR1", path = path.display());
                    }
                    None => cira_obs::warn!(
                        "SIGUSR1 trace dump skipped (CIRA_TRACE_DIR unset or unwritable)"
                    ),
                }
            }
        }
        self.shared.maybe_sweep();
        self.shared.maybe_spill();
        let dt_ms = dt.as_millis().min(u64::MAX as u128) as u64;
        let now = Instant::now();
        let idle_timeout = Duration::from_millis(self.cfg.idle_timeout_ms);
        let stall_budget_ms =
            u64::from(self.cfg.stall_ticks).saturating_mul(self.cfg.read_tick_ms.max(1));
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut parse_bytes = 0i64;
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else { continue };
            parse_bytes += conn.rbuf.buffered() as i64;
            // Slow-loris guard: a peer silent mid-frame burns its stall
            // budget; progress is any newly ingested byte.
            if conn.closing.is_none() && conn.rbuf.mid_frame() {
                if conn.ingested == conn.last_seen_ingested {
                    conn.stall_ms = conn.stall_ms.saturating_add(dt_ms);
                    if conn.stall_ms > stall_budget_ms {
                        self.shared.metrics.protocol_error(0);
                        conn.closing = Some(Close::Abrupt);
                    }
                }
                conn.last_seen_ingested = conn.ingested;
            } else if !conn.rbuf.mid_frame() {
                conn.stall_ms = 0;
                conn.last_seen_ingested = conn.ingested;
            }
            // Idle eviction: sessions park (resumable) rather than dying
            // outright; session-less idlers (stats pollers that wandered
            // off) just close.
            if !idle_timeout.is_zero()
                && conn.closing.is_none()
                && !conn.busy
                && conn.parsed.is_empty()
                && !conn.rbuf.mid_frame()
                && now.duration_since(conn.last_frame) > idle_timeout
            {
                if conn.active.is_some() {
                    self.shared.metrics.sessions_idle_evicted.inc();
                    self.conn_error(
                        &mut conn,
                        code::IDLE_TIMEOUT,
                        format!(
                            "no frame for {} ms; session parked",
                            self.cfg.idle_timeout_ms
                        ),
                    );
                    conn.closing = Some(Close::Abrupt);
                } else {
                    conn.closing = Some(Close::Clean);
                }
            }
            // Write deadline: the oldest queued frame must be consumed
            // before its per-frame deadline (the rev-1.4 semantics of
            // `write_timeout_ms`).
            if let Some(item) = conn.wq.front() {
                if item.deadline.is_some_and(|d| now >= d) {
                    cira_obs::debug!("write deadline missed; dropping connection");
                    trace::instant(
                        Stage::Fault,
                        conn_trace_id(self.index, conn.token),
                        conn.active.as_ref().map_or(0, |a| a.session.token()),
                        self.index as u16,
                        0,
                    );
                    if let Some(path) = trace::flight_dump("write-deadline") {
                        cira_obs::info!("flight recorder dumped", path = path.display());
                    }
                    conn.io_dead = true;
                    conn.wq.clear();
                    if conn.closing.is_none() {
                        conn.closing = Some(Close::Abrupt);
                    }
                }
            }
            self.pump_and_dispose(id, conn);
        }
        self.smetrics[self.index].parse_buffer_bytes.set(parse_bytes);
    }
}

/// A running server: its address, metrics, and shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    /// The HTTP `/metrics` listener, when configured; shuts down when the
    /// handle drops.
    metrics_http: Option<MetricsServer>,
    shutdown: ShutdownToken,
    shared: Arc<Shared>,
    shard_shared: Vec<Arc<ShardShared>>,
    shards: Option<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (real ephemeral port included).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The registry behind `GET /metrics` and the `METRICS` frame (server
    /// counters, per-shard gauges, session histograms, the worker pool).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The bound address of the HTTP `/metrics` listener, if one was
    /// configured via [`ServerConfig::metrics_addr`].
    pub fn metrics_http_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(MetricsServer::addr)
    }

    /// The token that stops this server; share it with a signal handler.
    pub fn shutdown_token(&self) -> ShutdownToken {
        self.shutdown.clone()
    }

    /// Triggers shutdown (idempotent) and blocks until every shard —
    /// including every queued batch — has finished.
    pub fn shutdown_and_join(mut self) {
        self.join_inner();
    }

    /// Blocks until the shutdown token triggers (e.g. by a signal
    /// handler), then joins as [`Self::shutdown_and_join`].
    pub fn wait(self) {
        while !self.shutdown.wait_timeout(Duration::from_secs(3600)) {}
        self.shutdown_and_join();
    }

    fn join_inner(&mut self) {
        self.shutdown.trigger();
        let Some(threads) = self.shards.take() else { return };
        for s in &self.shard_shared {
            s.wake.wake();
        }
        for t in threads {
            let _ = t.join();
        }
        // All shards have exited; drain the park exactly once. With a
        // disk tier, hot-only parks are written through first so every
        // parked session survives the restart; without one they are
        // destroyed (gauge stays honest either way — the process is
        // exiting).
        let (persisted, dropped) = self.shared.park.shutdown_drain();
        self.metrics.sessions_live.add(-(dropped as i64));
        if persisted > 0 {
            cira_obs::info!("parked sessions drained to disk", sessions = persisted);
        }
        // Sockets still in flight between shards (shutdown races a
        // migration or a late accept) just close.
        for s in &self.shard_shared {
            s.inbox.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves until the
/// returned handle's shutdown token triggers. Batch work runs on `pool`;
/// connection I/O runs on [`ServerConfig::shards`] event-loop threads.
///
/// # Errors
///
/// Returns bind/epoll setup errors; everything after startup is reported
/// per-connection, never fatally.
pub fn serve(
    addr: &str,
    cfg: ServerConfig,
    pool: &'static WorkerPool,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let nshards = if cfg.shards == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.shards
    };
    let metrics = Arc::new(ServerMetrics::new());
    let shutdown = ShutdownToken::new();
    // Flight recorder: enable-only, so a co-resident server with tracing
    // off never switches off a recorder someone else turned on. The
    // SIGUSR1 dump latch is part of the same opt-in — an untraced server
    // must not displace a handler its embedding application installed.
    if cfg.trace {
        trace::init(cfg.trace_capacity);
        trace::set_enabled(true);
        crate::shutdown::install_usr1_handler();
    }

    // One registry covers the whole process view: server counters,
    // per-shard gauges, session histograms, and the shared worker pool.
    let registry = Arc::new(Registry::new("cira"));
    metrics.register(&registry);
    pool.register_metrics(&registry);
    let shard_metrics: Arc<Vec<ShardMetrics>> =
        Arc::new((0..nshards).map(|_| ShardMetrics::default()).collect());
    register_shards(&shard_metrics, &registry);
    let token_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ ((local.port() as u64) << 48)
        ^ (std::process::id() as u64).rotate_left(32);
    let park_ttl = Duration::from_millis(cfg.park_ttl_ms);
    let recovery_start = Instant::now();
    let (park, recovered) = match &cfg.park_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("park.cirstore");
            // The recovery scan fans page ranges out over the worker
            // pool: each job preads and parses its slice of the file,
            // the merged map feeds the sequential index build.
            SessionPark::with_disk_scanned(
                cfg.park_capacity,
                park_ttl,
                &path,
                cfg.park_disk_capacity,
                |ranges, scan| pool.scope_map(&ranges, |_, range| scan(range.clone())),
            )
            .map_err(|e| io::Error::other(format!("park store {}: {e}", path.display())))?
        }
        None => (SessionPark::new(cfg.park_capacity, park_ttl), 0),
    };
    if cfg.park_dir.is_some() {
        let ms = recovery_start.elapsed().as_millis().min(i64::MAX as u128) as i64;
        metrics.store_recovery_ms.set(ms);
    }
    if recovered > 0 {
        // Survivors of the previous process (clean restart or crash)
        // are immediately resumable and count as live sessions.
        metrics.sessions_live.add(recovered as i64);
        cira_obs::info!("parked sessions recovered from disk", sessions = recovered);
    }
    let shared = Arc::new(Shared {
        metrics: Arc::clone(&metrics),
        registry: Arc::clone(&registry),
        session_ids: AtomicU64::new(1),
        token_seed,
        token_ids: AtomicU64::new(1),
        park,
        // Sweep at a quarter of the TTL, clamped to a sane band: often
        // enough to keep expiry timely, rarely enough to stay cheap.
        sweep_every: Duration::from_millis((cfg.park_ttl_ms / 4).clamp(10, 1000)),
        next_sweep: Mutex::new(Instant::now()),
        // Spill every tick: a teardown park is durable within ~2 ticks.
        spill_every: Duration::from_millis(cfg.read_tick_ms.clamp(10, 1000)),
        next_spill: Mutex::new(Instant::now()),
    });
    shared.publish_store_gauges();
    let metrics_http = match &cfg.metrics_addr {
        Some(http_addr) => {
            let server = cira_obs::http::serve_metrics(http_addr, Arc::clone(&registry))?;
            cira_obs::info!("metrics endpoint listening", addr = server.addr());
            Some(server)
        }
        None => None,
    };
    cira_obs::info!(
        "server listening",
        addr = local,
        shards = nshards,
        workers = pool.workers()
    );

    let shard_shared: Vec<Arc<ShardShared>> = (0..nshards)
        .map(|_| {
            Ok(Arc::new(ShardShared {
                inbox: Mutex::new(VecDeque::new()),
                wake: WakeFd::new()?,
            }))
        })
        .collect::<io::Result<_>>()?;
    // Build every shard before spawning any thread so setup errors
    // (epoll, eventfd) surface as a clean Err from serve().
    let mut built = Vec::with_capacity(nshards);
    let mut listener_slot = Some(listener);
    for index in 0..nshards {
        let epoll = Epoll::new()?;
        epoll.add(shard_shared[index].wake.fd(), EPOLLIN, WAKE_TOKEN)?;
        let listener = if index == 0 {
            let l = listener_slot.take().expect("listener assigned once");
            epoll.add(l.as_raw_fd(), EPOLLIN, LISTEN_TOKEN)?;
            Some(l)
        } else {
            None
        };
        built.push(Shard {
            index,
            nshards,
            cfg: cfg.clone(),
            pool,
            shared: Arc::clone(&shared),
            me: Arc::clone(&shard_shared[index]),
            peers: shard_shared.clone(),
            epoll,
            listener,
            conns: HashMap::new(),
            next_conn: FIRST_CONN_TOKEN,
            rr: 0,
            smetrics: Arc::clone(&shard_metrics),
            shutdown: shutdown.clone(),
            draining: false,
        });
    }
    let mut threads = Vec::with_capacity(nshards);
    for shard in built {
        let name = format!("cira-serve-shard{}", shard.index);
        match std::thread::Builder::new().name(name).spawn(move || shard.run()) {
            Ok(t) => threads.push(t),
            Err(e) => {
                // Unwind the shards already running.
                shutdown.trigger();
                for s in &shard_shared {
                    s.wake.wake();
                }
                for t in threads {
                    let _ = t.join();
                }
                return Err(e);
            }
        }
    }

    Ok(ServerHandle {
        addr: local,
        metrics,
        registry,
        metrics_http,
        shutdown,
        shared,
        shard_shared,
        shards: Some(threads),
    })
}

/// Serializes and writes one server frame to any writer — used by tests
/// that speak raw bytes.
#[doc(hidden)]
pub fn write_server_frame(w: &mut impl Write, frame: &ServerFrame) -> io::Result<()> {
    write_frame(w, &encode_server(frame))
}
