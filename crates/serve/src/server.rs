//! The TCP server: accept loop, per-connection readers, and batch
//! execution fanned across a shared [`WorkerPool`].
//!
//! # Threading model
//!
//! * One **accept thread** polls the listener (with a short accept
//!   timeout via non-blocking + sleep) and the shutdown token.
//! * One **reader thread per connection** parses frames. Control frames
//!   (`STATS`, `SNAPSHOT`, `RESET`, `GOODBYE`) are answered inline;
//!   `BATCH` frames are pushed onto the session's bounded queue and
//!   executed on the shared [`WorkerPool`] by an actor-style drain job,
//!   so heavy scoring work is multiplexed over the pool's threads no
//!   matter how many connections exist.
//! * **Backpressure**: when a session already has `max_inflight` batches
//!   queued, the reader blocks before reading further frames — the client
//!   eventually blocks on TCP write, bounding memory per connection.
//! * **Shutdown**: triggering the [`ShutdownToken`] stops the accept
//!   loop, wakes idle readers (they answer in-flight work, send a
//!   `SHUTTING_DOWN` error for new batches, and close), and
//!   [`ServerHandle::shutdown_and_join`] drains every queued batch before
//!   returning — no accepted work is dropped.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cira_analysis::engine::pool::WorkerPool;
use cira_obs::http::MetricsServer;
use cira_obs::Registry;
use cira_trace::codec::PackedTrace;

use crate::frame::{read_frame, write_frame, FrameError, ReadOutcome, DEFAULT_MAX_FRAME};
use crate::metrics::ServerMetrics;
use crate::park::{ParkRefusal, SessionPark};
use crate::proto::{
    code, decode_client, encode_server, ClientFrame, ServerFrame, PROTO_VERSION,
};
use crate::session::Session;
use crate::shutdown::ShutdownToken;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted frame body, bytes.
    pub max_frame: u32,
    /// Batches buffered per session before its reader blocks.
    pub max_inflight: u32,
    /// Socket read-timeout tick, milliseconds (shutdown poll interval).
    pub read_tick_ms: u64,
    /// Consecutive mid-frame ticks tolerated before the peer is dropped.
    pub stall_ticks: u32,
    /// Socket write timeout, milliseconds: a peer that stops reading its
    /// acks must not pin a pool worker forever. `0` disables the timeout.
    pub write_timeout_ms: u64,
    /// Sessions alive at once (attached + parked) before new `HELLO`s
    /// are shed with a `BUSY` frame (rev 1.2).
    pub max_sessions: usize,
    /// Retry-after hint carried in `BUSY` frames, milliseconds.
    pub busy_retry_ms: u32,
    /// Detached sessions kept for `RESUME` (rev 1.2); `0` disables
    /// parking entirely.
    pub park_capacity: usize,
    /// How long a parked session survives before TTL eviction,
    /// milliseconds.
    pub park_ttl_ms: u64,
    /// Close (and park) a session whose connection sends no frame for
    /// this long, milliseconds; `0` disables idle eviction.
    pub idle_timeout_ms: u64,
    /// Directory for the durable park tier (rev 1.3). When set, every
    /// parked session is written through to a `cira-store` page file
    /// there (`park.cirstore`) and survives a full server restart —
    /// including `kill -9`. `None` keeps parking in-memory only.
    pub park_dir: Option<PathBuf>,
    /// Byte budget for the durable park tier's page file; `0` means
    /// unlimited. When exhausted, parks degrade (teardown parks stay
    /// hot-only) or are refused with `STORE_FULL` (explicit `PARK`).
    pub park_disk_capacity: u64,
    /// Address for the HTTP `GET /metrics` listener (e.g.
    /// `127.0.0.1:9184`), or `None` to expose metrics only over the wire
    /// protocol.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 4,
            read_tick_ms: 100,
            stall_ticks: 600, // 60 s of mid-frame silence at the default tick
            write_timeout_ms: 30_000,
            max_sessions: 1024,
            busy_retry_ms: 500,
            park_capacity: 64,
            park_ttl_ms: 60_000,
            idle_timeout_ms: 0,
            park_dir: None,
            park_disk_capacity: 0,
            metrics_addr: None,
        }
    }
}

/// Process-wide state every connection shares: metrics, the registry,
/// session-id/token generation, and the park of detached sessions.
#[derive(Debug)]
struct Shared {
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    session_ids: AtomicU64,
    /// Seed mixed into resume tokens so they are not guessable across
    /// server restarts.
    token_seed: u64,
    token_ids: AtomicU64,
    park: SessionPark,
    /// How often TTL sweeps run (a fraction of the park TTL).
    sweep_every: Duration,
    /// Monotonic deadline for the next sweep; checked from the accept
    /// tick *and* the batch drain loop, so a server saturated with
    /// connections (its accept loop never idle) still expires parked
    /// sessions on time.
    next_sweep: Mutex<Instant>,
}

impl Shared {
    /// A fresh, unguessable-enough resume token (splitmix64 over a
    /// per-process random seed plus a counter — no token collides within
    /// a process, and values don't repeat across restarts).
    fn next_token(&self) -> u64 {
        let x = self
            .token_seed
            .wrapping_add(self.token_ids.fetch_add(1, Ordering::Relaxed));
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// TTL-sweeps the park if the sweep deadline has passed. Cheap when
    /// it hasn't: one lock, one comparison.
    fn maybe_sweep(&self) {
        let now = Instant::now();
        {
            let mut next = self.next_sweep.lock().unwrap_or_else(|e| e.into_inner());
            if *next > now {
                return;
            }
            *next = now + self.sweep_every;
        }
        self.sweep_park();
    }

    /// TTL-sweeps the park, keeping the eviction counters and the live
    /// gauge in step.
    fn sweep_park(&self) {
        let outcome = self.park.sweep();
        if outcome.expired > 0 {
            self.metrics.park_evicted_ttl.add(outcome.expired as u64);
            self.metrics.sessions_live.add(-(outcome.expired as i64));
            cira_obs::debug!("parked sessions expired", evicted = outcome.expired);
        }
        self.publish_store_gauges();
    }

    /// Refreshes the disk-tier gauges (record/byte footprint and the
    /// buffer pool's hit/miss counters) after any park mutation.
    fn publish_store_gauges(&self) {
        if !self.park.has_disk() {
            return;
        }
        self.metrics.park_disk_records.set(self.park.disk_records() as i64);
        self.metrics.park_disk_bytes.set(self.park.disk_bytes() as i64);
        let (hits, misses) = self.park.page_cache_stats();
        self.metrics.store_page_hits.set(hits as i64);
        self.metrics.store_page_misses.set(misses as i64);
    }

    /// Applies a [`crate::park::ParkOutcome`]'s counter deltas: spills
    /// keep their sessions (disk copy retained), evictions destroy them.
    fn account_park(&self, outcome: &crate::park::ParkOutcome) {
        if outcome.evicted > 0 {
            self.metrics.park_evicted_capacity.add(outcome.evicted as u64);
            self.metrics.sessions_live.add(-(outcome.evicted as i64));
        }
        if outcome.spilled > 0 {
            self.metrics.park_spilled.add(outcome.spilled as u64);
        }
        if outcome.store_full {
            self.metrics.park_store_full.inc();
        }
        self.publish_store_gauges();
    }
}

/// A session's bounded batch queue plus the flag that makes draining it a
/// single-threaded affair: at most one pool job runs a session at a time,
/// so batches apply in arrival order with no locking around the session
/// state itself.
#[derive(Debug, Default)]
struct BatchQueue {
    queue: Mutex<QueueState>,
    space: Condvar,
    drained: Condvar,
}

#[derive(Debug, Default)]
struct QueueState {
    batches: VecDeque<(u32, PackedTrace)>,
    running: bool,
}

impl BatchQueue {
    /// Blocks until fewer than `max_inflight` batches are queued, then
    /// enqueues. Returns whether a drain job should be scheduled (i.e. no
    /// job is currently running this session).
    fn push(&self, seq: u32, records: PackedTrace, max_inflight: u32) -> bool {
        let mut st = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        while st.batches.len() >= max_inflight as usize {
            st = self
                .space
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.batches.push_back((seq, records));
        if st.running {
            false
        } else {
            st.running = true;
            true
        }
    }

    /// Pops the next batch for the drain job, or clears `running` and
    /// wakes drain-waiters if the queue is empty.
    fn pop(&self) -> Option<(u32, PackedTrace)> {
        let mut st = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        match st.batches.pop_front() {
            Some(item) => {
                self.space.notify_one();
                Some(item)
            }
            None => {
                st.running = false;
                self.drained.notify_all();
                None
            }
        }
    }

    /// Blocks until the queue is empty **and** no drain job is running.
    fn wait_drained(&self) {
        let mut st = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        while st.running || !st.batches.is_empty() {
            st = self
                .drained
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A session attached to a live connection, with its server-side id.
#[derive(Debug)]
struct Active {
    id: u64,
    session: Session,
}

/// Everything a connection's reader and its drain jobs share.
#[derive(Debug)]
struct Conn {
    /// Write half; drain jobs and the reader both send frames.
    writer: Mutex<TcpStream>,
    session: Mutex<Option<Active>>,
    batches: BatchQueue,
    shared: Arc<Shared>,
}

impl Conn {
    fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Serializes and sends one frame; write errors mark the connection
    /// dead (the reader notices on its next read).
    fn send(&self, frame: &ServerFrame) {
        let body = encode_server(frame);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if write_frame(&mut *w, &body).is_ok() {
            self.metrics().frames_out.inc();
            self.metrics().bytes_out.add(body.len() as u64);
        } else {
            // Give up on the stream; unblock the reader promptly.
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Counts a protocol violation and sends its `ERROR` frame.
    fn protocol_error(&self, error_code: u16, message: String) {
        self.metrics().protocol_error(error_code);
        cira_obs::debug!("protocol error", code = error_code, detail = message);
        self.send(&ServerFrame::Error {
            code: error_code,
            message,
        });
    }
}

/// The drain job: applies queued batches until the queue is empty. Runs on
/// the worker pool; re-scheduled by the reader whenever it enqueues onto an
/// idle queue.
fn drain(conn: &Arc<Conn>) {
    while let Some((seq, records)) = conn.batches.pop() {
        let mut guard = conn
            .session
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(active) = guard.as_mut() else {
            continue; // connection torn down mid-drain
        };
        let n = records.len() as u64;
        let t0 = Instant::now();
        let ack = active.session.apply_batch(seq, &records);
        let service_us = t0.elapsed().as_micros() as u64;
        if let ServerFrame::BatchAck {
            mispredicts,
            low_confidence,
            ..
        } = &ack
        {
            conn.metrics().batches.inc();
            conn.metrics().records.add(n);
            conn.metrics().mispredicts.add(*mispredicts);
            conn.metrics().low_confidence.add(*low_confidence);
            conn.metrics().batch_records.record(n);
            conn.metrics().batch_service_us.record(service_us);
        }
        drop(guard);
        conn.send(&ack);
    }
    // Busy servers may never hit the accept loop's idle tick, so the
    // drain path checks the sweep deadline too (cheap when not due).
    conn.shared.maybe_sweep();
}

/// Outcome of one reader loop step.
enum Step {
    Continue,
    /// Close after an orderly exchange: the session (if any) is
    /// destroyed, not parked.
    CloseClean,
    /// Close on a fault: the session (if any) is parked for `RESUME`.
    CloseAbrupt,
}

fn handle_frame(
    conn: &Arc<Conn>,
    pool: &'static WorkerPool,
    cfg: &ServerConfig,
    frame: ClientFrame,
) -> Step {
    let has_session = conn
        .session
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .is_some();
    match frame {
        ClientFrame::Hello { version, config } => {
            if version != PROTO_VERSION {
                conn.protocol_error(
                    code::UNSUPPORTED_VERSION,
                    format!(
                        "protocol version {version} not supported; this server speaks {PROTO_VERSION}"
                    ),
                );
                return Step::CloseClean;
            }
            // Load shedding: every live session (attached or parked)
            // holds predictor + table state, so cap them and tell the
            // client when to come back rather than thrash or hang.
            if !has_session
                && conn.metrics().sessions_live.get().max(0) as usize >= cfg.max_sessions
            {
                conn.metrics().sessions_shed.inc();
                cira_obs::info!(
                    "session shed at capacity",
                    max_sessions = cfg.max_sessions,
                    retry_after_ms = cfg.busy_retry_ms,
                );
                conn.send(&ServerFrame::Busy {
                    retry_after_ms: cfg.busy_retry_ms,
                    message: format!("at capacity ({} sessions); retry later", cfg.max_sessions),
                });
                return Step::CloseClean;
            }
            let token = conn.shared.next_token();
            match Session::from_hello(&config, token) {
                Ok(session) => {
                    let session_id =
                        conn.shared.session_ids.fetch_add(1, Ordering::Relaxed);
                    let ack = ServerFrame::HelloAck {
                        version: PROTO_VERSION,
                        session: session_id,
                        max_frame: cfg.max_frame,
                        max_inflight: cfg.max_inflight,
                        predictor: session.predictor_desc().to_owned(),
                        mechanism: session.mechanism_desc().to_owned(),
                        token,
                    };
                    cira_obs::info!(
                        "session opened",
                        session = session_id,
                        predictor = session.predictor_desc(),
                        mechanism = session.mechanism_desc(),
                    );
                    let replaced = conn
                        .session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .replace(Active {
                            id: session_id,
                            session,
                        });
                    conn.metrics().sessions_opened.inc();
                    // Re-HELLO on a live connection destroys the old
                    // session, so the live gauge only moves for new ones.
                    if replaced.is_none() {
                        conn.metrics().sessions_live.inc();
                    }
                    conn.send(&ack);
                    Step::Continue
                }
                Err(message) => {
                    conn.protocol_error(code::BAD_SPEC, message);
                    Step::CloseClean
                }
            }
        }
        ClientFrame::Resume { version, token } => {
            if version != PROTO_VERSION {
                conn.protocol_error(
                    code::UNSUPPORTED_VERSION,
                    format!(
                        "protocol version {version} not supported; this server speaks {PROTO_VERSION}"
                    ),
                );
                return Step::CloseClean;
            }
            conn.metrics().resume_attempts.inc();
            if has_session {
                conn.protocol_error(
                    code::MALFORMED,
                    "RESUME on a connection that already has a session".to_owned(),
                );
                return Step::CloseAbrupt;
            }
            match conn.shared.park.take(token) {
                Some(resumed) => {
                    let session_id = resumed.session_id;
                    let session = resumed.session;
                    let ack = session.resume_ack(session_id, cfg.max_frame, cfg.max_inflight);
                    cira_obs::info!(
                        "session resumed",
                        session = session_id,
                        last_seq = format!("{:?}", session.last_seq()),
                        from_disk = resumed.from_disk,
                    );
                    *conn
                        .session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(Active {
                        id: session_id,
                        session,
                    });
                    conn.metrics().sessions_resumed.inc();
                    if resumed.from_disk {
                        // The hot tier missed: this session was spilled
                        // or recovered, decoded from its checkpoint.
                        conn.metrics().park_loaded.inc();
                    }
                    conn.shared.publish_store_gauges();
                    conn.send(&ack);
                    Step::Continue
                }
                None => {
                    conn.metrics().resume_failures.inc();
                    conn.protocol_error(
                        code::UNKNOWN_SESSION,
                        "resume token names no parked session (expired or evicted)".to_owned(),
                    );
                    Step::CloseClean
                }
            }
        }
        // Observability and close frames need no session (rev 1.1):
        // operator tooling like `cira stats` connects, asks, disconnects.
        ClientFrame::Stats => {
            conn.send(&ServerFrame::StatsReply(conn.metrics().snapshot()));
            Step::Continue
        }
        ClientFrame::Metrics => {
            conn.send(&ServerFrame::MetricsReply {
                text: conn.shared.registry.render(),
            });
            Step::Continue
        }
        ClientFrame::Goodbye => {
            conn.batches.wait_drained();
            conn.send(&ServerFrame::GoodbyeAck);
            Step::CloseClean
        }
        _ if !has_session => {
            conn.protocol_error(
                code::HELLO_REQUIRED,
                "first frame must be HELLO".to_owned(),
            );
            Step::CloseClean
        }
        ClientFrame::Batch { seq, records } => {
            if conn.batches.push(seq, records, cfg.max_inflight) {
                let conn = Arc::clone(conn);
                pool.spawn(move || drain(&conn));
            }
            Step::Continue
        }
        ClientFrame::Snapshot => {
            // Queued batches are part of the session's history: drain
            // first so a snapshot after N acked sends reflects all N.
            conn.batches.wait_drained();
            let guard = conn
                .session
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let reply = guard
                .as_ref()
                .expect("session checked above")
                .session
                .snapshot();
            drop(guard);
            conn.send(&reply);
            Step::Continue
        }
        ClientFrame::Reset => {
            conn.batches.wait_drained();
            let mut guard = conn
                .session
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            guard
                .as_mut()
                .expect("session checked above")
                .session
                .reset();
            drop(guard);
            conn.metrics().sessions_reset.inc();
            conn.send(&ServerFrame::ResetAck);
            Step::Continue
        }
        ClientFrame::Park => {
            // Every acked batch is part of the checkpoint: drain first.
            conn.batches.wait_drained();
            let active = conn
                .session
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("session checked above");
            let Active { id, session } = active;
            let token = session.token();
            match conn.shared.park.insert_durable(token, id, session) {
                Ok(outcome) => {
                    conn.shared.account_park(&outcome);
                    conn.metrics().sessions_parked.inc();
                    cira_obs::info!(
                        "session parked on request",
                        session = id,
                        durable = outcome.persisted,
                    );
                    // The ack is the durability receipt: sent only after
                    // the checkpoint is on disk (when a disk tier exists).
                    conn.send(&ServerFrame::ParkedAck { token });
                    Step::CloseClean
                }
                Err(ParkRefusal::Full(session)) => {
                    // Transient: hand the session back and mirror BUSY.
                    conn.metrics().park_store_full.inc();
                    *conn
                        .session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(Active {
                        id,
                        session: *session,
                    });
                    conn.send(&ServerFrame::StoreFull {
                        retry_after_ms: cfg.busy_retry_ms,
                        message: "disk park tier at capacity; session still attached"
                            .to_owned(),
                    });
                    Step::Continue
                }
                Err(ParkRefusal::Disabled(session)) => {
                    // Permanent for this server config; typed ERROR.
                    *conn
                        .session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(Active {
                        id,
                        session: *session,
                    });
                    conn.protocol_error(
                        code::STORE_FULL,
                        "parking disabled on this server; session still attached".to_owned(),
                    );
                    Step::Continue
                }
            }
        }
    }
}

/// One connection's reader loop: frame in, dispatch, repeat.
fn run_connection(
    stream: TcpStream,
    pool: &'static WorkerPool,
    cfg: ServerConfig,
    shared: Arc<Shared>,
    shutdown: ShutdownToken,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_tick_ms.max(1))));
    // A peer that stops reading its acks must not pin a pool worker
    // forever: writes give up after a bounded wait and the connection dies.
    if cfg.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut reader = stream;
    let metrics = Arc::clone(&shared.metrics);
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        session: Mutex::new(None),
        batches: BatchQueue::default(),
        shared: Arc::clone(&shared),
    });

    // Whether the close was orderly. Anything else — mid-frame
    // disconnect, stall, protocol garbage, idle eviction — parks the
    // session so the client can RESUME it.
    let mut clean_close = false;
    let mut last_frame = Instant::now();
    let idle_timeout = Duration::from_millis(cfg.idle_timeout_ms);

    loop {
        if shutdown.is_triggered() {
            // Finish everything already accepted, tell the peer, close.
            // The process is going away, so the session is *not* parked.
            conn.batches.wait_drained();
            conn.send(&ServerFrame::Error {
                code: code::SHUTTING_DOWN,
                message: "server is shutting down".to_owned(),
            });
            clean_close = true;
            break;
        }
        match read_frame(&mut reader, cfg.max_frame, cfg.stall_ticks) {
            Ok(ReadOutcome::Frame(body)) => {
                last_frame = Instant::now();
                metrics.frames_in.inc();
                metrics.bytes_in.add(body.len() as u64);
                match decode_client(&body) {
                    Ok(frame) => match handle_frame(&conn, pool, &cfg, frame) {
                        Step::Continue => {}
                        Step::CloseClean => {
                            clean_close = true;
                            break;
                        }
                        Step::CloseAbrupt => break,
                    },
                    Err(e) => {
                        conn.protocol_error(code::MALFORMED, e.to_string());
                        break;
                    }
                }
            }
            Ok(ReadOutcome::Idle) => {
                if !idle_timeout.is_zero() && last_frame.elapsed() > idle_timeout {
                    let has_session = conn
                        .session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .is_some();
                    if has_session {
                        // Idle sessions park (resumable) rather than
                        // dying outright.
                        metrics.sessions_idle_evicted.inc();
                        conn.protocol_error(
                            code::IDLE_TIMEOUT,
                            format!("no frame for {} ms; session parked", cfg.idle_timeout_ms),
                        );
                        break;
                    }
                    // Session-less idlers (stats pollers that wandered
                    // off) just close.
                    clean_close = true;
                    break;
                }
            }
            Ok(ReadOutcome::Eof) => break,
            Err(FrameError::Oversized { len, max }) => {
                conn.protocol_error(
                    code::OVERSIZED,
                    format!("frame of {len} bytes exceeds maximum {max}"),
                );
                break;
            }
            Err(FrameError::Truncated | FrameError::Stalled) => {
                // Mid-frame disconnect or slow-loris: nothing sensible to
                // say to the peer; just clean up (breakdown slot 0).
                metrics.protocol_error(0);
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }

    // Drain whatever was accepted, then tear down: in-flight batches are
    // never dropped even on abrupt disconnects.
    conn.batches.wait_drained();
    let detached = conn
        .session
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(active) = detached {
        if clean_close || (cfg.park_capacity == 0 && !shared.park.has_disk()) {
            metrics.sessions_live.dec();
        } else {
            // Park for RESUME; the last acked batch is durable state.
            // With a disk tier the checkpoint is written through (and
            // synced) before insert returns — from here on the session
            // survives even `kill -9`.
            let token = active.session.token();
            let session_id = active.id;
            let outcome = shared.park.insert(token, session_id, active.session);
            shared.account_park(&outcome);
            // `evicted` counts destroyed sessions; with hot capacity 0
            // and a failed write-through that is this session itself,
            // i.e. it was not parked at all.
            let parked = cfg.park_capacity > 0 || outcome.persisted;
            if parked {
                metrics.sessions_parked.inc();
                cira_obs::debug!(
                    "session parked",
                    session = session_id,
                    durable = outcome.persisted,
                );
            }
        }
    }
    let w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.shutdown(std::net::Shutdown::Both);
    metrics.connections_active.dec();
    cira_obs::debug!("connection closed");
}

/// A running server: its address, metrics, and shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    /// The HTTP `/metrics` listener, when configured; shuts down when the
    /// handle drops.
    metrics_http: Option<MetricsServer>,
    shutdown: ShutdownToken,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (real ephemeral port included).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The registry behind `GET /metrics` and the `METRICS` frame (server
    /// counters, session histograms, and the worker pool).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The bound address of the HTTP `/metrics` listener, if one was
    /// configured via [`ServerConfig::metrics_addr`].
    pub fn metrics_http_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(MetricsServer::addr)
    }

    /// The token that stops this server; share it with a signal handler.
    pub fn shutdown_token(&self) -> ShutdownToken {
        self.shutdown.clone()
    }

    /// Triggers shutdown (idempotent) and blocks until the accept loop and
    /// every connection — including their queued batches — have finished.
    pub fn shutdown_and_join(mut self) {
        self.shutdown.trigger();
        if let Some(t) = self.accept_thread.take() {
            for conn_thread in t.join().expect("accept thread panicked") {
                let _ = conn_thread.join();
            }
        }
    }

    /// Blocks until the shutdown token triggers (e.g. by a signal
    /// handler), then joins as [`Self::shutdown_and_join`].
    pub fn wait(self) {
        while !self.shutdown.wait_timeout(Duration::from_secs(3600)) {}
        self.shutdown_and_join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.trigger();
        if let Some(t) = self.accept_thread.take() {
            if let Ok(conns) = t.join() {
                for c in conns {
                    let _ = c.join();
                }
            }
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves until the
/// returned handle's shutdown token triggers. Batch work runs on `pool`.
///
/// # Errors
///
/// Returns the bind error, if any; everything after the bind is reported
/// per-connection, never fatally.
pub fn serve(
    addr: &str,
    cfg: ServerConfig,
    pool: &'static WorkerPool,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let metrics = Arc::new(ServerMetrics::new());
    let shutdown = ShutdownToken::new();

    // One registry covers the whole process view: server counters,
    // session histograms, and the shared worker pool.
    let registry = Arc::new(Registry::new("cira"));
    metrics.register(&registry);
    pool.register_metrics(&registry);
    let token_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ ((local.port() as u64) << 48)
        ^ (std::process::id() as u64).rotate_left(32);
    let park_ttl = Duration::from_millis(cfg.park_ttl_ms);
    let (park, recovered) = match &cfg.park_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("park.cirstore");
            SessionPark::with_disk(cfg.park_capacity, park_ttl, &path, cfg.park_disk_capacity)
                .map_err(|e| io::Error::other(format!("park store {}: {e}", path.display())))?
        }
        None => (SessionPark::new(cfg.park_capacity, park_ttl), 0),
    };
    if recovered > 0 {
        // Survivors of the previous process (clean restart or crash)
        // are immediately resumable and count as live sessions.
        metrics.sessions_live.add(recovered as i64);
        cira_obs::info!("parked sessions recovered from disk", sessions = recovered);
    }
    let shared = Arc::new(Shared {
        metrics: Arc::clone(&metrics),
        registry: Arc::clone(&registry),
        session_ids: AtomicU64::new(1),
        token_seed,
        token_ids: AtomicU64::new(1),
        park,
        // Sweep at a quarter of the TTL, clamped to a sane band: often
        // enough to keep expiry timely, rarely enough to stay cheap.
        sweep_every: Duration::from_millis((cfg.park_ttl_ms / 4).clamp(10, 1000)),
        next_sweep: Mutex::new(Instant::now()),
    });
    shared.publish_store_gauges();
    let metrics_http = match &cfg.metrics_addr {
        Some(http_addr) => {
            let server = cira_obs::http::serve_metrics(http_addr, Arc::clone(&registry))?;
            cira_obs::info!("metrics endpoint listening", addr = server.addr());
            Some(server)
        }
        None => None,
    };
    cira_obs::info!("server listening", addr = local, workers = pool.workers());

    let accept_metrics = Arc::clone(&metrics);
    let accept_shared = Arc::clone(&shared);
    let accept_shutdown = shutdown.clone();
    let accept_thread = std::thread::Builder::new()
        .name("cira-serve-accept".into())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shutdown.is_triggered() {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        accept_metrics.connections_total.inc();
                        accept_metrics.connections_active.inc();
                        cira_obs::debug!("connection accepted", peer = peer);
                        let cfg = cfg.clone();
                        let shared = Arc::clone(&accept_shared);
                        let token = accept_shutdown.clone();
                        conns.retain(|t| !t.is_finished());
                        match std::thread::Builder::new()
                            .name("cira-serve-conn".into())
                            .spawn(move || run_connection(stream, pool, cfg, shared, token))
                        {
                            Ok(t) => conns.push(t),
                            Err(_) => {
                                accept_metrics.connections_active.dec();
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        accept_shared.maybe_sweep();
                        accept_shutdown.wait_timeout(Duration::from_millis(50));
                    }
                    Err(_) => {
                        accept_shutdown.wait_timeout(Duration::from_millis(50));
                    }
                }
            }
            // Shutdown: with a disk tier, hot-only parks are written
            // through first so every parked session survives the
            // restart; without one they are destroyed (gauge stays
            // honest either way — the process is exiting).
            let (persisted, dropped) = accept_shared.park.shutdown_drain();
            accept_metrics.sessions_live.add(-(dropped as i64));
            if persisted > 0 {
                cira_obs::info!("parked sessions drained to disk", sessions = persisted);
            }
            conns
        })?;

    Ok(ServerHandle {
        addr: local,
        metrics,
        registry,
        metrics_http,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Serializes and writes one server frame to any writer — used by tests
/// that speak raw bytes.
#[doc(hidden)]
pub fn write_server_frame(w: &mut impl Write, frame: &ServerFrame) -> io::Result<()> {
    write_frame(w, &encode_server(frame))
}
