//! Per-connection session state: one isolated predictor + confidence
//! mechanism + accumulated statistics, fed batches in arrival order.
//!
//! A session is built from the `HELLO` config via the shared
//! [`cira_analysis::spec`] grammar and wraps a
//! [`StreamingReplay`], which guarantees that statistics are bit-identical
//! to an offline [`cira_analysis::engine::Engine`] run over the
//! concatenated records regardless of how the client batched them — the
//! property the loopback tests and the CLI `--verify` flag check.

use cira_analysis::engine::replay::StreamingReplay;
use cira_analysis::runner::PredictorRun;
use cira_analysis::spec;
use cira_analysis::BucketStats;
use cira_store::Checkpoint;
use cira_trace::codec::PackedTrace;

use crate::proto::{HelloConfig, ServerFrame, SnapshotCell};

/// One client's isolated scoring state.
#[derive(Debug)]
pub struct Session {
    config: HelloConfig,
    replay: StreamingReplay,
    low_confidence: u64,
    /// Descriptions reported in `HELLO_ACK`.
    predictor_desc: String,
    mechanism_desc: String,
    /// Opaque resume capability issued in `HELLO_ACK` (rev 1.2).
    token: u64,
    /// Sequence number of the last applied batch (cumulative ack).
    last_seq: Option<u32>,
    /// Batches applied over the session's lifetime.
    batches: u64,
}

impl Session {
    /// Builds a session from a `HELLO` config with the given resume
    /// token.
    ///
    /// # Errors
    ///
    /// Returns the spec parser's message when any spec string is
    /// malformed (sent back to the client as a `BAD_SPEC` error frame).
    pub fn from_hello(config: &HelloConfig, token: u64) -> Result<Session, String> {
        let replay = Self::build_replay(config)?;
        Ok(Session {
            predictor_desc: replay.predictor_describe(),
            mechanism_desc: replay.mechanism_describe(),
            config: config.clone(),
            replay,
            low_confidence: 0,
            token,
            last_seq: None,
            batches: 0,
        })
    }

    fn build_replay(config: &HelloConfig) -> Result<StreamingReplay, String> {
        let predictor = spec::parse_predictor(&config.predictor).map_err(|e| e.to_string())?;
        let index = spec::parse_index(&config.index).map_err(|e| e.to_string())?;
        let init = spec::parse_init(&config.init).map_err(|e| e.to_string())?;
        let mechanism = spec::parse_mechanism(&config.mechanism, index, init)
            .map_err(|e| e.to_string())?;
        Ok(StreamingReplay::new(predictor, mechanism))
    }

    /// The parsed predictor description (e.g. `gshare(16,16)`).
    pub fn predictor_desc(&self) -> &str {
        &self.predictor_desc
    }

    /// The parsed mechanism description.
    pub fn mechanism_desc(&self) -> &str {
        &self.mechanism_desc
    }

    /// Records fed so far.
    pub fn branches(&self) -> u64 {
        self.replay.run().branches
    }

    /// The resume token issued to this session's client.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Sequence number of the last applied batch, if any.
    pub fn last_seq(&self) -> Option<u32> {
        self.last_seq
    }

    /// The session's `RESUME_ACK` for re-attachment: last acked seq plus
    /// session-lifetime totals so the client can reconcile lost acks.
    pub fn resume_ack(&self, session: u64, max_frame: u32, max_inflight: u32) -> ServerFrame {
        let run = self.replay.run();
        ServerFrame::ResumeAck {
            session,
            last_seq: self.last_seq,
            batches: self.batches,
            records: run.branches,
            mispredicts: run.mispredicts,
            low_confidence: self.low_confidence,
            max_frame,
            max_inflight,
        }
    }

    /// Scores and trains on one batch, returning its `BATCH_ACK`.
    pub fn apply_batch(&mut self, seq: u32, records: &PackedTrace) -> ServerFrame {
        let n = records.len();
        let threshold = self.config.threshold;
        let fed = self.replay.feed(records);
        let mut low_count = 0u64;
        let mut predicted = vec![0u64; n.div_ceil(64)];
        let mut low = vec![0u64; n.div_ceil(64)];
        for i in 0..n {
            // The prediction was `taken` iff it was correct on a taken
            // branch or wrong on a not-taken branch.
            let taken = records.taken_at(i);
            if fed.correct[i] == taken {
                predicted[i / 64] |= 1u64 << (i % 64);
            }
            if fed.keys[i] < threshold {
                low[i / 64] |= 1u64 << (i % 64);
                low_count += 1;
            }
        }
        self.low_confidence += low_count;
        self.last_seq = Some(seq);
        self.batches += 1;
        ServerFrame::BatchAck {
            seq,
            records: n as u64,
            mispredicts: fed.mispredicts,
            low_confidence: low_count,
            total_records: self.replay.run().branches,
            predicted,
            low,
        }
    }

    /// The session's accumulated statistics as a `SNAPSHOT_REPLY`.
    pub fn snapshot(&self) -> ServerFrame {
        let run = self.replay.run();
        let mut cells: Vec<SnapshotCell> = self
            .replay
            .stats()
            .iter()
            .map(|(k, c)| (k, c.refs, c.mispredicts))
            .collect();
        cells.sort_unstable_by_key(|&(k, _, _)| k);
        ServerFrame::SnapshotReply {
            branches: run.branches,
            mispredicts: run.mispredicts,
            low_confidence: self.low_confidence,
            cells,
        }
    }

    /// Serializes the session's complete state as a [`Checkpoint`]
    /// (rev 1.3): the negotiated specs, the counters, the BHR, the
    /// predictor and mechanism state blobs, and every bucket cell.
    /// Restoring it with [`Session::from_checkpoint`] is bit-identical
    /// to never having parked.
    ///
    /// Cell counts are exact: the engine accumulates refs/mispredicts
    /// with unit weights, so the `f64` totals are integers and the
    /// round trip through `u64` is lossless.
    pub fn to_checkpoint(&self, session_id: u64) -> Checkpoint {
        let run = self.replay.run();
        let cells = self
            .replay
            .stats()
            .iter()
            .map(|(k, c)| (k, c.refs as u64, c.mispredicts as u64))
            .collect();
        Checkpoint {
            session_id,
            predictor: self.config.predictor.clone(),
            mechanism: self.config.mechanism.clone(),
            index: self.config.index.clone(),
            init: self.config.init.clone(),
            threshold: self.config.threshold,
            last_seq: self.last_seq,
            batches: self.batches,
            low_confidence: self.low_confidence,
            bhr: self.replay.bhr_value(),
            branches: run.branches,
            mispredicts: run.mispredicts,
            predictor_state: self.replay.predictor_state(),
            mechanism_state: self.replay.mechanism_state(),
            cells,
        }
    }

    /// Rebuilds a session from a [`Checkpoint`]: the specs reconstruct
    /// the predictor and mechanism, then the saved state is loaded into
    /// them and the counters and statistics are restored.
    ///
    /// # Errors
    ///
    /// Returns a message when a spec no longer parses (a checkpoint
    /// from a different build) or a state blob does not match the
    /// rebuilt instance's configuration.
    pub fn from_checkpoint(cp: &Checkpoint, token: u64) -> Result<Session, String> {
        let config = HelloConfig {
            predictor: cp.predictor.clone(),
            mechanism: cp.mechanism.clone(),
            index: cp.index.clone(),
            init: cp.init.clone(),
            threshold: cp.threshold,
        };
        let mut session = Session::from_hello(&config, token)?;
        session
            .replay
            .load_predictor_state(&cp.predictor_state)
            .map_err(|e| format!("predictor state: {e}"))?;
        session
            .replay
            .load_mechanism_state(&cp.mechanism_state)
            .map_err(|e| format!("mechanism state: {e}"))?;
        session.replay.set_bhr(cp.bhr);
        let mut stats = BucketStats::new();
        for &(key, refs, miss) in &cp.cells {
            if miss > refs {
                return Err(format!(
                    "cell {key:#x} claims {miss} mispredicts out of {refs} refs"
                ));
            }
            stats.merge_cell(key, refs as f64, miss as f64);
        }
        session.replay.restore_stats(stats);
        session.replay.restore_run(PredictorRun {
            branches: cp.branches,
            mispredicts: cp.mispredicts,
        });
        session.last_seq = cp.last_seq;
        session.batches = cp.batches;
        session.low_confidence = cp.low_confidence;
        Ok(session)
    }

    /// Rebuilds predictor, mechanism, and statistics from the negotiated
    /// config — as if the connection had just said `HELLO` again.
    pub fn reset(&mut self) {
        self.replay =
            Self::build_replay(&self.config).expect("config validated at session creation");
        self.low_confidence = 0;
        self.last_seq = None;
        self.batches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_analysis::engine::replay::replay_mechanisms;
    use cira_core::ConfidenceMechanism;
    use cira_trace::suite::ibs_like_suite;

    fn config() -> HelloConfig {
        HelloConfig {
            predictor: "gshare:12:12".into(),
            mechanism: "resetting:16".into(),
            index: "pcxorbhr:12".into(),
            init: "ones".into(),
            threshold: 16,
        }
    }

    #[test]
    fn bad_specs_are_recoverable_errors() {
        for (field, value) in [
            ("predictor", "frobnicate:1"),
            ("mechanism", "resetting:0"),
            ("index", "pc"),
            ("init", "none"),
        ] {
            let mut c = config();
            match field {
                "predictor" => c.predictor = value.into(),
                "mechanism" => c.mechanism = value.into(),
                "index" => c.index = value.into(),
                _ => c.init = value.into(),
            }
            let err = Session::from_hello(&c, 0).unwrap_err();
            assert!(err.contains("expected one of"), "{field}: {err}");
        }
    }

    #[test]
    fn batches_accumulate_and_snapshot_matches_engine_kernel() {
        let trace: PackedTrace = ibs_like_suite()[0].walker().take(20_000).collect();
        let mut session = Session::from_hello(&config(), 0).unwrap();
        // Feed in uneven splits.
        let mut at = 0;
        let mut acked = 0u64;
        for (seq, len) in [(0u32, 3_000usize), (1, 1), (2, 9_999), (3, 7_000)] {
            let batch: PackedTrace = (at..at + len).map(|i| trace.get(i).unwrap()).collect();
            match session.apply_batch(seq, &batch) {
                ServerFrame::BatchAck {
                    seq: s,
                    records,
                    total_records,
                    ..
                } => {
                    assert_eq!(s, seq);
                    assert_eq!(records, len as u64);
                    acked += records;
                    assert_eq!(total_records, acked);
                }
                other => panic!("{other:?}"),
            }
            at += len;
        }
        assert_eq!(session.branches(), 20_000);

        // Reference: the engine's batched kernel over the whole trace.
        let mut p = cira_predictor::Gshare::new(12, 12);
        let mut m = cira_core::one_level::ResettingConfidence::new(
            cira_core::IndexSpec::pc_xor_bhr(12),
            16,
            cira_core::InitPolicy::AllOnes,
        );
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut m];
        let reference = replay_mechanisms(&trace, 20_000, &mut p, &mut refs).remove(0);

        match session.snapshot() {
            ServerFrame::SnapshotReply {
                branches, cells, ..
            } => {
                assert_eq!(branches, 20_000);
                let rebuilt = crate::proto::stats_from_cells(&cells).unwrap();
                assert_eq!(rebuilt, reference);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicted_bitmap_consistent_with_mispredicts() {
        let trace: PackedTrace = ibs_like_suite()[1].walker().take(5_000).collect();
        let mut session = Session::from_hello(&config(), 0).unwrap();
        let ack = session.apply_batch(9, &trace);
        let ServerFrame::BatchAck {
            mispredicts,
            predicted,
            ..
        } = ack
        else {
            panic!("not an ack");
        };
        // predicted bit != taken bit exactly at mispredictions.
        let wrong = (0..trace.len())
            .filter(|&i| {
                let bit = predicted[i / 64] >> (i % 64) & 1 == 1;
                bit != trace.taken_at(i)
            })
            .count() as u64;
        assert_eq!(wrong, mispredicts);
    }

    #[test]
    fn checkpoint_round_trip_is_bit_identical() {
        let trace: PackedTrace = ibs_like_suite()[0].walker().take(12_000).collect();
        let head: PackedTrace = (0..8_000).map(|i| trace.get(i).unwrap()).collect();
        let tail: PackedTrace = (8_000..12_000).map(|i| trace.get(i).unwrap()).collect();

        let mut whole = Session::from_hello(&config(), 7).unwrap();
        whole.apply_batch(0, &head);

        let mut parked = Session::from_hello(&config(), 7).unwrap();
        parked.apply_batch(0, &head);
        // Through the full CIRD byte codec, as the disk tier would.
        let blob = parked.to_checkpoint(3).encode();
        let cp = Checkpoint::decode(&blob).unwrap();
        assert_eq!(cp.session_id, 3);
        let mut resumed = Session::from_checkpoint(&cp, 7).unwrap();
        assert_eq!(resumed.token(), 7);
        assert_eq!(resumed.last_seq(), Some(0));
        assert_eq!(resumed.branches(), 8_000);

        let a = whole.apply_batch(1, &tail);
        let b = resumed.apply_batch(1, &tail);
        assert_eq!(a, b, "post-restore acks diverge from uninterrupted run");
        assert_eq!(whole.snapshot(), resumed.snapshot());
        assert_eq!(whole.resume_ack(1, 2, 3), resumed.resume_ack(1, 2, 3));
    }

    #[test]
    fn checkpoint_rejects_corrupt_state_blob() {
        let trace: PackedTrace = ibs_like_suite()[1].walker().take(1_000).collect();
        let mut s = Session::from_hello(&config(), 1).unwrap();
        s.apply_batch(0, &trace);
        let mut cp = s.to_checkpoint(1);
        cp.predictor_state.truncate(cp.predictor_state.len() / 2);
        let err = Session::from_checkpoint(&cp, 1).unwrap_err();
        assert!(err.contains("predictor state"), "{err}");
        let mut cp = s.to_checkpoint(1);
        cp.cells.push((999, 1, 2));
        assert!(Session::from_checkpoint(&cp, 1)
            .unwrap_err()
            .contains("mispredicts"));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let trace: PackedTrace = ibs_like_suite()[2].walker().take(4_000).collect();
        let mut a = Session::from_hello(&config(), 0).unwrap();
        let first = a.apply_batch(0, &trace);
        a.reset();
        assert_eq!(a.branches(), 0);
        let again = a.apply_batch(0, &trace);
        assert_eq!(first, again);
    }
}
