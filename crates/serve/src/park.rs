//! Parked-session store: detached [`Session`]s awaiting a `RESUME`.
//!
//! When a connection drops without a clean `GOODBYE`, the server parks
//! its session here keyed by resume token. A later `RESUME` carrying the
//! token takes the session back out and replay continues bit-identically
//! from the last acked batch. Two eviction policies bound the store:
//!
//! * **capacity** — inserting into a full park evicts the oldest parked
//!   session (parked sessions are never touched in place, so insertion
//!   order *is* least-recently-used order);
//! * **TTL** — [`SessionPark::sweep`], called from the accept loop's
//!   tick, drops sessions parked longer than the configured TTL, and
//!   [`SessionPark::take`] refuses to resurrect one that expired between
//!   sweeps.
//!
//! Evicting a parked session destroys predictor/CIR state for good; a
//! client resuming after that draws `ERROR` with
//! [`code::UNKNOWN_SESSION`](crate::proto::code::UNKNOWN_SESSION).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::session::Session;

/// One detached session with its park timestamp and server session id.
#[derive(Debug)]
struct Parked {
    token: u64,
    session_id: u64,
    session: Session,
    at: Instant,
}

/// Bounded, TTL-evicting store of detached sessions, keyed by token.
///
/// Internally a deque ordered by park time: sessions are only ever
/// pushed at the back and scanned from the front, so both eviction
/// policies are O(evicted) per call.
#[derive(Debug)]
pub struct SessionPark {
    capacity: usize,
    ttl: Duration,
    inner: Mutex<VecDeque<Parked>>,
}

impl SessionPark {
    /// Creates a park holding at most `capacity` sessions for at most
    /// `ttl` each. A zero capacity disables parking entirely.
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            capacity,
            ttl,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Parks a detached session. Returns the number of sessions evicted
    /// to make room (0 or 1 normally; `1` plus the rejected session
    /// itself when capacity is zero).
    pub fn insert(&self, token: u64, session_id: u64, session: Session) -> usize {
        if self.capacity == 0 {
            return 1; // dropped on the floor: parking disabled
        }
        let mut q = self.inner.lock().unwrap();
        let mut evicted = 0;
        while q.len() >= self.capacity {
            q.pop_front();
            evicted += 1;
        }
        q.push_back(Parked {
            token,
            session_id,
            session,
            at: Instant::now(),
        });
        evicted
    }

    /// Takes the session parked under `token`, unless it has expired
    /// (expired entries are dropped here rather than resurrected).
    pub fn take(&self, token: u64) -> Option<(u64, Session)> {
        let mut q = self.inner.lock().unwrap();
        let idx = q.iter().position(|p| p.token == token)?;
        let p = q.remove(idx).unwrap();
        if p.at.elapsed() > self.ttl {
            return None; // expired between sweeps; drop it
        }
        Some((p.session_id, p.session))
    }

    /// Drops every session parked longer than the TTL, returning how
    /// many were evicted. Called from the accept loop's idle tick.
    pub fn sweep(&self) -> usize {
        let mut q = self.inner.lock().unwrap();
        let before = q.len();
        while q.front().is_some_and(|p| p.at.elapsed() > self.ttl) {
            q.pop_front();
        }
        before - q.len()
    }

    /// Sessions currently parked.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the park is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every parked session (server shutdown).
    pub fn clear(&self) -> usize {
        let mut q = self.inner.lock().unwrap();
        let n = q.len();
        q.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::HelloConfig;

    fn session(token: u64) -> Session {
        Session::from_hello(&HelloConfig::default(), token).unwrap()
    }

    #[test]
    fn insert_take_roundtrip() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        assert_eq!(park.insert(7, 100, session(7)), 0);
        assert_eq!(park.len(), 1);
        let (id, s) = park.take(7).unwrap();
        assert_eq!(id, 100);
        assert_eq!(s.token(), 7);
        assert!(park.take(7).is_none(), "taken sessions stay gone");
    }

    #[test]
    fn unknown_token_is_none() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        park.insert(1, 1, session(1));
        assert!(park.take(2).is_none());
        assert_eq!(park.len(), 1, "miss must not disturb other entries");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let park = SessionPark::new(2, Duration::from_secs(60));
        assert_eq!(park.insert(1, 1, session(1)), 0);
        assert_eq!(park.insert(2, 2, session(2)), 0);
        assert_eq!(park.insert(3, 3, session(3)), 1);
        assert!(park.take(1).is_none(), "oldest was evicted");
        assert!(park.take(2).is_some());
        assert!(park.take(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_parking() {
        let park = SessionPark::new(0, Duration::from_secs(60));
        assert_eq!(park.insert(1, 1, session(1)), 1);
        assert!(park.take(1).is_none());
        assert!(park.is_empty());
    }

    #[test]
    fn ttl_sweeps_and_blocks_expired_take() {
        let park = SessionPark::new(4, Duration::from_millis(0));
        park.insert(1, 1, session(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(park.take(1).is_none(), "expired entries never resurrect");
        park.insert(2, 2, session(2));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(park.sweep(), 1);
        assert!(park.is_empty());
    }

    #[test]
    fn clear_empties_the_park() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        park.insert(1, 1, session(1));
        park.insert(2, 2, session(2));
        assert_eq!(park.clear(), 2);
        assert!(park.is_empty());
    }
}
