//! Parked-session store: detached [`Session`]s awaiting a `RESUME`.
//!
//! When a connection drops without a clean `GOODBYE` (or a client sends
//! an explicit `PARK`), the server parks its session here keyed by
//! resume token. A later `RESUME` carrying the token takes the session
//! back out and replay continues bit-identically from the last acked
//! batch.
//!
//! # Two tiers (rev 1.3), background spill (rev 1.4)
//!
//! The park layers a hot tier over an optional durable tier:
//!
//! * the **hot tier** is a bounded in-memory deque of live [`Session`]s
//!   — resuming from it costs nothing but a lookup;
//! * the **disk tier** is a [`cira_store::SessionStore`] holding
//!   serialized [`cira_store::Checkpoint`]s.
//!
//! How a session reaches disk depends on who parked it:
//!
//! * An explicit `PARK` frame ([`SessionPark::insert_durable`]) is
//!   **write-through**: the checkpoint is synced before the call
//!   returns, because `PARKED_ACK` is a durability receipt. Unchanged
//!   since rev 1.3.
//! * A teardown park ([`SessionPark::insert`] — connection died without
//!   `GOODBYE`, idle eviction) is **lazy**: the session lands hot-only
//!   and the *background spiller* ([`SessionPark::spill_step`], driven
//!   from the shards' timer ticks) writes oldest-first batches through
//!   later. Fsync cost leaves the teardown path entirely.
//!
//! Lazy does not mean lossy: hot-tier eviction of a not-yet-spilled
//! entry (capacity pressure) writes it through *at eviction* before the
//! decoded copy is dropped, so pressure still spills to disk, never to
//! oblivion — the park's real capacity remains the disk tier's byte
//! budget, not RAM. Only a full disk tier downgrades an eviction to a
//! real loss. A resume that misses the hot tier loads and decodes the
//! checkpoint ([`Resumed::from_disk`] reports which path served it).
//! With a disk tier but zero hot capacity, `insert` keeps rev 1.3
//! write-through (there is no hot slot to be lazy in). Without a disk
//! tier the old rev 1.2 semantics are unchanged: hot eviction destroys
//! state for good.
//!
//! Expiry is tracked two ways for the same TTL: hot entries by a
//! monotonic [`Instant`], disk records by an **absolute wall-clock
//! deadline** (milliseconds since the Unix epoch) persisted in the
//! record metadata — a relative TTL could not survive a restart.
//! [`SessionPark::sweep`] enforces both; [`SessionPark::take`] refuses
//! to resurrect anything expired between sweeps.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use cira_store::{Checkpoint, SessionStore, StoreError};

use crate::session::Session;

/// Milliseconds since the Unix epoch, saturating (a pre-1970 clock
/// reads as 0).
pub fn unix_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One detached session with its park timestamp and server session id.
#[derive(Debug)]
struct Parked {
    token: u64,
    session_id: u64,
    session: Session,
    at: Instant,
    /// Absolute expiry persisted with the disk copy. Fixed at park time
    /// so the background spiller writes the same deadline `insert`
    /// would have.
    deadline_unix_ms: u64,
    /// Whether a disk copy exists (write-through or spill succeeded).
    durable: bool,
}

/// What happened to a parked session and its neighbours.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParkOutcome {
    /// Sessions destroyed for good (no disk copy retained).
    pub evicted: usize,
    /// Hot entries dropped with their disk copy kept.
    pub spilled: usize,
    /// The parked session was durably persisted before returning.
    pub persisted: bool,
    /// The disk tier refused the write at capacity (the session may
    /// still be parked hot-only).
    pub store_full: bool,
}

/// Why [`SessionPark::insert_durable`] refused a park, handing the
/// session back untouched.
#[derive(Debug)]
pub enum ParkRefusal {
    /// The disk tier is at its byte budget; transient — retry after
    /// sweeps or resumes free pages. Mirrors `BUSY` on the wire.
    Full(Box<Session>),
    /// The server has no way to park at all (no disk tier and a zero
    /// hot capacity); permanent for this server configuration.
    Disabled(Box<Session>),
}

/// A session taken back out of the park.
#[derive(Debug)]
pub struct Resumed {
    /// The server session id the session was parked under.
    pub session_id: u64,
    /// The live session.
    pub session: Session,
    /// Whether the resume decoded a disk checkpoint (hot-tier miss).
    pub from_disk: bool,
}

/// TTL sweep results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Unique parked sessions destroyed by this sweep.
    pub expired: usize,
}

/// Background-spill step results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillOutcome {
    /// Hot-only sessions written through to disk by this step.
    pub written: usize,
    /// The step stopped early because the disk tier is at capacity;
    /// the remaining hot-only entries stay pending for a later step.
    pub store_full: bool,
}

/// Bounded, TTL-evicting, optionally durable store of detached
/// sessions, keyed by token.
///
/// The hot tier is a deque ordered by park time: sessions are only
/// ever pushed at the back and scanned from the front, so capacity and
/// TTL eviction are O(evicted) per call. The disk tier is keyed by
/// token with its own byte budget.
#[derive(Debug)]
pub struct SessionPark {
    capacity: usize,
    ttl: Duration,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    hot: VecDeque<Parked>,
    disk: Option<SessionStore>,
}

impl SessionPark {
    /// Creates a memory-only park holding at most `capacity` sessions
    /// for at most `ttl` each. A zero capacity disables parking
    /// entirely (rev 1.2 semantics).
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            capacity,
            ttl,
            inner: Mutex::new(Inner {
                hot: VecDeque::new(),
                disk: None,
            }),
        }
    }

    /// Creates a two-tier park over the store file at `path` (created
    /// if absent), holding at most `capacity` sessions hot and at most
    /// `disk_capacity_bytes` of checkpoint pages on disk (0 =
    /// unlimited).
    ///
    /// Recovery happens here: records already in the store — survivors
    /// of a previous process, crashed or not — are scanned, expired
    /// ones are removed, and the rest become immediately resumable
    /// (their sessions decode lazily, on first `RESUME`, so a large
    /// park does not inflate startup memory). Returns the park and the
    /// number of sessions recovered.
    ///
    /// # Errors
    ///
    /// I/O failures, or a file that is not a cira-store page file.
    pub fn with_disk(
        capacity: usize,
        ttl: Duration,
        path: &Path,
        disk_capacity_bytes: u64,
    ) -> Result<(Self, usize), StoreError> {
        let store = SessionStore::open(path, disk_capacity_bytes)?;
        Ok(Self::from_store(capacity, ttl, store))
    }

    /// Like [`SessionPark::with_disk`], but the store's open-time
    /// recovery scan is handed to `exec` — see
    /// [`SessionStore::open_scanned`]. The server passes a closure that
    /// fans the page-range jobs over the shared `WorkerPool`, so a
    /// multi-GiB park file recovers at the speed of every core.
    ///
    /// # Errors
    ///
    /// I/O failures, or a file that is not a cira-store page file.
    pub fn with_disk_scanned<E>(
        capacity: usize,
        ttl: Duration,
        path: &Path,
        disk_capacity_bytes: u64,
        exec: E,
    ) -> Result<(Self, usize), StoreError>
    where
        E: FnOnce(Vec<std::ops::Range<u64>>, cira_store::PageScanner<'_>) -> Vec<cira_store::ScanChunk>,
    {
        let store = SessionStore::open_scanned(
            path,
            disk_capacity_bytes,
            cira_store::store::DEFAULT_FRAMES,
            cira_store::Eviction::Clock,
            exec,
        )?;
        Ok(Self::from_store(capacity, ttl, store))
    }

    /// Finishes recovery over a freshly opened store: drops expired
    /// records and wraps the rest as the disk tier.
    fn from_store(capacity: usize, ttl: Duration, mut store: SessionStore) -> (Self, usize) {
        // Expired records are dead weight from a previous life; drop
        // them before they count against capacity.
        let now = unix_now_ms();
        for (token, meta) in store.entries() {
            if meta.deadline_unix_ms != 0 && meta.deadline_unix_ms < now {
                let _ = store.remove(token);
            }
        }
        let recovered = store.len();
        cira_obs::debug!("park recovered from disk", sessions = recovered);
        (
            Self {
                capacity,
                ttl,
                inner: Mutex::new(Inner {
                    hot: VecDeque::new(),
                    disk: Some(store),
                }),
            },
            recovered,
        )
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.inner.lock().unwrap().disk.is_some()
    }

    /// The absolute wall-clock deadline for a park made now.
    fn deadline_unix_ms(&self) -> u64 {
        unix_now_ms().saturating_add(self.ttl.as_millis() as u64)
    }

    /// Parks a detached session *lazily*: into the hot tier only, with
    /// the disk write deferred to the background spiller
    /// ([`Self::spill_step`]) or, under capacity pressure, to eviction
    /// time. The one exception is a disk tier with zero hot capacity,
    /// where write-through is the only way to park at all.
    pub fn insert(&self, token: u64, session_id: u64, session: Session) -> ParkOutcome {
        let mut outcome = ParkOutcome::default();
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let deadline = self.deadline_unix_ms();
        if self.capacity == 0 {
            if let Some(store) = inner.disk.as_mut() {
                let blob = session.to_checkpoint(session_id).encode();
                match store.put(token, session_id, deadline, &blob) {
                    Ok(()) => outcome.persisted = true,
                    Err(StoreError::Full { .. }) => outcome.store_full = true,
                    Err(e) => {
                        cira_obs::warn!(
                            "park write-through failed",
                            token = token,
                            error = format!("{e}")
                        );
                    }
                }
            }
            if !outcome.persisted {
                outcome.evicted = 1; // dropped on the floor: parking disabled/full
            }
            return outcome;
        }
        Self::hot_insert(
            inner,
            self.capacity,
            &mut outcome,
            token,
            session_id,
            session,
            deadline,
        );
        outcome
    }

    /// Parks only if the session will survive: durably when a disk tier
    /// exists, hot otherwise. A full disk tier or a park-less server
    /// hands the session back untouched instead of degrading — the
    /// caller can keep it attached and tell the client why.
    pub fn insert_durable(
        &self,
        token: u64,
        session_id: u64,
        session: Session,
    ) -> Result<ParkOutcome, ParkRefusal> {
        let mut outcome = ParkOutcome::default();
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let deadline = self.deadline_unix_ms();
        if let Some(store) = inner.disk.as_mut() {
            let blob = session.to_checkpoint(session_id).encode();
            match store.put(token, session_id, deadline, &blob) {
                Ok(()) => outcome.persisted = true,
                Err(StoreError::Full { .. }) => return Err(ParkRefusal::Full(Box::new(session))),
                Err(e) => {
                    cira_obs::warn!(
                        "park write-through failed",
                        token = token,
                        error = format!("{e}")
                    );
                    return Err(ParkRefusal::Full(Box::new(session)));
                }
            }
        }
        if self.capacity == 0 {
            if outcome.persisted {
                return Ok(outcome); // disk-only park
            }
            return Err(ParkRefusal::Disabled(Box::new(session)));
        }
        Self::hot_insert(
            inner,
            self.capacity,
            &mut outcome,
            token,
            session_id,
            session,
            deadline,
        );
        Ok(outcome)
    }

    /// Pushes into the hot tier, evicting or spilling the oldest
    /// entries to stay within `capacity` (which must be nonzero). A
    /// victim the background spiller has not reached yet is written
    /// through here, at eviction — pressure spills to disk, not to
    /// oblivion.
    #[allow(clippy::too_many_arguments)]
    fn hot_insert(
        inner: &mut Inner,
        capacity: usize,
        outcome: &mut ParkOutcome,
        token: u64,
        session_id: u64,
        session: Session,
        deadline_unix_ms: u64,
    ) {
        while inner.hot.len() >= capacity {
            let old = inner.hot.pop_front().expect("len checked");
            if old.durable {
                outcome.spilled += 1;
            } else if let Some(store) = inner.disk.as_mut() {
                let blob = old.session.to_checkpoint(old.session_id).encode();
                match store.put(old.token, old.session_id, old.deadline_unix_ms, &blob) {
                    Ok(()) => outcome.spilled += 1,
                    Err(e) => {
                        if matches!(e, StoreError::Full { .. }) {
                            outcome.store_full = true;
                        } else {
                            cira_obs::warn!(
                                "park eviction spill failed",
                                token = old.token,
                                error = format!("{e}")
                            );
                        }
                        outcome.evicted += 1;
                    }
                }
            } else {
                outcome.evicted += 1;
            }
        }
        inner.hot.push_back(Parked {
            token,
            session_id,
            session,
            at: Instant::now(),
            deadline_unix_ms,
            durable: outcome.persisted,
        });
    }

    /// One background-spill step: writes up to `max_n` of the oldest
    /// hot-only (not yet durable) sessions through to the disk tier,
    /// marking them durable in place. Called from the shards' timer
    /// ticks so fsync cost never sits on a connection teardown. A full
    /// disk tier stops the step early ([`SpillOutcome::store_full`]);
    /// the remainder stays pending for a later step, after sweeps or
    /// resumes free pages. A no-op without a disk tier.
    pub fn spill_step(&self, max_n: usize) -> SpillOutcome {
        let mut outcome = SpillOutcome::default();
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(store) = inner.disk.as_mut() else {
            return outcome;
        };
        for p in inner.hot.iter_mut() {
            if outcome.written >= max_n {
                break;
            }
            if p.durable {
                continue;
            }
            let blob = p.session.to_checkpoint(p.session_id).encode();
            match store.put(p.token, p.session_id, p.deadline_unix_ms, &blob) {
                Ok(()) => {
                    p.durable = true;
                    outcome.written += 1;
                }
                Err(StoreError::Full { .. }) => {
                    outcome.store_full = true;
                    break; // retrying every entry would thrash a full tier
                }
                Err(e) => {
                    cira_obs::warn!(
                        "park background spill failed",
                        token = p.token,
                        error = format!("{e}")
                    );
                    break;
                }
            }
        }
        outcome
    }

    /// Hot sessions the background spiller has not written through yet
    /// (always 0 without a disk tier — there is nowhere to spill to).
    pub fn pending_spill(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        if inner.disk.is_none() {
            return 0;
        }
        inner.hot.iter().filter(|p| !p.durable).count()
    }

    /// Takes the session parked under `token`: from the hot tier when
    /// resident, else by decoding its disk checkpoint. Either way the
    /// disk copy is removed (durably), so a session never resurrects
    /// after being resumed. Expired entries are dropped here rather
    /// than resurrected.
    pub fn take(&self, token: u64) -> Option<Resumed> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        if let Some(idx) = inner.hot.iter().position(|p| p.token == token) {
            let p = inner.hot.remove(idx).expect("index from position");
            if p.durable {
                if let Some(store) = inner.disk.as_mut() {
                    let _ = store.remove(token);
                }
            }
            if p.at.elapsed() > self.ttl {
                return None; // expired between sweeps; drop it
            }
            return Some(Resumed {
                session_id: p.session_id,
                session: p.session,
                from_disk: false,
            });
        }
        let store = inner.disk.as_mut()?;
        let (meta, blob) = match store.get(token) {
            Ok(hit) => hit,
            Err(StoreError::NotFound(_)) => return None,
            Err(e) => {
                cira_obs::warn!(
                    "park disk read failed",
                    token = token,
                    error = format!("{e}")
                );
                let _ = store.remove(token);
                return None;
            }
        };
        let _ = store.remove(token);
        if meta.deadline_unix_ms != 0 && meta.deadline_unix_ms < unix_now_ms() {
            return None; // expired on disk between sweeps
        }
        let checkpoint = match Checkpoint::decode(&blob) {
            Ok(cp) => cp,
            Err(e) => {
                cira_obs::warn!("park checkpoint undecodable", token = token, error = e);
                return None;
            }
        };
        match Session::from_checkpoint(&checkpoint, token) {
            Ok(session) => Some(Resumed {
                session_id: meta.session_id,
                session,
                from_disk: true,
            }),
            Err(e) => {
                cira_obs::warn!("park checkpoint unrestorable", token = token, error = e);
                None
            }
        }
    }

    /// Drops every session parked longer than the TTL — hot entries by
    /// monotonic age, disk records by their absolute deadline — and
    /// returns how many unique sessions were destroyed.
    pub fn sweep(&self) -> SweepOutcome {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let mut expired = 0;
        while inner.hot.front().is_some_and(|p| p.at.elapsed() > self.ttl) {
            let p = inner.hot.pop_front().expect("front checked");
            if p.durable {
                if let Some(store) = inner.disk.as_mut() {
                    let _ = store.remove(p.token);
                }
            }
            expired += 1;
        }
        if let Some(store) = inner.disk.as_mut() {
            // Anything left on disk past its deadline is a spilled or
            // recovered record (hot copies were just handled above).
            let now = unix_now_ms();
            for (token, meta) in store.entries() {
                if meta.deadline_unix_ms != 0 && meta.deadline_unix_ms < now {
                    let _ = store.remove(token);
                    expired += 1;
                }
            }
        }
        SweepOutcome { expired }
    }

    /// Unique sessions currently parked (hot-only entries plus every
    /// disk record; write-through entries count once).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        let hot_only = inner.hot.iter().filter(|p| !p.durable).count();
        let disk = inner.disk.as_ref().map_or(0, SessionStore::len);
        hot_only + disk
    }

    /// Whether the park is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoint records currently in the disk tier.
    pub fn disk_records(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.disk.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Bytes of live checkpoint pages in the disk tier.
    pub fn disk_bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.disk.as_ref().map_or(0, SessionStore::bytes_used)
    }

    /// Disk-tier buffer-pool `(hits, misses)`.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        inner
            .disk
            .as_ref()
            .map_or((0, 0), |s| (s.page_hits(), s.page_misses()))
    }

    /// Shuts the park down. Without a disk tier, every parked session is
    /// dropped (rev 1.2 `clear`). With one, hot-only entries are written
    /// through first, so every parked session survives the restart.
    /// Returns `(persisted, dropped)` — sessions made durable on the way
    /// down, and sessions destroyed for good.
    pub fn shutdown_drain(&self) -> (usize, usize) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let mut persisted = 0;
        let mut dropped = 0;
        while let Some(p) = inner.hot.pop_front() {
            if p.durable {
                continue; // already on disk
            }
            match inner.disk.as_mut() {
                Some(store) => {
                    let blob = p.session.to_checkpoint(p.session_id).encode();
                    match store.put(p.token, p.session_id, p.deadline_unix_ms, &blob) {
                        Ok(()) => persisted += 1,
                        Err(_) => dropped += 1,
                    }
                }
                None => dropped += 1,
            }
        }
        (persisted, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::HelloConfig;
    use cira_trace::codec::PackedTrace;
    use cira_trace::suite::ibs_like_suite;

    fn session(token: u64) -> Session {
        Session::from_hello(&HelloConfig::default(), token).unwrap()
    }

    /// A session whose checkpoint fits in one page, for byte-budget
    /// tests (the default `gshare64k` tables span dozens of pages).
    fn small_session(token: u64) -> Session {
        let config = HelloConfig {
            predictor: "gshare:6:6".to_owned(),
            mechanism: "resetting:4".to_owned(),
            index: "pcxorbhr:6".to_owned(),
            init: "ones".to_owned(),
            threshold: 4,
        };
        Session::from_hello(&config, token).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cira-park-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("park.cirstore")
    }

    #[test]
    fn insert_take_roundtrip() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        let outcome = park.insert(7, 100, session(7));
        assert_eq!(outcome, ParkOutcome::default());
        assert_eq!(park.len(), 1);
        let r = park.take(7).unwrap();
        assert_eq!(r.session_id, 100);
        assert_eq!(r.session.token(), 7);
        assert!(!r.from_disk);
        assert!(park.take(7).is_none(), "taken sessions stay gone");
    }

    #[test]
    fn unknown_token_is_none() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        park.insert(1, 1, session(1));
        assert!(park.take(2).is_none());
        assert_eq!(park.len(), 1, "miss must not disturb other entries");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let park = SessionPark::new(2, Duration::from_secs(60));
        assert_eq!(park.insert(1, 1, session(1)).evicted, 0);
        assert_eq!(park.insert(2, 2, session(2)).evicted, 0);
        assert_eq!(park.insert(3, 3, session(3)).evicted, 1);
        assert!(park.take(1).is_none(), "oldest was evicted");
        assert!(park.take(2).is_some());
        assert!(park.take(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_parking() {
        let park = SessionPark::new(0, Duration::from_secs(60));
        assert_eq!(park.insert(1, 1, session(1)).evicted, 1);
        assert!(park.take(1).is_none());
        assert!(park.is_empty());
    }

    #[test]
    fn ttl_sweeps_and_blocks_expired_take() {
        let park = SessionPark::new(4, Duration::from_millis(0));
        park.insert(1, 1, session(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(park.take(1).is_none(), "expired entries never resurrect");
        park.insert(2, 2, session(2));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(park.sweep().expired, 1);
        assert!(park.is_empty());
    }

    #[test]
    fn shutdown_drain_without_disk_drops_all() {
        let park = SessionPark::new(4, Duration::from_secs(60));
        park.insert(1, 1, session(1));
        park.insert(2, 2, session(2));
        assert_eq!(park.shutdown_drain(), (0, 2));
        assert!(park.is_empty());
    }

    #[test]
    fn disk_tier_survives_reopen_and_resumes_bit_identically() {
        let path = tmp("survive");
        let _ = std::fs::remove_file(&path);
        let trace: PackedTrace = ibs_like_suite()[0].walker().take(6_000).collect();
        let head: PackedTrace = (0..4_000).map(|i| trace.get(i).unwrap()).collect();
        let tail: PackedTrace = (4_000..6_000).map(|i| trace.get(i).unwrap()).collect();

        let mut reference = session(9);
        reference.apply_batch(0, &head);

        {
            let (park, recovered) =
                SessionPark::with_disk(4, Duration::from_secs(60), &path, 0).unwrap();
            assert_eq!(recovered, 0);
            let mut s = session(9);
            s.apply_batch(0, &head);
            let outcome = park.insert(9, 42, s);
            assert!(!outcome.persisted, "teardown parks are lazy (rev 1.4)");
            assert_eq!(outcome.evicted, 0);
            assert_eq!(park.pending_spill(), 1);
            // The background spiller (a shard tick, in production) makes
            // it durable before the process dies.
            assert_eq!(park.spill_step(16), SpillOutcome { written: 1, store_full: false });
            assert_eq!(park.pending_spill(), 0);
        } // process "dies" — nothing flushed beyond the spill's own sync

        let (park, recovered) =
            SessionPark::with_disk(4, Duration::from_secs(60), &path, 0).unwrap();
        assert_eq!(recovered, 1);
        assert_eq!(park.len(), 1);
        let r = park.take(9).unwrap();
        assert_eq!(r.session_id, 42);
        assert!(r.from_disk, "resume after restart must come from disk");
        let mut resumed = r.session;
        let a = reference.apply_batch(1, &tail);
        let b = resumed.apply_batch(1, &tail);
        assert_eq!(a, b);
        assert_eq!(reference.snapshot(), resumed.snapshot());
        assert!(park.is_empty(), "resume removes the disk record");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hot_eviction_spills_to_disk_not_oblivion() {
        let path = tmp("spill");
        let _ = std::fs::remove_file(&path);
        let (park, _) = SessionPark::with_disk(2, Duration::from_secs(60), &path, 0).unwrap();
        assert!(!park.insert(1, 1, session(1)).persisted, "lazy park");
        assert!(!park.insert(2, 2, session(2)).persisted, "lazy park");
        // The spiller never ran, so the eviction itself must write the
        // victim through before dropping the decoded copy.
        let outcome = park.insert(3, 3, session(3));
        assert_eq!(outcome.spilled, 1, "evicted entries spill to disk");
        assert_eq!(outcome.evicted, 0, "nothing is destroyed");
        assert_eq!(park.len(), 3, "all three sessions remain parked");
        assert_eq!(park.disk_records(), 1, "only the victim was written");
        let r = park.take(1).unwrap();
        assert!(r.from_disk, "spilled session resumes from disk");
        assert!(!park.take(3).unwrap().from_disk, "recent session is hot");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn background_spill_writes_oldest_first_in_batches() {
        let path = tmp("bgspill");
        let _ = std::fs::remove_file(&path);
        let (park, _) = SessionPark::with_disk(8, Duration::from_secs(60), &path, 0).unwrap();
        for t in 1..=5u64 {
            park.insert(t, t, session(t));
        }
        assert_eq!(park.pending_spill(), 5);
        assert_eq!(park.disk_records(), 0, "nothing written at insert time");
        assert_eq!(park.spill_step(2), SpillOutcome { written: 2, store_full: false });
        assert_eq!(park.pending_spill(), 3);
        assert_eq!(park.disk_records(), 2);
        assert_eq!(park.spill_step(usize::MAX).written, 3);
        assert_eq!(park.pending_spill(), 0);
        assert_eq!(park.disk_records(), 5);
        assert_eq!(park.spill_step(usize::MAX), SpillOutcome::default(), "idempotent when drained");
        assert_eq!(park.len(), 5, "spilled entries still count once");
        // Spilled-but-hot entries resume from the hot tier and release
        // their disk copy.
        let r = park.take(1).unwrap();
        assert!(!r.from_disk);
        assert_eq!(park.disk_records(), 4, "resume removes the disk copy");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn background_spill_survives_kill_between_ticks() {
        let path = tmp("bgspill-crash");
        let _ = std::fs::remove_file(&path);
        {
            let (park, _) =
                SessionPark::with_disk(8, Duration::from_secs(60), &path, 0).unwrap();
            park.insert(1, 1, session(1));
            park.insert(2, 2, session(2));
            assert_eq!(park.spill_step(1).written, 1, "one tick fired");
        } // kill -9 before the next tick: only the spilled entry survives
        let (park, recovered) =
            SessionPark::with_disk(8, Duration::from_secs(60), &path, 0).unwrap();
        assert_eq!(recovered, 1, "lazy window is bounded by the tick cadence");
        assert!(park.take(1).unwrap().from_disk, "oldest was spilled first");
        assert!(park.take(2).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scanned_recovery_matches_sequential() {
        let path = tmp("scanned");
        let _ = std::fs::remove_file(&path);
        {
            let (park, _) =
                SessionPark::with_disk(8, Duration::from_secs(60), &path, 0).unwrap();
            for t in 1..=3u64 {
                park.insert(t, t * 10, small_session(t));
            }
            assert_eq!(park.spill_step(usize::MAX).written, 3);
        }
        let exec = |ranges: Vec<std::ops::Range<u64>>, scan: cira_store::PageScanner<'_>| {
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    ranges.into_iter().map(|r| s.spawn(move || scan(r))).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let (park, recovered) =
            SessionPark::with_disk_scanned(8, Duration::from_secs(60), &path, 0, exec).unwrap();
        assert_eq!(recovered, 3);
        for t in 1..=3u64 {
            let r = park.take(t).unwrap();
            assert_eq!(r.session_id, t * 10);
            assert!(r.from_disk);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_capacity_reports_store_full() {
        let path = tmp("full");
        let _ = std::fs::remove_file(&path);
        // Room for two single-page checkpoints only.
        let (park, _) =
            SessionPark::with_disk(8, Duration::from_secs(60), &path, 2 * 4096).unwrap();
        park.insert(1, 1, small_session(1));
        park.insert(2, 2, small_session(2));
        park.insert(3, 3, small_session(3));
        let outcome = park.spill_step(usize::MAX);
        assert_eq!(outcome.written, 2, "the tier takes what fits");
        assert!(outcome.store_full, "and reports the stall");
        assert_eq!(park.pending_spill(), 1, "the rest stays pending");
        // The stalled session is still parked hot — resumable until
        // restart.
        assert!(!park.take(3).unwrap().from_disk);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_drain_persists_hot_only_entries() {
        let path = tmp("drain");
        let _ = std::fs::remove_file(&path);
        {
            // Disk capacity 2 pages: the third park stays hot-only.
            let (park, _) =
                SessionPark::with_disk(8, Duration::from_secs(60), &path, 2 * 4096).unwrap();
            park.insert(1, 1, small_session(1));
            park.insert(2, 2, small_session(2));
            park.insert(3, 3, small_session(3));
            assert!(park.spill_step(usize::MAX).store_full);
            // Make room, then drain: the hot-only session gets written.
            let r = park.take(1).unwrap();
            assert_eq!(r.session_id, 1);
            assert_eq!(park.shutdown_drain(), (1, 0));
        }
        let (park, recovered) =
            SessionPark::with_disk(8, Duration::from_secs(60), &path, 2 * 4096).unwrap();
        assert_eq!(recovered, 2);
        assert!(park.take(3).unwrap().from_disk);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_sweep_uses_absolute_deadlines() {
        let path = tmp("deadline");
        let _ = std::fs::remove_file(&path);
        {
            let (park, _) =
                SessionPark::with_disk(0, Duration::from_millis(1), &path, 0).unwrap();
            // Zero hot capacity: disk-only park.
            let outcome = park.insert(5, 5, session(5));
            assert!(outcome.persisted);
            assert_eq!(outcome.evicted, 0, "persisted parks are not losses");
        }
        std::thread::sleep(Duration::from_millis(10));
        // A restart later, the record is past its wall-clock deadline.
        let (park, recovered) =
            SessionPark::with_disk(4, Duration::from_millis(1), &path, 0).unwrap();
        assert_eq!(recovered, 0, "expired records die at recovery");
        assert!(park.take(5).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn insert_durable_refuses_rather_than_degrades() {
        // No disk tier and no hot tier: parking is simply off.
        let park = SessionPark::new(0, Duration::from_secs(60));
        match park.insert_durable(1, 1, small_session(1)) {
            Err(ParkRefusal::Disabled(s)) => assert_eq!(s.token(), 1),
            other => panic!("expected Disabled, got {other:?}"),
        }
        // Full disk tier: the session comes back untouched, not parked
        // hot with silently-degraded durability.
        let path = tmp("durable");
        let _ = std::fs::remove_file(&path);
        let (park, _) =
            SessionPark::with_disk(8, Duration::from_secs(60), &path, 2 * 4096).unwrap();
        assert!(park.insert_durable(1, 1, small_session(1)).unwrap().persisted);
        assert!(park.insert_durable(2, 2, small_session(2)).unwrap().persisted);
        match park.insert_durable(3, 3, small_session(3)) {
            Err(ParkRefusal::Full(s)) => assert_eq!(s.token(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(park.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn page_cache_stats_move_on_disk_resume() {
        let path = tmp("cache");
        let _ = std::fs::remove_file(&path);
        let (park, _) = SessionPark::with_disk(1, Duration::from_secs(60), &path, 0).unwrap();
        park.insert(1, 1, session(1));
        park.insert(2, 2, session(2)); // spills 1
        park.take(1).unwrap();
        let (hits, misses) = park.page_cache_stats();
        assert!(hits + misses > 0, "disk resume touches the page cache");
        std::fs::remove_file(&path).unwrap();
    }
}
