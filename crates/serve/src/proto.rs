//! The `CIRS` v1 wire protocol: typed frames and their byte encodings.
//!
//! Every frame travels inside a length prefix (see [`crate::frame`]) and
//! starts with a one-byte frame type. All integers are little-endian;
//! strings are `u16` length + UTF-8 bytes; bitmaps are `u64` words,
//! LSB-first within each word (the same convention as
//! [`PackedTrace`]'s taken bitmap).
//!
//! | type | direction | frame | payload |
//! |------|-----------|-------------------|---------|
//! | 0x01 | c → s | `HELLO` | magic `CIRS`, version `u8`, predictor/mechanism/index/init spec strings, threshold `u64` |
//! | 0x02 | c → s | `BATCH` | seq `u32`, [`PackedTrace::to_bytes`] payload |
//! | 0x03 | c → s | `STATS` | — |
//! | 0x04 | c → s | `SNAPSHOT` | — |
//! | 0x05 | c → s | `RESET` | — |
//! | 0x06 | c → s | `GOODBYE` | — |
//! | 0x07 | c → s | `METRICS` | — (rev 1.1) |
//! | 0x08 | c → s | `RESUME` | magic `CIRS`, version `u8`, resume token `u64` (rev 1.2) |
//! | 0x09 | c → s | `PARK` | — (rev 1.3) |
//! | 0x0a | c → s | `TRACE_DUMP` | — (rev 1.5) |
//! | 0x81 | s → c | `HELLO_ACK` | version `u8`, session id `u64`, max frame `u32`, max in-flight `u32`, predictor/mechanism descriptions, resume token `u64` (rev 1.2) |
//! | 0x82 | s → c | `BATCH_ACK` | seq `u32`, batch records/mispredicts/low `u64`×3, session records `u64`, predicted + low bitmaps |
//! | 0x83 | s → c | `STATS_REPLY` | `u32` count, then (name string, value `u64`) pairs |
//! | 0x84 | s → c | `SNAPSHOT_REPLY` | branches/mispredicts/low `u64`×3, `u32` cell count, then (key `u64`, refs `f64`, mispredicts `f64`) sorted by key |
//! | 0x85 | s → c | `RESET_ACK` | — |
//! | 0x86 | s → c | `GOODBYE_ACK` | — |
//! | 0x87 | s → c | `METRICS_REPLY` | `u32` length + Prometheus exposition text (rev 1.1) |
//! | 0x88 | s → c | `RESUME_ACK` | session `u64`, has-last `u8`, last acked seq `u32`, session batches/records/mispredicts/low `u64`×4, max frame `u32`, max in-flight `u32` (rev 1.2) |
//! | 0x89 | s → c | `PARKED_ACK` | resume token `u64` (rev 1.3) |
//! | 0x8a | s → c | `TRACE_DUMP_REPLY` | `u32` length + Chrome trace-event JSON (rev 1.5) |
//! | 0x7e | s → c | `BUSY` | retry-after hint `u32` (ms), message string (rev 1.2) |
//! | 0x7d | s → c | `STORE_FULL` | retry-after hint `u32` (ms), message string (rev 1.3) |
//! | 0x7f | s → c | `ERROR` | code `u16`, message string |
//!
//! Negotiation rule: the server accepts exactly [`PROTO_VERSION`]; a
//! `HELLO` carrying anything else is answered with an `ERROR` frame (code
//! [`code::UNSUPPORTED_VERSION`]) naming the supported version, then the
//! connection closes. Unknown frame types, malformed payloads, and
//! oversized frames are likewise per-connection errors — the process keeps
//! serving everyone else.
//!
//! # Minor revisions
//!
//! [`PROTO_REV`] tracks additive changes within major version 1; it is
//! informational and never negotiated. Rev **1.1** adds:
//!
//! * the `METRICS` / `METRICS_REPLY` frame pair (Prometheus text over the
//!   wire; the payload is a `u32`-length blob because exposition text
//!   routinely exceeds the [`MAX_STRING`] cap on spec strings);
//! * `STATS` / `METRICS` / `GOODBYE` accepted **before** a session is
//!   negotiated, so operator tooling (`cira stats`) needs no `HELLO`;
//! * additional `STATS_REPLY` names (`uptime_seconds`, the
//!   `protocol_errors_*` breakdown) appended after the original thirteen.
//!
//! All three are tolerate-unknown-by-construction for rev 1.0 peers:
//! `STATS_REPLY` pairs are self-describing, and a 1.0 *client* simply
//! never sends the new frame type. A 1.0 *server* answers `METRICS` with
//! an `ERROR` (unknown frame type), which 1.1 clients surface as-is.
//!
//! Rev **1.2** adds session resumption and load shedding:
//!
//! * `HELLO_ACK` carries a trailing **resume token** (`u64`): an opaque,
//!   unguessable capability for re-attaching to the session after the
//!   connection drops. Pre-1.2 decoders that reject trailing bytes see a
//!   longer ack; 1.2 clients talking to a 1.1 server treat the missing
//!   token as "resume unsupported".
//! * `RESUME` (0x08) opens a connection *instead of* `HELLO`: it names a
//!   parked session by token. The server answers `RESUME_ACK` with the
//!   last acked batch sequence number and the session-lifetime totals so
//!   the client can reconcile its own counters and retransmit everything
//!   newer. An unknown/expired token draws `ERROR` with
//!   [`code::UNKNOWN_SESSION`].
//! * `BUSY` (0x7e): a typed shed signal sent instead of `HELLO_ACK` when
//!   the server is at session capacity, carrying a retry-after hint in
//!   milliseconds. The connection closes after it; the client is expected
//!   to back off and retry.
//! * `BATCH_ACK`'s `seq` is a **cumulative** ack: batches are applied in
//!   submission order, so acking seq *n* implies every earlier sequence
//!   number was applied. Resumption leans on this — the client drops its
//!   retransmit buffer up to the acked sequence.
//!
//! Rev **1.3** adds durable parking:
//!
//! * parked sessions are written through to a `cira-store` disk tier
//!   (when the server runs with `--park-dir`), so a `RESUME` succeeds
//!   across a full server restart — including `kill -9` — with
//!   statistics bit-identical to an uninterrupted session;
//! * `PARK` (0x09): an *explicit, durable* detach. The client asks the
//!   server to checkpoint and park its session now; the server answers
//!   `PARKED_ACK` (0x89) echoing the resume token **only after** the
//!   checkpoint is persisted, then the connection closes. The client
//!   can disconnect, restart — or outlive a server `kill -9` — and
//!   `RESUME` later;
//! * `STORE_FULL` (0x7d): sent instead of `PARKED_ACK` when the disk
//!   park tier cannot persist the checkpoint at its byte budget. The
//!   session stays attached and streaming continues. Mirrors `BUSY`:
//!   it carries a retry-after hint and the condition is transient (TTL
//!   sweeps and resumes free pages). Where a typed frame cannot be
//!   used, the same condition surfaces as [`code::STORE_FULL`] in an
//!   `ERROR` frame (e.g. `PARK` on a server with parking disabled).
//!
//! Rev **1.4** (the thread-per-core event loop) changes no frame
//! encodings; it only appends `STATS_REPLY` names (`store_recovery_ms`,
//! `park_bg_spilled`, per-shard instruments), which the self-describing
//! pair format absorbs.
//!
//! Rev **1.5** adds flight-recorder export:
//!
//! * `TRACE_DUMP` (0x0a): ask the server for its retained trace events.
//!   Accepted before a session is negotiated, like `STATS`/`METRICS`, so
//!   `cira trace dump` needs no `HELLO`. The server answers
//!   `TRACE_DUMP_REPLY` (0x8a) carrying Chrome trace-event JSON as a
//!   `u32`-length blob (the same shape as `METRICS_REPLY`, and for the
//!   same reason: dumps routinely exceed [`MAX_STRING`]). With tracing
//!   disabled or uninitialized the reply is still well-formed JSON with
//!   an empty event list.

use std::fmt;

use cira_analysis::BucketStats;
use cira_trace::codec::{PackedBytesError, PackedTrace};

/// Magic bytes opening a `HELLO` payload.
pub const PROTO_MAGIC: &[u8; 4] = b"CIRS";
/// The protocol version this build speaks (negotiated in `HELLO`).
pub const PROTO_VERSION: u8 = 1;
/// Additive minor revision within [`PROTO_VERSION`] (see the module docs
/// for what each revision added). Informational — never negotiated.
pub const PROTO_REV: u8 = 5;

/// Frame type bytes.
pub mod frame_type {
    /// Client hello / config negotiation.
    pub const HELLO: u8 = 0x01;
    /// A batch of packed branch records.
    pub const BATCH: u8 = 0x02;
    /// Request server-wide live metrics.
    pub const STATS: u8 = 0x03;
    /// Request the session's accumulated bucket statistics.
    pub const SNAPSHOT: u8 = 0x04;
    /// Reset the session to its freshly-negotiated state.
    pub const RESET: u8 = 0x05;
    /// Orderly close: the server acks then the connection ends.
    pub const GOODBYE: u8 = 0x06;
    /// Request a Prometheus text exposition of all metrics (rev 1.1).
    pub const METRICS: u8 = 0x07;
    /// Re-attach to a parked session by resume token (rev 1.2).
    pub const RESUME: u8 = 0x08;
    /// Detach now: checkpoint the session durably and park it
    /// (rev 1.3).
    pub const PARK: u8 = 0x09;
    /// Request the flight recorder's retained trace events (rev 1.5).
    pub const TRACE_DUMP: u8 = 0x0a;
    /// Server accepts the hello.
    pub const HELLO_ACK: u8 = 0x81;
    /// Per-batch results.
    pub const BATCH_ACK: u8 = 0x82;
    /// Server metrics.
    pub const STATS_REPLY: u8 = 0x83;
    /// Session statistics.
    pub const SNAPSHOT_REPLY: u8 = 0x84;
    /// Reset done.
    pub const RESET_ACK: u8 = 0x85;
    /// Goodbye acknowledged.
    pub const GOODBYE_ACK: u8 = 0x86;
    /// Prometheus text exposition of all metrics (rev 1.1).
    pub const METRICS_REPLY: u8 = 0x87;
    /// Resume accepted: last acked seq + session totals (rev 1.2).
    pub const RESUME_ACK: u8 = 0x88;
    /// Park accepted: the session checkpoint is durable (rev 1.3).
    pub const PARKED_ACK: u8 = 0x89;
    /// Chrome trace-event JSON from the flight recorder (rev 1.5).
    pub const TRACE_DUMP_REPLY: u8 = 0x8a;
    /// Server at capacity: shed with a retry-after hint (rev 1.2).
    pub const BUSY: u8 = 0x7e;
    /// Disk park tier at capacity: a park could not be persisted; retry
    /// after the hint (rev 1.3).
    pub const STORE_FULL: u8 = 0x7d;
    /// Fatal per-connection error.
    pub const ERROR: u8 = 0x7f;
}

/// Error codes carried by `ERROR` frames.
pub mod code {
    /// The payload could not be decoded.
    pub const MALFORMED: u16 = 1;
    /// The hello's protocol version is not supported.
    pub const UNSUPPORTED_VERSION: u16 = 2;
    /// A spec string failed to parse.
    pub const BAD_SPEC: u16 = 3;
    /// A frame exceeded the negotiated maximum size.
    pub const OVERSIZED: u16 = 4;
    /// The first frame was not a `HELLO`.
    pub const HELLO_REQUIRED: u16 = 5;
    /// The server is shutting down.
    pub const SHUTTING_DOWN: u16 = 6;
    /// A `RESUME` token named no parked session (rev 1.2).
    pub const UNKNOWN_SESSION: u16 = 7;
    /// The session sat idle past the server's idle timeout (rev 1.2).
    pub const IDLE_TIMEOUT: u16 = 8;
    /// The disk park tier is at capacity (rev 1.3).
    pub const STORE_FULL: u16 = 9;
}

/// Configuration negotiated in a `HELLO`, in the CLI `spec` grammar
/// (parsed server-side by [`cira_analysis::spec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloConfig {
    /// Predictor spec, e.g. `gshare:12:12`.
    pub predictor: String,
    /// Confidence-mechanism spec, e.g. `resetting:16`.
    pub mechanism: String,
    /// Index spec, e.g. `pcxorbhr:12`.
    pub index: String,
    /// Table-initialization spec, e.g. `ones`.
    pub init: String,
    /// Low-confidence threshold: keys strictly below it are low.
    pub threshold: u64,
}

impl Default for HelloConfig {
    fn default() -> Self {
        Self {
            predictor: "gshare64k".to_owned(),
            mechanism: "resetting:16".to_owned(),
            index: "pcxorbhr:16".to_owned(),
            init: "ones".to_owned(),
            threshold: 16,
        }
    }
}

/// Frames sent by clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open a session with the given configuration.
    Hello {
        /// Requested protocol version.
        version: u8,
        /// Session configuration specs.
        config: HelloConfig,
    },
    /// A batch of records to score and train on.
    Batch {
        /// Client-chosen sequence number, echoed in the ack.
        seq: u32,
        /// The records, in `CIRP` packed layout.
        records: PackedTrace,
    },
    /// Request server metrics.
    Stats,
    /// Request session statistics.
    Snapshot,
    /// Reset the session.
    Reset,
    /// Orderly close.
    Goodbye,
    /// Request a Prometheus text exposition of all metrics (rev 1.1).
    Metrics,
    /// Re-attach to a parked session (rev 1.2). Sent *instead of*
    /// `Hello` as the first frame on a fresh connection.
    Resume {
        /// Requested protocol version.
        version: u8,
        /// The resume token issued in the original `HELLO_ACK`.
        token: u64,
    },
    /// Detach the session now, durably (rev 1.3). Acked with
    /// `PARKED_ACK` once the checkpoint is persisted; refused with
    /// `STORE_FULL` (session stays attached) when the disk tier is at
    /// capacity.
    Park,
    /// Request the flight recorder's retained trace events (rev 1.5).
    /// Accepted before a session is negotiated, like `Stats`/`Metrics`.
    TraceDump,
}

/// One `(key, refs, mispredicts)` statistics cell on the wire.
pub type SnapshotCell = (u64, f64, f64);

/// Frames sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Session accepted.
    HelloAck {
        /// Version the server speaks (== [`PROTO_VERSION`]).
        version: u8,
        /// Server-assigned session id.
        session: u64,
        /// Largest frame body the server accepts, bytes.
        max_frame: u32,
        /// Batches buffered per session before the reader blocks.
        max_inflight: u32,
        /// Parsed predictor description (e.g. `gshare(16,16)`).
        predictor: String,
        /// Parsed mechanism description.
        mechanism: String,
        /// Opaque resume token for re-attaching after a disconnect
        /// (rev 1.2).
        token: u64,
    },
    /// Results for one batch.
    BatchAck {
        /// Echo of the batch's sequence number.
        seq: u32,
        /// Records in this batch.
        records: u64,
        /// Mispredictions in this batch.
        mispredicts: u64,
        /// Low-confidence records in this batch (key < threshold).
        low_confidence: u64,
        /// Session-lifetime records after this batch.
        total_records: u64,
        /// Predicted directions, one bit per record (1 = taken).
        predicted: Vec<u64>,
        /// Low-confidence flags, one bit per record.
        low: Vec<u64>,
    },
    /// Server-wide metrics as name/value pairs.
    StatsReply(Vec<(String, u64)>),
    /// Session statistics snapshot.
    SnapshotReply {
        /// Session-lifetime records.
        branches: u64,
        /// Session-lifetime mispredictions.
        mispredicts: u64,
        /// Session-lifetime low-confidence records.
        low_confidence: u64,
        /// Bucket cells sorted by key, exact-bit `f64` counts.
        cells: Vec<SnapshotCell>,
    },
    /// Reset done.
    ResetAck,
    /// Goodbye acknowledged; connection closes next.
    GoodbyeAck,
    /// Prometheus text exposition of server, session, and pool metrics
    /// (rev 1.1). Carried as a `u32`-length blob, not a spec string:
    /// exposition text routinely exceeds [`MAX_STRING`].
    MetricsReply {
        /// The exposition text, as served on `GET /metrics`.
        text: String,
    },
    /// Resume accepted: the client reconciles against these totals and
    /// retransmits every batch newer than `last_seq` (rev 1.2).
    ResumeAck {
        /// Server-assigned session id (unchanged across resumes).
        session: u64,
        /// Sequence number of the last applied batch, or `None` if the
        /// session has not applied any batch yet.
        last_seq: Option<u32>,
        /// Session-lifetime applied batches.
        batches: u64,
        /// Session-lifetime records.
        records: u64,
        /// Session-lifetime mispredictions.
        mispredicts: u64,
        /// Session-lifetime low-confidence records.
        low_confidence: u64,
        /// Largest frame body the server accepts, bytes.
        max_frame: u32,
        /// Batches buffered per session before the reader blocks.
        max_inflight: u32,
    },
    /// Park accepted: the session's checkpoint reached durable storage
    /// (or the in-memory park on servers without a disk tier) and the
    /// connection closes next (rev 1.3).
    ParkedAck {
        /// The resume token that re-attaches to the parked session.
        token: u64,
    },
    /// The flight recorder's retained events (rev 1.5). Carried as a
    /// `u32`-length blob like [`ServerFrame::MetricsReply`]: dumps
    /// routinely exceed [`MAX_STRING`].
    TraceDumpReply {
        /// Chrome trace-event JSON, as served on `GET /trace`.
        json: String,
    },
    /// Server at session capacity: the connection closes next and the
    /// client should back off for at least the hint (rev 1.2).
    Busy {
        /// Suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// The disk park tier is full: the session could not be persisted.
    /// Mirrors [`ServerFrame::Busy`] — the condition is transient (TTL
    /// sweeps and resumes free pages), so the client should back off
    /// for at least the hint and retry (rev 1.3).
    StoreFull {
        /// Suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Fatal per-connection error; connection closes next.
    Error {
        /// One of the [`code`] constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// Errors produced while decoding a frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The body ended before a field was complete.
    Truncated,
    /// Bytes remained after the last field.
    TrailingBytes(usize),
    /// A `HELLO` payload did not start with `CIRS`.
    BadMagic([u8; 4]),
    /// Unknown frame type byte.
    UnknownFrameType(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// A string field exceeded [`MAX_STRING`].
    StringTooLong(usize),
    /// The embedded packed trace was malformed.
    BadTrace(PackedBytesError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes in frame body"),
            ProtoError::BadMagic(m) => write!(f, "bad hello magic {m:?}, expected \"CIRS\""),
            ProtoError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::BadString => write!(f, "string field is not valid UTF-8"),
            ProtoError::StringTooLong(n) => write!(f, "string field of {n} bytes too long"),
            ProtoError::BadTrace(e) => write!(f, "bad packed trace: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<PackedBytesError> for ProtoError {
    fn from(e: PackedBytesError) -> Self {
        ProtoError::BadTrace(e)
    }
}

/// Longest string field accepted (spec strings and error messages).
pub const MAX_STRING: usize = 4096;

/// Little-endian cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.at < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u16()? as usize;
        if n > MAX_STRING {
            return Err(ProtoError::StringTooLong(n));
        }
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| ProtoError::BadString)
    }

    /// A `u64`-word bitmap for `bits` bits.
    fn bitmap(&mut self, bits: u64) -> Result<Vec<u64>, ProtoError> {
        let words = usize::try_from(bits.div_ceil(64)).map_err(|_| ProtoError::Truncated)?;
        // Bounded by the already-length-checked body, so no alloc guard
        // is needed beyond the take().
        let raw = self.take(words * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
            .collect())
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(MAX_STRING).min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..n]);
}

fn put_bitmap(out: &mut Vec<u8>, words: &[u64]) {
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encodes a client frame body (type byte + payload, no length prefix).
pub fn encode_client(frame: &ClientFrame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        ClientFrame::Hello { version, config } => {
            out.push(frame_type::HELLO);
            out.extend_from_slice(PROTO_MAGIC);
            out.push(*version);
            put_string(&mut out, &config.predictor);
            put_string(&mut out, &config.mechanism);
            put_string(&mut out, &config.index);
            put_string(&mut out, &config.init);
            out.extend_from_slice(&config.threshold.to_le_bytes());
        }
        ClientFrame::Batch { seq, records } => {
            out.push(frame_type::BATCH);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&records.to_bytes());
        }
        ClientFrame::Stats => out.push(frame_type::STATS),
        ClientFrame::Snapshot => out.push(frame_type::SNAPSHOT),
        ClientFrame::Reset => out.push(frame_type::RESET),
        ClientFrame::Goodbye => out.push(frame_type::GOODBYE),
        ClientFrame::Metrics => out.push(frame_type::METRICS),
        ClientFrame::Resume { version, token } => {
            out.push(frame_type::RESUME);
            out.extend_from_slice(PROTO_MAGIC);
            out.push(*version);
            out.extend_from_slice(&token.to_le_bytes());
        }
        ClientFrame::Park => out.push(frame_type::PARK),
        ClientFrame::TraceDump => out.push(frame_type::TRACE_DUMP),
    }
    out
}

/// Decodes a client frame body.
///
/// # Errors
///
/// Returns [`ProtoError`] on any malformed byte; decoding never panics.
pub fn decode_client(body: &[u8]) -> Result<ClientFrame, ProtoError> {
    let mut c = Cursor::new(body);
    let ty = c.u8()?;
    match ty {
        frame_type::HELLO => {
            let magic = c.take(4)?;
            if magic != PROTO_MAGIC {
                let mut m = [0u8; 4];
                m.copy_from_slice(magic);
                return Err(ProtoError::BadMagic(m));
            }
            let version = c.u8()?;
            let config = HelloConfig {
                predictor: c.string()?,
                mechanism: c.string()?,
                index: c.string()?,
                init: c.string()?,
                threshold: c.u64()?,
            };
            c.finish()?;
            Ok(ClientFrame::Hello { version, config })
        }
        frame_type::BATCH => {
            let seq = c.u32()?;
            let records = PackedTrace::from_bytes(c.rest())?;
            Ok(ClientFrame::Batch { seq, records })
        }
        frame_type::STATS => {
            c.finish()?;
            Ok(ClientFrame::Stats)
        }
        frame_type::SNAPSHOT => {
            c.finish()?;
            Ok(ClientFrame::Snapshot)
        }
        frame_type::RESET => {
            c.finish()?;
            Ok(ClientFrame::Reset)
        }
        frame_type::GOODBYE => {
            c.finish()?;
            Ok(ClientFrame::Goodbye)
        }
        frame_type::METRICS => {
            c.finish()?;
            Ok(ClientFrame::Metrics)
        }
        frame_type::RESUME => {
            let magic = c.take(4)?;
            if magic != PROTO_MAGIC {
                let mut m = [0u8; 4];
                m.copy_from_slice(magic);
                return Err(ProtoError::BadMagic(m));
            }
            let version = c.u8()?;
            let token = c.u64()?;
            c.finish()?;
            Ok(ClientFrame::Resume { version, token })
        }
        frame_type::PARK => {
            c.finish()?;
            Ok(ClientFrame::Park)
        }
        frame_type::TRACE_DUMP => {
            c.finish()?;
            Ok(ClientFrame::TraceDump)
        }
        other => Err(ProtoError::UnknownFrameType(other)),
    }
}

/// Encodes a server frame body (type byte + payload, no length prefix).
pub fn encode_server(frame: &ServerFrame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        ServerFrame::HelloAck {
            version,
            session,
            max_frame,
            max_inflight,
            predictor,
            mechanism,
            token,
        } => {
            out.push(frame_type::HELLO_ACK);
            out.push(*version);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&max_frame.to_le_bytes());
            out.extend_from_slice(&max_inflight.to_le_bytes());
            put_string(&mut out, predictor);
            put_string(&mut out, mechanism);
            out.extend_from_slice(&token.to_le_bytes());
        }
        ServerFrame::BatchAck {
            seq,
            records,
            mispredicts,
            low_confidence,
            total_records,
            predicted,
            low,
        } => {
            out.push(frame_type::BATCH_ACK);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&records.to_le_bytes());
            out.extend_from_slice(&mispredicts.to_le_bytes());
            out.extend_from_slice(&low_confidence.to_le_bytes());
            out.extend_from_slice(&total_records.to_le_bytes());
            put_bitmap(&mut out, predicted);
            put_bitmap(&mut out, low);
        }
        ServerFrame::StatsReply(pairs) => {
            out.push(frame_type::STATS_REPLY);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (name, value) in pairs {
                put_string(&mut out, name);
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
        ServerFrame::SnapshotReply {
            branches,
            mispredicts,
            low_confidence,
            cells,
        } => {
            out.push(frame_type::SNAPSHOT_REPLY);
            out.extend_from_slice(&branches.to_le_bytes());
            out.extend_from_slice(&mispredicts.to_le_bytes());
            out.extend_from_slice(&low_confidence.to_le_bytes());
            out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
            for (key, refs, miss) in cells {
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&refs.to_bits().to_le_bytes());
                out.extend_from_slice(&miss.to_bits().to_le_bytes());
            }
        }
        ServerFrame::ResetAck => out.push(frame_type::RESET_ACK),
        ServerFrame::GoodbyeAck => out.push(frame_type::GOODBYE_ACK),
        ServerFrame::MetricsReply { text } => {
            out.push(frame_type::METRICS_REPLY);
            let bytes = text.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        ServerFrame::ResumeAck {
            session,
            last_seq,
            batches,
            records,
            mispredicts,
            low_confidence,
            max_frame,
            max_inflight,
        } => {
            out.push(frame_type::RESUME_ACK);
            out.extend_from_slice(&session.to_le_bytes());
            out.push(last_seq.is_some() as u8);
            out.extend_from_slice(&last_seq.unwrap_or(0).to_le_bytes());
            out.extend_from_slice(&batches.to_le_bytes());
            out.extend_from_slice(&records.to_le_bytes());
            out.extend_from_slice(&mispredicts.to_le_bytes());
            out.extend_from_slice(&low_confidence.to_le_bytes());
            out.extend_from_slice(&max_frame.to_le_bytes());
            out.extend_from_slice(&max_inflight.to_le_bytes());
        }
        ServerFrame::ParkedAck { token } => {
            out.push(frame_type::PARKED_ACK);
            out.extend_from_slice(&token.to_le_bytes());
        }
        ServerFrame::TraceDumpReply { json } => {
            out.push(frame_type::TRACE_DUMP_REPLY);
            let bytes = json.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        ServerFrame::Busy {
            retry_after_ms,
            message,
        } => {
            out.push(frame_type::BUSY);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            put_string(&mut out, message);
        }
        ServerFrame::StoreFull {
            retry_after_ms,
            message,
        } => {
            out.push(frame_type::STORE_FULL);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            put_string(&mut out, message);
        }
        ServerFrame::Error { code, message } => {
            out.push(frame_type::ERROR);
            out.extend_from_slice(&code.to_le_bytes());
            put_string(&mut out, message);
        }
    }
    out
}

/// Decodes a server frame body.
///
/// The batch-ack bitmaps' lengths are implied by the record count, so the
/// decoder needs no out-of-band state.
///
/// # Errors
///
/// Returns [`ProtoError`] on any malformed byte; decoding never panics.
pub fn decode_server(body: &[u8]) -> Result<ServerFrame, ProtoError> {
    let mut c = Cursor::new(body);
    let ty = c.u8()?;
    let frame = match ty {
        frame_type::HELLO_ACK => ServerFrame::HelloAck {
            version: c.u8()?,
            session: c.u64()?,
            max_frame: c.u32()?,
            max_inflight: c.u32()?,
            predictor: c.string()?,
            mechanism: c.string()?,
            token: c.u64()?,
        },
        frame_type::BATCH_ACK => {
            let seq = c.u32()?;
            let records = c.u64()?;
            let mispredicts = c.u64()?;
            let low_confidence = c.u64()?;
            let total_records = c.u64()?;
            let predicted = c.bitmap(records)?;
            let low = c.bitmap(records)?;
            ServerFrame::BatchAck {
                seq,
                records,
                mispredicts,
                low_confidence,
                total_records,
                predicted,
                low,
            }
        }
        frame_type::STATS_REPLY => {
            let n = c.u32()?;
            let mut pairs = Vec::new();
            for _ in 0..n {
                let name = c.string()?;
                let value = c.u64()?;
                pairs.push((name, value));
            }
            ServerFrame::StatsReply(pairs)
        }
        frame_type::SNAPSHOT_REPLY => {
            let branches = c.u64()?;
            let mispredicts = c.u64()?;
            let low_confidence = c.u64()?;
            let n = c.u32()?;
            let mut cells = Vec::new();
            for _ in 0..n {
                let key = c.u64()?;
                let refs = c.f64()?;
                let miss = c.f64()?;
                cells.push((key, refs, miss));
            }
            ServerFrame::SnapshotReply {
                branches,
                mispredicts,
                low_confidence,
                cells,
            }
        }
        frame_type::RESET_ACK => ServerFrame::ResetAck,
        frame_type::GOODBYE_ACK => ServerFrame::GoodbyeAck,
        frame_type::METRICS_REPLY => {
            let n = c.u32()? as usize;
            let raw = c.take(n)?;
            let text = std::str::from_utf8(raw)
                .map(str::to_owned)
                .map_err(|_| ProtoError::BadString)?;
            ServerFrame::MetricsReply { text }
        }
        frame_type::RESUME_ACK => {
            let session = c.u64()?;
            let has_last = c.u8()? != 0;
            let raw_seq = c.u32()?;
            ServerFrame::ResumeAck {
                session,
                last_seq: has_last.then_some(raw_seq),
                batches: c.u64()?,
                records: c.u64()?,
                mispredicts: c.u64()?,
                low_confidence: c.u64()?,
                max_frame: c.u32()?,
                max_inflight: c.u32()?,
            }
        }
        frame_type::PARKED_ACK => ServerFrame::ParkedAck { token: c.u64()? },
        frame_type::TRACE_DUMP_REPLY => {
            let n = c.u32()? as usize;
            let raw = c.take(n)?;
            let json = std::str::from_utf8(raw)
                .map(str::to_owned)
                .map_err(|_| ProtoError::BadString)?;
            ServerFrame::TraceDumpReply { json }
        }
        frame_type::BUSY => ServerFrame::Busy {
            retry_after_ms: c.u32()?,
            message: c.string()?,
        },
        frame_type::STORE_FULL => ServerFrame::StoreFull {
            retry_after_ms: c.u32()?,
            message: c.string()?,
        },
        frame_type::ERROR => ServerFrame::Error {
            code: c.u16()?,
            message: c.string()?,
        },
        other => return Err(ProtoError::UnknownFrameType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Rebuilds a [`BucketStats`] from snapshot cells. Counts cross the wire
/// as raw `f64` bits, so the result is bit-identical to the server's
/// accumulator.
///
/// # Errors
///
/// Returns a message if any cell carries non-finite or inconsistent
/// counts (which a well-behaved server never sends).
pub fn stats_from_cells(cells: &[SnapshotCell]) -> Result<BucketStats, String> {
    let mut stats = BucketStats::new();
    for &(key, refs, miss) in cells {
        if !(refs.is_finite() && miss.is_finite() && (0.0..=refs).contains(&miss)) {
            return Err(format!("invalid snapshot cell: key {key} refs {refs} miss {miss}"));
        }
        stats.merge_cell(key, refs, miss);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_trace::BranchRecord;

    fn sample_trace() -> PackedTrace {
        (0..130u64)
            .map(|i| BranchRecord::new(0x1000 + 8 * (i % 5), i % 3 == 0))
            .collect()
    }

    #[test]
    fn client_frames_roundtrip() {
        let frames = [
            ClientFrame::Hello {
                version: PROTO_VERSION,
                config: HelloConfig::default(),
            },
            ClientFrame::Batch {
                seq: 42,
                records: sample_trace(),
            },
            ClientFrame::Stats,
            ClientFrame::Snapshot,
            ClientFrame::Reset,
            ClientFrame::Goodbye,
            ClientFrame::Metrics,
            ClientFrame::Resume {
                version: PROTO_VERSION,
                token: 0xfeed_face_cafe_f00d,
            },
            ClientFrame::Park,
            ClientFrame::TraceDump,
        ];
        for f in frames {
            let bytes = encode_client(&f);
            assert_eq!(decode_client(&bytes).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn server_frames_roundtrip() {
        let frames = [
            ServerFrame::HelloAck {
                version: PROTO_VERSION,
                session: 7,
                max_frame: 1 << 20,
                max_inflight: 8,
                predictor: "gshare(16,16)".into(),
                mechanism: "resetting(16)".into(),
                token: 0x0123_4567_89ab_cdef,
            },
            ServerFrame::BatchAck {
                seq: 3,
                records: 130,
                mispredicts: 17,
                low_confidence: 40,
                total_records: 1300,
                predicted: vec![0xdead_beef, 0x3, 0x1],
                low: vec![0x0, 0xffff_ffff_ffff_ffff, 0x2],
            },
            ServerFrame::StatsReply(vec![("frames_in".into(), 12), ("records".into(), 99)]),
            ServerFrame::SnapshotReply {
                branches: 1000,
                mispredicts: 80,
                low_confidence: 200,
                cells: vec![(0, 10.0, 1.0), (5, 990.0, 79.0)],
            },
            ServerFrame::ResetAck,
            ServerFrame::GoodbyeAck,
            // Exposition text far beyond MAX_STRING must survive intact.
            ServerFrame::MetricsReply {
                text: "# TYPE cira_x counter\n".repeat(400),
            },
            ServerFrame::ResumeAck {
                session: 7,
                last_seq: Some(41),
                batches: 42,
                records: 344_064,
                mispredicts: 1234,
                low_confidence: 5678,
                max_frame: 1 << 20,
                max_inflight: 8,
            },
            ServerFrame::ResumeAck {
                session: 9,
                last_seq: None,
                batches: 0,
                records: 0,
                mispredicts: 0,
                low_confidence: 0,
                max_frame: 1 << 20,
                max_inflight: 8,
            },
            ServerFrame::ParkedAck {
                token: 0xfeed_face_cafe_f00d,
            },
            // Trace dumps share the u32-blob shape with METRICS_REPLY.
            ServerFrame::TraceDumpReply {
                json: format!("{{\"traceEvents\":[{}]}}", "{},".repeat(200) + "{}"),
            },
            ServerFrame::Busy {
                retry_after_ms: 500,
                message: "at session capacity".into(),
            },
            ServerFrame::StoreFull {
                retry_after_ms: 750,
                message: "disk park tier full".into(),
            },
            ServerFrame::Error {
                code: code::BAD_SPEC,
                message: "invalid predictor spec".into(),
            },
            ServerFrame::Error {
                code: code::STORE_FULL,
                message: "park not persisted".into(),
            },
        ];
        for f in frames {
            let bytes = encode_server(&f);
            assert_eq!(decode_server(&bytes).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn garbage_rejected_not_panicked() {
        assert!(matches!(decode_client(&[]), Err(ProtoError::Truncated)));
        assert!(matches!(
            decode_client(&[0x55, 1, 2, 3]),
            Err(ProtoError::UnknownFrameType(0x55))
        ));
        // HELLO with the wrong magic.
        let mut hello = encode_client(&ClientFrame::Hello {
            version: 1,
            config: HelloConfig::default(),
        });
        hello[1] = b'X';
        assert!(matches!(decode_client(&hello), Err(ProtoError::BadMagic(_))));
        // Truncations at every offset decode to an error, never panic.
        let batch = encode_client(&ClientFrame::Batch {
            seq: 1,
            records: sample_trace(),
        });
        for cut in 0..batch.len() {
            assert!(decode_client(&batch[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes are rejected.
        let mut stats = encode_client(&ClientFrame::Stats);
        stats.push(0);
        assert!(matches!(
            decode_client(&stats),
            Err(ProtoError::TrailingBytes(1))
        ));
        // RESUME carries the same magic guard as HELLO, and truncations
        // at every offset decode to an error.
        let mut resume = encode_client(&ClientFrame::Resume {
            version: 1,
            token: 99,
        });
        for cut in 0..resume.len() {
            assert!(decode_client(&resume[..cut]).is_err(), "cut {cut}");
        }
        resume[1] = b'X';
        assert!(matches!(
            decode_client(&resume),
            Err(ProtoError::BadMagic(_))
        ));
        let ack = encode_server(&ServerFrame::ResumeAck {
            session: 1,
            last_seq: Some(2),
            batches: 3,
            records: 4,
            mispredicts: 5,
            low_confidence: 6,
            max_frame: 7,
            max_inflight: 8,
        });
        for cut in 0..ack.len() {
            assert!(decode_server(&ack[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn snapshot_cells_rebuild_bucket_stats() {
        let mut stats = BucketStats::new();
        for i in 0..100 {
            stats.observe(i % 9, i % 4 == 0);
        }
        let mut cells: Vec<SnapshotCell> = stats
            .iter()
            .map(|(k, c)| (k, c.refs, c.mispredicts))
            .collect();
        cells.sort_unstable_by_key(|&(k, _, _)| k);
        let back = stats_from_cells(&cells).unwrap();
        assert_eq!(back, stats);
        assert!(stats_from_cells(&[(0, 1.0, 2.0)]).is_err());
        assert!(stats_from_cells(&[(0, f64::NAN, 0.0)]).is_err());
    }
}
