//! Length-prefixed framing over a byte stream.
//!
//! A frame on the wire is `u32` little-endian body length followed by the
//! body ([`crate::proto`] encodes bodies as type byte + payload). The
//! reader enforces a maximum body length *before* allocating — a hostile
//! length prefix costs nothing — and distinguishes three non-frame
//! outcomes so the server's per-connection loop can react precisely:
//!
//! * [`ReadOutcome::Eof`] — the peer closed cleanly at a frame boundary;
//! * [`ReadOutcome::Idle`] — a socket read timed out with **no** bytes of
//!   the next frame read yet (the server uses this tick to poll its
//!   shutdown token without dropping the connection);
//! * [`FrameError::Stalled`] — the peer went silent *mid-frame* for more
//!   than `stall_ticks` consecutive timeouts (a slow-loris guard).

use std::fmt;
use std::io::{self, Read, Write};

/// Default largest accepted frame body, bytes (8 MiB ≈ 2M records).
pub const DEFAULT_MAX_FRAME: u32 = 8 << 20;

/// Result of trying to read one frame.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Read timeout before any byte of the next frame arrived.
    Idle,
}

/// Errors raised by the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The declared body length exceeds the maximum.
    Oversized {
        /// Declared length.
        len: u32,
        /// Accepted maximum.
        max: u32,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// The peer stalled mid-frame past the tick budget.
    Stalled,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Stalled => write!(f, "peer stalled mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fills `buf` completely. `started` says whether earlier bytes of this
/// frame were already consumed (controls Eof-vs-Truncated and whether a
/// timeout may surface as `Idle`). `ticks` is the remaining mid-frame
/// timeout budget.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
    ticks: &mut u32,
) -> Result<Option<()>, FrameError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return if started || at > 0 {
                    Err(FrameError::Truncated)
                } else {
                    Ok(None) // clean EOF
                };
            }
            Ok(n) => {
                at += n;
                started = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if !started && at == 0 {
                    return Err(FrameError::Io(e)); // surfaced as Idle above
                }
                if *ticks == 0 {
                    return Err(FrameError::Stalled);
                }
                *ticks -= 1;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(()))
}

/// Reads one frame. The reader's socket read-timeout (if any) becomes the
/// tick: a timeout before the first byte yields [`ReadOutcome::Idle`], and
/// more than `stall_ticks` consecutive timeouts mid-frame yield
/// [`FrameError::Stalled`].
///
/// # Errors
///
/// [`FrameError::Oversized`] for a length prefix above `max_frame` (the
/// body is *not* read); [`FrameError::Truncated`] for EOF mid-frame; I/O
/// errors otherwise.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: u32,
    stall_ticks: u32,
) -> Result<ReadOutcome, FrameError> {
    let mut ticks = stall_ticks;
    let mut header = [0u8; 4];
    match fill(r, &mut header, false, &mut ticks) {
        Ok(None) => return Ok(ReadOutcome::Eof),
        Ok(Some(())) => {}
        Err(FrameError::Io(e)) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header);
    if len > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    match fill(r, &mut body, true, &mut ticks) {
        Ok(Some(())) => Ok(ReadOutcome::Frame(body)),
        Ok(None) => unreachable!("started frames report Truncated at EOF"),
        Err(FrameError::Io(e)) if is_timeout(&e) => Err(FrameError::Stalled),
        Err(e) => Err(e),
    }
}

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Propagates I/O errors (including write timeouts) from the writer.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(bytes: &[u8], max: u32) -> Result<ReadOutcome, FrameError> {
        read_frame(&mut &bytes[..], max, 4)
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r, 1024, 4).unwrap() {
            ReadOutcome::Frame(b) => assert_eq!(b, b"hello"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, 1024, 4).unwrap() {
            ReadOutcome::Frame(b) => assert!(b.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_frame(&mut r, 1024, 4).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn oversized_rejected_without_reading_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        // No body at all: the guard must fire on the prefix alone.
        assert!(matches!(
            read_one(&buf, 1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        // EOF inside the header.
        assert!(matches!(read_one(&[1, 0], 1024), Err(FrameError::Truncated)));
        // EOF inside the body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        assert!(matches!(read_one(&buf, 1024), Err(FrameError::Truncated)));
    }

    /// Reader that yields timeouts interleaved with data.
    struct Stutter {
        data: Vec<u8>,
        at: usize,
        timeouts_first: usize,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeouts_first > 0 {
                self.timeouts_first -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.at >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn idle_before_first_byte() {
        let mut r = Stutter {
            data: Vec::new(),
            at: 0,
            timeouts_first: 1,
        };
        assert!(matches!(
            read_frame(&mut r, 1024, 4).unwrap(),
            ReadOutcome::Idle
        ));
    }

    #[test]
    fn stall_budget_spent_mid_frame() {
        // A peer that sends one header byte then goes silent forever must
        // be cut off once the tick budget is spent — not hang.
        struct OneByteThenSilence {
            sent: bool,
        }
        impl Read for OneByteThenSilence {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if !self.sent {
                    self.sent = true;
                    buf[0] = 2;
                    Ok(1)
                } else {
                    Err(io::Error::new(io::ErrorKind::TimedOut, "tick"))
                }
            }
        }
        let mut stall = OneByteThenSilence { sent: false };
        assert!(matches!(
            read_frame(&mut stall, 1024, 3),
            Err(FrameError::Stalled)
        ));
    }

    #[test]
    fn timeouts_within_budget_still_complete() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"xy").unwrap();
        // One tick before the first byte would be Idle, so stutter only
        // after the header byte count begins: start with data immediately,
        // but inject ticks between every byte via a wrapping reader.
        struct EveryOtherTick {
            data: Vec<u8>,
            at: usize,
            tick: bool,
        }
        impl Read for EveryOtherTick {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at > 0 && !self.tick {
                    self.tick = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                }
                self.tick = false;
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let mut r = EveryOtherTick {
            data: buf,
            at: 0,
            tick: false,
        };
        assert!(matches!(
            read_frame(&mut r, 1024, 16).unwrap(),
            ReadOutcome::Frame(b) if b == b"xy"
        ));
    }
}
