//! Length-prefixed framing over a byte stream.
//!
//! A frame on the wire is `u32` little-endian body length followed by the
//! body ([`crate::proto`] encodes bodies as type byte + payload). The
//! reader enforces a maximum body length *before* allocating — a hostile
//! length prefix costs nothing — and distinguishes three non-frame
//! outcomes so the server's per-connection loop can react precisely:
//!
//! * [`ReadOutcome::Eof`] — the peer closed cleanly at a frame boundary;
//! * [`ReadOutcome::Idle`] — a socket read timed out with **no** bytes of
//!   the next frame read yet (the server uses this tick to poll its
//!   shutdown token without dropping the connection);
//! * [`FrameError::Stalled`] — the peer went silent *mid-frame* for more
//!   than `stall_ticks` consecutive timeouts (a slow-loris guard).

use std::fmt;
use std::io::{self, Read, Write};

/// Default largest accepted frame body, bytes (8 MiB ≈ 2M records).
pub const DEFAULT_MAX_FRAME: u32 = 8 << 20;

/// Result of trying to read one frame.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Read timeout before any byte of the next frame arrived.
    Idle,
}

/// Errors raised by the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The declared body length exceeds the maximum.
    Oversized {
        /// Declared length.
        len: u32,
        /// Accepted maximum.
        max: u32,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// The peer stalled mid-frame past the tick budget.
    Stalled,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Stalled => write!(f, "peer stalled mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fills `buf` completely. `started` says whether earlier bytes of this
/// frame were already consumed (controls Eof-vs-Truncated and whether a
/// timeout may surface as `Idle`). `ticks` is the remaining mid-frame
/// timeout budget.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
    ticks: &mut u32,
) -> Result<Option<()>, FrameError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return if started || at > 0 {
                    Err(FrameError::Truncated)
                } else {
                    Ok(None) // clean EOF
                };
            }
            Ok(n) => {
                at += n;
                started = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if !started && at == 0 {
                    return Err(FrameError::Io(e)); // surfaced as Idle above
                }
                if *ticks == 0 {
                    return Err(FrameError::Stalled);
                }
                *ticks -= 1;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(()))
}

/// Reads one frame. The reader's socket read-timeout (if any) becomes the
/// tick: a timeout before the first byte yields [`ReadOutcome::Idle`], and
/// more than `stall_ticks` consecutive timeouts mid-frame yield
/// [`FrameError::Stalled`].
///
/// # Errors
///
/// [`FrameError::Oversized`] for a length prefix above `max_frame` (the
/// body is *not* read); [`FrameError::Truncated`] for EOF mid-frame; I/O
/// errors otherwise.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: u32,
    stall_ticks: u32,
) -> Result<ReadOutcome, FrameError> {
    let mut ticks = stall_ticks;
    let mut header = [0u8; 4];
    match fill(r, &mut header, false, &mut ticks) {
        Ok(None) => return Ok(ReadOutcome::Eof),
        Ok(Some(())) => {}
        Err(FrameError::Io(e)) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header);
    if len > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    match fill(r, &mut body, true, &mut ticks) {
        Ok(Some(())) => Ok(ReadOutcome::Frame(body)),
        Ok(None) => unreachable!("started frames report Truncated at EOF"),
        Err(FrameError::Io(e)) if is_timeout(&e) => Err(FrameError::Stalled),
        Err(e) => Err(e),
    }
}

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Propagates I/O errors (including write timeouts) from the writer.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// How many bytes one [`FrameBuffer::fill_from`] call will read at most,
/// so a firehosing peer cannot starve the other connections on its
/// shard (level-triggered epoll re-reports the fd on the next wait).
const MAX_INGEST_PER_CALL: usize = 256 << 10;

/// What one [`FrameBuffer::fill_from`] call observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// `read` would block: everything available was consumed.
    Drained {
        /// Bytes consumed by this call.
        bytes: usize,
    },
    /// The ingest cap was hit with the socket possibly still readable.
    More {
        /// Bytes consumed by this call.
        bytes: usize,
    },
    /// The peer closed its write half (after `bytes` final bytes).
    Eof {
        /// Bytes consumed by this call.
        bytes: usize,
    },
}

/// An incremental frame parser over a per-connection byte buffer — the
/// nonblocking counterpart of [`read_frame`].
///
/// The event loop [`FrameBuffer::fill_from`]s the socket whenever epoll
/// reports it readable, then pulls complete frames out with
/// [`FrameBuffer::next_frame`]. Bytes of an incomplete frame stay
/// buffered across calls; the oversized guard fires on the 4-byte
/// length prefix alone, before any body accumulates, exactly like the
/// blocking reader.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it dominates the buffer.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the buffer holds a partial frame — bytes have arrived but
    /// [`FrameBuffer::next_frame`] cannot produce one yet. Drives the
    /// slow-loris stall clock: silence is only hostile mid-frame.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Reads from `r` (a nonblocking source) until it would block, hits
    /// EOF, or the per-call cap is reached.
    ///
    /// # Errors
    ///
    /// Real I/O errors; `WouldBlock` and `Interrupted` are absorbed.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<Ingest> {
        let mut total = 0usize;
        while total < MAX_INGEST_PER_CALL {
            // Grow in 16 KiB steps; error paths shrink back to old_len.
            let old_len = self.buf.len();
            self.buf.resize(old_len + (16 << 10), 0);
            let n = match r.read(&mut self.buf[old_len..]) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.buf.truncate(old_len);
                    continue;
                }
                Err(e) if is_timeout(&e) => {
                    self.buf.truncate(old_len);
                    return Ok(Ingest::Drained { bytes: total });
                }
                Err(e) => {
                    self.buf.truncate(old_len);
                    return Err(e);
                }
            };
            self.buf.truncate(old_len + n);
            if n == 0 {
                return Ok(Ingest::Eof { bytes: total });
            }
            total += n;
        }
        Ok(Ingest::More { bytes: total })
    }

    /// Extracts the next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] as soon as a length prefix above
    /// `max_frame` is visible (the body is never waited for).
    pub fn next_frame(&mut self, max_frame: u32) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = self.buffered();
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes checked");
        let len = u32::from_le_bytes(header);
        if len > max_frame {
            return Err(FrameError::Oversized {
                len,
                max: max_frame,
            });
        }
        let need = 4 + len as usize;
        if avail < need {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.start + 4..self.start + need].to_vec();
        self.start += need;
        self.compact();
        Ok(Some(body))
    }

    /// Drops the consumed prefix once it outweighs the live bytes, so
    /// the buffer never grows without bound on a long-lived connection.
    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 32 << 10) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(bytes: &[u8], max: u32) -> Result<ReadOutcome, FrameError> {
        read_frame(&mut &bytes[..], max, 4)
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r, 1024, 4).unwrap() {
            ReadOutcome::Frame(b) => assert_eq!(b, b"hello"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, 1024, 4).unwrap() {
            ReadOutcome::Frame(b) => assert!(b.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_frame(&mut r, 1024, 4).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn oversized_rejected_without_reading_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        // No body at all: the guard must fire on the prefix alone.
        assert!(matches!(
            read_one(&buf, 1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        // EOF inside the header.
        assert!(matches!(read_one(&[1, 0], 1024), Err(FrameError::Truncated)));
        // EOF inside the body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        assert!(matches!(read_one(&buf, 1024), Err(FrameError::Truncated)));
    }

    /// Reader that yields timeouts interleaved with data.
    struct Stutter {
        data: Vec<u8>,
        at: usize,
        timeouts_first: usize,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeouts_first > 0 {
                self.timeouts_first -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.at >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn idle_before_first_byte() {
        let mut r = Stutter {
            data: Vec::new(),
            at: 0,
            timeouts_first: 1,
        };
        assert!(matches!(
            read_frame(&mut r, 1024, 4).unwrap(),
            ReadOutcome::Idle
        ));
    }

    #[test]
    fn stall_budget_spent_mid_frame() {
        // A peer that sends one header byte then goes silent forever must
        // be cut off once the tick budget is spent — not hang.
        struct OneByteThenSilence {
            sent: bool,
        }
        impl Read for OneByteThenSilence {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if !self.sent {
                    self.sent = true;
                    buf[0] = 2;
                    Ok(1)
                } else {
                    Err(io::Error::new(io::ErrorKind::TimedOut, "tick"))
                }
            }
        }
        let mut stall = OneByteThenSilence { sent: false };
        assert!(matches!(
            read_frame(&mut stall, 1024, 3),
            Err(FrameError::Stalled)
        ));
    }

    #[test]
    fn frame_buffer_reassembles_byte_dribble() {
        // Two frames delivered one byte at a time must reassemble
        // exactly, with no frame visible before its last byte.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            match fb.fill_from(&mut &[b][..]).unwrap() {
                Ingest::Eof { bytes: 1 } => {}
                other => panic!("byte {i}: {other:?}"),
            }
            while let Some(body) = fb.next_frame(1024).unwrap() {
                got.push(body);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new()]);
        assert!(!fb.mid_frame(), "all bytes consumed");
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_mid_frame_tracks_partial_bytes() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        let mut fb = FrameBuffer::new();
        fb.fill_from(&mut &wire[..3]).unwrap();
        assert!(fb.next_frame(1024).unwrap().is_none());
        assert!(fb.mid_frame(), "3 header bytes are a partial frame");
        fb.fill_from(&mut &wire[3..]).unwrap();
        assert_eq!(fb.next_frame(1024).unwrap().unwrap(), b"abcdef");
        assert!(!fb.mid_frame());
    }

    #[test]
    fn frame_buffer_oversized_fires_on_prefix_alone() {
        let mut fb = FrameBuffer::new();
        fb.fill_from(&mut &u32::MAX.to_le_bytes()[..]).unwrap();
        assert!(matches!(
            fb.next_frame(1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn frame_buffer_many_frames_one_ingest() {
        let mut wire = Vec::new();
        for i in 0..100u32 {
            write_frame(&mut wire, &i.to_le_bytes()).unwrap();
        }
        let mut fb = FrameBuffer::new();
        let Ingest::Eof { bytes } = fb.fill_from(&mut &wire[..]).unwrap() else {
            panic!("slice reader ends in Eof");
        };
        assert_eq!(bytes, wire.len());
        for i in 0..100u32 {
            assert_eq!(fb.next_frame(64).unwrap().unwrap(), i.to_le_bytes());
        }
        assert!(fb.next_frame(64).unwrap().is_none());
    }

    #[test]
    fn frame_buffer_absorbs_wouldblock() {
        struct Chunky {
            chunks: Vec<Vec<u8>>,
        }
        impl Read for Chunky {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.chunks.pop() {
                    Some(c) => {
                        buf[..c.len()].copy_from_slice(&c);
                        Ok(c.len())
                    }
                    None => Err(io::Error::new(io::ErrorKind::WouldBlock, "empty")),
                }
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"xyz").unwrap();
        let (a, b) = wire.split_at(2);
        let mut r = Chunky {
            chunks: vec![b.to_vec(), a.to_vec()], // popped back-to-front
        };
        let mut fb = FrameBuffer::new();
        let Ingest::Drained { bytes } = fb.fill_from(&mut r).unwrap() else {
            panic!("WouldBlock surfaces as Drained");
        };
        assert_eq!(bytes, wire.len());
        assert_eq!(fb.next_frame(64).unwrap().unwrap(), b"xyz");
    }

    #[test]
    fn timeouts_within_budget_still_complete() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"xy").unwrap();
        // One tick before the first byte would be Idle, so stutter only
        // after the header byte count begins: start with data immediately,
        // but inject ticks between every byte via a wrapping reader.
        struct EveryOtherTick {
            data: Vec<u8>,
            at: usize,
            tick: bool,
        }
        impl Read for EveryOtherTick {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at > 0 && !self.tick {
                    self.tick = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                }
                self.tick = false;
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let mut r = EveryOtherTick {
            data: buf,
            at: 0,
            tick: false,
        };
        assert!(matches!(
            read_frame(&mut r, 1024, 16).unwrap(),
            ReadOutcome::Frame(b) if b == b"xy"
        ));
    }
}
