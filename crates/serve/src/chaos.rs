//! A deterministic fault-injecting TCP proxy for resilience tests.
//!
//! [`ChaosProxy`] sits between a [`crate::client::Client`] and a real
//! server, forwarding bytes while injecting faults from a fixed
//! *schedule*: each accepted connection consumes the next [`FaultSpec`]
//! in order (connections beyond the schedule pass through clean). A spec
//! can kill the connection after an exact number of bytes in either
//! direction — slicing frames mid-header, mid-payload, wherever the
//! offset lands — and can shred writes into tiny chunks with delays, so
//! the peer sees frames arrive a few bytes at a time with stalls in
//! between.
//!
//! Schedules are plain data, and [`schedule_from_seed`] derives one from
//! a seed with a self-contained xorshift PRNG, so a chaos test is fully
//! reproducible from a single integer. Nothing here is probabilistic at
//! run time: the same schedule against the same deterministic server and
//! client produces the same byte trace.
//!
//! The proxy is test infrastructure, but it lives in the library (not
//! `tests/`) so integration tests, benches, and future soak tools share
//! one implementation. It is std-only, like the rest of the crate.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Faults to inject into one proxied connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Kill the connection after forwarding this many client→server
    /// bytes (the killing byte is *not* forwarded in full if the limit
    /// lands mid-read).
    pub kill_c2s_after: Option<u64>,
    /// Kill the connection after forwarding this many server→client
    /// bytes.
    pub kill_s2c_after: Option<u64>,
    /// Forward in chunks of at most this many bytes, exercising
    /// short-read handling (None = forward reads whole).
    pub chunk: Option<usize>,
    /// Sleep this long before each forwarded chunk, simulating a stalled
    /// link.
    pub delay: Duration,
    /// After forwarding this many server→client bytes, stop forwarding
    /// for [`FaultSpec::stall`] — one long freeze mid-stream, without
    /// closing anything. Long enough a stall makes the client abandon
    /// the connection and resume elsewhere while this one still looks
    /// alive to the server.
    pub stall_after_s2c: Option<u64>,
    /// Length of the one-shot freeze at `stall_after_s2c`.
    pub stall: Duration,
}

impl FaultSpec {
    /// No faults: forward everything verbatim.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Kill after `n` client→server bytes.
    pub fn kill_c2s(n: u64) -> Self {
        Self {
            kill_c2s_after: Some(n),
            ..Self::default()
        }
    }

    /// Kill after `n` server→client bytes.
    pub fn kill_s2c(n: u64) -> Self {
        Self {
            kill_s2c_after: Some(n),
            ..Self::default()
        }
    }

    /// Forward in chunks of at most `n` bytes.
    #[must_use]
    pub fn with_chunk(mut self, n: usize) -> Self {
        self.chunk = Some(n.max(1));
        self
    }

    /// Sleep `delay` before each forwarded chunk.
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Freeze the server→client direction once, for `stall`, after `n`
    /// bytes have been forwarded.
    #[must_use]
    pub fn with_stall_s2c(mut self, n: u64, stall: Duration) -> Self {
        self.stall_after_s2c = Some(n);
        self.stall = stall;
        self
    }
}

/// One xorshift64 step (never returns the all-zero state).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    if x == 0 {
        x = 0x243f_6a88_85a3_08d3;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Derives a reproducible schedule of `faults` kill specs from `seed`.
///
/// Each spec kills one direction (chosen pseudo-randomly) at a byte
/// offset in `[24, 4120)` — early enough to hit handshakes, late enough
/// to land mid-`BATCH` — and sometimes adds chunking (1–16 bytes) and
/// per-chunk delays (up to ~24 ms). Equal seeds give equal schedules.
pub fn schedule_from_seed(seed: u64, faults: usize) -> Vec<FaultSpec> {
    let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..faults)
        .map(|_| {
            let offset = 24 + xorshift64(&mut rng) % 4096;
            let mut spec = if xorshift64(&mut rng).is_multiple_of(2) {
                FaultSpec::kill_c2s(offset)
            } else {
                FaultSpec::kill_s2c(offset)
            };
            if xorshift64(&mut rng).is_multiple_of(2) {
                spec = spec.with_chunk(1 + (xorshift64(&mut rng) % 16) as usize);
            }
            if xorshift64(&mut rng).is_multiple_of(4) {
                spec = spec.with_delay(Duration::from_millis(xorshift64(&mut rng) % 25));
            }
            spec
        })
        .collect()
}

/// A running fault-injecting proxy; see the [module docs](self).
#[derive(Debug)]
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    kills: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral local port, forwarding every
    /// accepted connection to `upstream`. The nth connection gets the
    /// nth entry of `schedule`; later connections pass through clean.
    ///
    /// # Errors
    ///
    /// Returns the error if the listening socket cannot be bound.
    pub fn start(upstream: &str, schedule: Vec<FaultSpec>) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let kills = Arc::new(AtomicU64::new(0));
        let upstream = upstream.to_owned();
        let schedule = Arc::new(Mutex::new(schedule));
        let mut next = 0usize;

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let kills = Arc::clone(&kills);
            thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let spec = {
                                let sched = schedule.lock().unwrap();
                                let s = sched.get(next).copied().unwrap_or_default();
                                next += 1;
                                s
                            };
                            connections.fetch_add(1, Ordering::Relaxed);
                            match TcpStream::connect(&upstream) {
                                Ok(server) => {
                                    pumps.extend(spawn_pumps(client, server, spec, &kills))
                                }
                                Err(_) => drop(client),
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
                for p in pumps {
                    let _ = p.join();
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
            kills,
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections killed by a fault so far.
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept thread (which in turn joins
    /// the per-connection pumps).
    pub fn shutdown_and_join(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns the two forwarding threads for one proxied connection.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    spec: FaultSpec,
    kills: &Arc<AtomicU64>,
) -> Vec<JoinHandle<()>> {
    // Short read timeouts keep pump threads from outliving the test when
    // one side goes quiet without closing.
    let _ = client.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let clone = |s: &TcpStream| s.try_clone().expect("clone proxied stream");
    let c2s = Pump {
        from: clone(&client),
        to: clone(&server),
        other: (clone(&client), clone(&server)),
        kill_after: spec.kill_c2s_after,
        chunk: spec.chunk,
        delay: spec.delay,
        stall_after: None, // stalls are server→client only
        stall: Duration::ZERO,
        kills: Arc::clone(kills),
    };
    let s2c = Pump {
        from: server,
        to: clone(&client),
        other: (client, clone(&c2s.other.1)),
        kill_after: spec.kill_s2c_after,
        chunk: spec.chunk,
        delay: spec.delay,
        stall_after: spec.stall_after_s2c,
        stall: spec.stall,
        kills: Arc::clone(kills),
    };
    vec![thread::spawn(|| c2s.run()), thread::spawn(|| s2c.run())]
}

/// One direction of byte forwarding with optional faults.
struct Pump {
    from: TcpStream,
    to: TcpStream,
    /// Both streams, for tearing the whole connection down on a kill.
    other: (TcpStream, TcpStream),
    kill_after: Option<u64>,
    chunk: Option<usize>,
    delay: Duration,
    /// One-shot freeze threshold; cleared after it fires.
    stall_after: Option<u64>,
    stall: Duration,
    kills: Arc<AtomicU64>,
}

impl Pump {
    fn run(mut self) {
        let mut buf = [0u8; 4096];
        let mut forwarded = 0u64;
        loop {
            let n = match self.from.read(&mut buf) {
                Ok(0) => break, // peer closed: propagate EOF
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            };
            // One-shot mid-stream freeze once the threshold is crossed.
            if let Some(limit) = self.stall_after {
                if forwarded >= limit {
                    thread::sleep(self.stall);
                    self.stall_after = None;
                }
            }
            // Truncate to the kill offset, forward, then sever.
            let (n, kill_now) = match self.kill_after {
                Some(limit) if forwarded + n as u64 >= limit => {
                    ((limit - forwarded) as usize, true)
                }
                _ => (n, false),
            };
            if self.forward(&buf[..n]).is_err() {
                break;
            }
            forwarded += n as u64;
            if kill_now {
                self.kills.fetch_add(1, Ordering::Relaxed);
                let _ = self.other.0.shutdown(Shutdown::Both);
                let _ = self.other.1.shutdown(Shutdown::Both);
                return;
            }
        }
        // EOF or error: drop the whole proxied connection, not just this
        // direction — the CIRS client treats a half-open socket as a
        // stall, and a clean teardown is the realistic failure mode.
        let _ = self.other.0.shutdown(Shutdown::Both);
        let _ = self.other.1.shutdown(Shutdown::Both);
    }

    fn forward(&mut self, mut data: &[u8]) -> io::Result<()> {
        let chunk = self.chunk.unwrap_or(usize::MAX);
        while !data.is_empty() {
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            let n = data.len().min(chunk);
            self.to.write_all(&data[..n])?;
            self.to.flush()?;
            data = &data[n..];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = schedule_from_seed(7, 8);
        let b = schedule_from_seed(7, 8);
        let c = schedule_from_seed(8, 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.len(), 8);
        for spec in &a {
            let kills = spec.kill_c2s_after.or(spec.kill_s2c_after).unwrap();
            assert!((24..4120).contains(&kills));
        }
    }

    #[test]
    fn clean_passthrough_roundtrips_bytes() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        let echo = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let proxy = ChaosProxy::start(&up_addr, vec![FaultSpec::clean()]).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.kills(), 0);
        echo.join().unwrap();
        proxy.shutdown_and_join();
    }

    #[test]
    fn kill_c2s_severs_at_exact_offset() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        let count = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut total = 0usize;
            let mut buf = [0u8; 64];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        let proxy = ChaosProxy::start(&up_addr, vec![FaultSpec::kill_c2s(10)]).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        // 16 bytes in; only 10 must come out the far side.
        let _ = conn.write_all(&[0xAA; 16]);
        assert_eq!(count.join().unwrap(), 10);
        assert_eq!(proxy.kills(), 1);
        proxy.shutdown_and_join();
    }

    #[test]
    fn chunked_forwarding_preserves_content() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap().to_string();
        let collect = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut got = Vec::new();
            let mut buf = [0u8; 64];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                }
            }
            got
        });
        let spec = FaultSpec::clean()
            .with_chunk(3)
            .with_delay(Duration::from_millis(1));
        let proxy = ChaosProxy::start(&up_addr, vec![spec]).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..=63).collect();
        conn.write_all(&payload).unwrap();
        conn.shutdown(Shutdown::Write).unwrap();
        assert_eq!(collect.join().unwrap(), payload);
        proxy.shutdown_and_join();
    }
}
