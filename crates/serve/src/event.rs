//! Readiness notification for the sharded event loop: `epoll(7)` and
//! `eventfd(2)` via minimal FFI declarations.
//!
//! Like the `signal(2)` shim in [`crate::shutdown`], this declares only
//! the symbols it needs — std already links libc on every unix target,
//! so the workspace stays free of registry dependencies. Everything
//! here is Linux-only (`epoll` has no portable equivalent); the server
//! is gated on it at the module level in `lib.rs`.
//!
//! Two primitives:
//!
//! * [`Epoll`] — a level-triggered interest list. Each registration
//!   carries a `u64` token that comes back in the ready [`Event`]s; the
//!   shard uses it to find the connection (or its wake fd, or the
//!   listener) without a reverse map.
//! * [`WakeFd`] — an eventfd the shard parks on inside
//!   [`Epoll::wait`]. Any thread (a pool worker finishing a batch,
//!   another shard handing off a connection, the shutdown path) can
//!   [`WakeFd::wake`] it; the owning shard [`WakeFd::drain`]s it and
//!   checks its inbox.

use std::io;
use std::os::unix::io::RawFd;

/// Readiness: data to read (or a hangup pending in the read stream).
pub const EPOLLIN: u32 = 0x1;
/// Readiness: the socket's send buffer has room again.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x8;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x10;
/// Peer shut down its write half (requested alongside `EPOLLIN` so a
/// half-close wakes the shard even with read interest paused).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One ready event as the kernel reports it.
///
/// x86_64 is the one Linux ABI where this struct is packed; everywhere
/// else it has natural alignment. Getting this wrong silently corrupts
/// the token of every second event, so both layouts are spelled out.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    /// Ready `EPOLL*` bits.
    pub events: u32,
    /// The token given at registration.
    pub token: u64,
}

/// One ready event as the kernel reports it (non-x86_64 layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    /// Ready `EPOLL*` bits.
    pub events: u32,
    /// The token given at registration.
    pub token: u64,
}

impl Event {
    /// The ready bits (reads through the possibly-packed field).
    pub fn ready(&self) -> u32 {
        self.events
    }

    /// The registration token (reads through the possibly-packed field).
    pub fn key(&self) -> u64 {
        self.token
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// A level-triggered epoll interest list.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a fresh epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1(2)` errno as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Replaces `fd`'s interest bits (token may change too).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes `fd` from the interest list. Events already harvested for
    /// it may still be in flight; the shard tolerates unknown tokens.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` errno.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for up to `timeout_ms` (0 polls, negative blocks forever)
    /// and fills `events`, returning how many are ready. A signal
    /// interrupting the wait reads as zero events, not an error.
    ///
    /// # Errors
    ///
    /// The `epoll_wait(2)` errno (except `EINTR`).
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice for the whole call.
        let rc = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// A cross-thread wakeup: an eventfd readable whenever any thread has
/// called [`WakeFd::wake`] since the last [`WakeFd::drain`].
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates a nonblocking eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd(2)` errno.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The raw fd, for registration in an [`Epoll`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable, waking any epoll parked on it. Safe from
    /// any thread; an 8-byte counter write never short-writes.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: `one` is 8 valid bytes; eventfd writes are atomic.
        unsafe { write(self.fd, one.as_ptr(), 8) };
    }

    /// Consumes all pending wakeups (the counter resets to zero).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 valid writable bytes.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and closed exactly once.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wakefd_round_trip_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.fd(), EPOLLIN, 7).unwrap();
        let mut events = [Event::default(); 4];

        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // A wake from another thread surfaces with the right token.
        std::thread::scope(|s| {
            s.spawn(|| wake.wake());
        });
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key(), 7);
        assert_ne!(events[0].ready() & EPOLLIN, 0);

        // Drained, the fd goes quiet again (level-triggered would
        // otherwise re-report it forever).
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Wakes coalesce: many wakes, one drain.
        wake.wake();
        wake.wake();
        wake.wake();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42).unwrap();
        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "idle socket is quiet");

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key(), 42);
        assert_ne!(events[0].ready() & EPOLLIN, 0);

        // Writable interest: a fresh socket's send buffer has room.
        ep.modify(server.as_raw_fd(), EPOLLOUT, 43).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key(), 43, "modify retargets the token");
        assert_ne!(events[0].ready() & EPOLLOUT, 0);

        // Peer close reports a hangup once read interest returns.
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 44).unwrap();
        let mut buf = [0u8; 16];
        let mut s = &server;
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        drop(client);
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(
            events[0].ready() & (EPOLLRDHUP | EPOLLIN | EPOLLHUP),
            0,
            "hangup must be observable"
        );

        ep.del(server.as_raw_fd()).unwrap();
        drop(server);
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
