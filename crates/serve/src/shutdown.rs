//! Graceful-shutdown plumbing: a cloneable trigger token plus optional
//! SIGINT/SIGTERM hooks, and a SIGUSR1 latch for on-demand flight-recorder
//! dumps.
//!
//! The token is the single source of truth: the accept loop polls it
//! between accepts, connection readers poll it on idle ticks, and in-flight
//! batches drain before sockets close. Signal installation uses a minimal
//! `signal(2)` FFI declaration (libc is already linked by std) so the
//! workspace stays free of registry dependencies; the handler only stores
//! an `AtomicBool` — the async-signal-safe minimum — and a watcher thread
//! translates that into a token trigger.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    gate: Mutex<()>,
    wake: Condvar,
}

/// A cloneable, waitable shutdown flag.
///
/// # Examples
///
/// ```
/// use cira_serve::shutdown::ShutdownToken;
///
/// let token = ShutdownToken::new();
/// let t2 = token.clone();
/// assert!(!token.is_triggered());
/// t2.trigger();
/// assert!(token.is_triggered());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShutdownToken {
    inner: Arc<Inner>,
}

impl ShutdownToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the token; all current and future waiters return immediately.
    pub fn trigger(&self) {
        self.inner.flag.store(true, Ordering::Release);
        let _g = self
            .inner
            .gate
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.inner.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// Blocks until the token triggers or `timeout` elapses; returns
    /// whether it is (now) triggered.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        if self.is_triggered() {
            return true;
        }
        let g = self
            .inner
            .gate
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.is_triggered() {
            return true;
        }
        let (_g, _res) = self
            .inner
            .wake
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        self.is_triggered()
    }
}

/// Set by the raw signal handler; drained by the watcher thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Set by the SIGUSR1 handler; drained by [`take_usr1`].
static USR1: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    #[cfg(target_os = "linux")]
    pub const SIGUSR1: i32 = 10;
    #[cfg(not(target_os = "linux"))]
    pub const SIGUSR1: i32 = 30; // BSD/macOS numbering

    extern "C" {
        /// `signal(2)`. std links libc on every unix target, so declaring
        /// the one symbol we need avoids a registry dependency.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: the async-signal-safe minimum.
    SIGNALED.store(true, std::sync::atomic::Ordering::Release);
}

#[cfg(unix)]
extern "C" fn on_usr1(_signum: i32) {
    USR1.store(true, std::sync::atomic::Ordering::Release);
}

/// Installs a SIGUSR1 handler that sets a flag for [`take_usr1`]. The
/// serve loop polls the flag on its idle tick and dumps the flight
/// recorder to `CIRA_TRACE_DIR` when it fires. `serve()` installs it
/// only when tracing is configured, so an untraced server never
/// displaces a SIGUSR1 handler its embedding application registered.
/// No-op off unix.
pub fn install_usr1_handler() {
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGUSR1, on_usr1 as *const () as usize);
    }
}

/// Consumes a pending SIGUSR1, returning whether one had fired since the
/// last call.
pub fn take_usr1() -> bool {
    USR1.swap(false, Ordering::AcqRel)
}

/// Installs SIGINT + SIGTERM handlers that trigger `token`, so ctrl-c and
/// `kill -TERM` drain in-flight batches instead of killing the process
/// mid-write. Spawns one watcher thread; calling it more than once per
/// process just adds watchers (harmless). On non-unix targets this is a
/// no-op and shutdown must come from [`ShutdownToken::trigger`].
pub fn install_signal_handlers(token: &ShutdownToken) {
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGINT, on_signal as *const () as usize);
        sys::signal(sys::SIGTERM, on_signal as *const () as usize);
    }
    let token = token.clone();
    std::thread::Builder::new()
        .name("cira-serve-signals".into())
        .spawn(move || loop {
            if SIGNALED.load(Ordering::Acquire) {
                token.trigger();
                return;
            }
            if token.is_triggered() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_unblocks_waiters() {
        let token = ShutdownToken::new();
        let t2 = token.clone();
        let waiter = std::thread::spawn(move || t2.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        token.trigger();
        assert!(waiter.join().unwrap());
        assert!(token.is_triggered());
        // Waiting on a triggered token returns immediately.
        assert!(token.wait_timeout(Duration::from_secs(30)));
    }

    #[test]
    fn wait_times_out_untriggered() {
        let token = ShutdownToken::new();
        assert!(!token.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn usr1_flag_is_consumed_once() {
        install_usr1_handler();
        assert!(!take_usr1());
        USR1.store(true, Ordering::Release);
        assert!(take_usr1());
        assert!(!take_usr1());
    }

    #[test]
    fn watcher_translates_signal_flag() {
        let token = ShutdownToken::new();
        install_signal_handlers(&token);
        SIGNALED.store(true, Ordering::Release);
        assert!(token.wait_timeout(Duration::from_secs(5)));
        SIGNALED.store(false, Ordering::Release);
    }
}
