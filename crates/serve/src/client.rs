//! A blocking client for the `CIRS` protocol: connect, negotiate, stream
//! batches with a bounded pipeline, and pull statistics.
//!
//! The client is what `cira replay --connect` uses, and what the loopback
//! tests drive: [`Client::stream`] sends a whole trace in windowed batches
//! (up to the server-advertised in-flight limit before waiting for acks)
//! and [`Client::snapshot_stats`] returns the server's accumulated
//! [`BucketStats`] rebuilt bit-for-bit from the wire.
//!
//! Construction goes through [`ClientBuilder`] (address plus
//! connect/read/write timeouts and a [`RetryPolicy`]); the historical
//! [`Client::connect`]/[`Client::connect_raw`] entry points remain as
//! thin builder delegations with the old defaults.
//!
//! # Fault tolerance (rev 1.2)
//!
//! With a non-zero [`RetryPolicy`], the client survives dropped
//! connections without losing session state: every sent-but-unacked
//! batch is buffered, and on a transport fault the client backs off
//! (exponential delay with deterministic seeded jitter), reconnects,
//! `RESUME`s the parked session by token, reconciles its totals against
//! the server's cumulative ack, and retransmits exactly the batches the
//! server never applied. Because the server's [`BATCH_ACK` is
//! cumulative](crate::proto#minor-revisions) and its replay state is
//! deterministic, the final statistics are bit-identical to a faultless
//! run — the property `tests/chaos.rs` checks under a fault-injecting
//! proxy.

use std::fmt;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use cira_analysis::BucketStats;
use cira_trace::codec::PackedTrace;

use crate::frame::{read_frame, write_frame, FrameError, ReadOutcome, DEFAULT_MAX_FRAME};
use crate::proto::{
    code, decode_server, encode_client, ClientFrame, HelloConfig, ServerFrame, PROTO_VERSION,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode, or the stream ended mid-frame.
    Protocol(String),
    /// The server answered with an `ERROR` frame.
    Server {
        /// One of the [`crate::proto::code`] constants.
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The server shed the connection at capacity (`BUSY`, rev 1.2).
    Busy {
        /// The server's suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
        /// The server's message.
        message: String,
    },
    /// The server's disk park tier is at capacity (`STORE_FULL`,
    /// rev 1.3). The session is still attached: keep streaming, or back
    /// off for the hint and ask to park again.
    StoreFull {
        /// The server's suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
        /// The server's message.
        message: String,
    },
    /// The server sent a well-formed frame we did not expect here.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Busy {
                retry_after_ms,
                message,
            } => write!(f, "server busy (retry after {retry_after_ms} ms): {message}"),
            ClientError::StoreFull {
                retry_after_ms,
                message,
            } => write!(
                f,
                "server park store full (retry after {retry_after_ms} ms): {message}"
            ),
            ClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// Whether reconnect-and-resume can plausibly cure this error.
    /// Transport faults are recoverable, and so is `IDLE_TIMEOUT`: the
    /// server parks the session when it idle-evicts a connection, so a
    /// `RESUME` picks up exactly where the session left off. Other typed
    /// server answers and protocol confusion are not — retrying verbatim
    /// would just repeat them.
    fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Protocol(_)
                | ClientError::Server {
                    code: code::IDLE_TIMEOUT,
                    ..
                }
        )
    }

    /// Transport-level faults only (connect retries use this: a typed
    /// server rejection during the handshake is never cured by redialing).
    fn is_transport(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Protocol(_))
    }
}

/// Reconnect-and-resume schedule: exponential backoff with
/// deterministic, seeded jitter, capped by attempts and an optional
/// wall-clock deadline per recovery.
///
/// The default policy is [`RetryPolicy::none`] — faults surface
/// immediately, exactly as before rev 1.2. Opt in with
/// [`RetryPolicy::retries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts per fault before giving up (0 = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-attempt delay.
    pub max_delay: Duration,
    /// Wall-clock budget for one whole recovery, if any.
    pub deadline: Option<Duration>,
    /// Seed for the jitter PRNG. Equal seeds give equal schedules, which
    /// keeps fault-injection tests reproducible.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Never retry: every fault surfaces immediately.
    pub fn none() -> Self {
        Self {
            max_attempts: 0,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            deadline: None,
            jitter_seed: 0x5eed_cafe,
        }
    }

    /// Retry up to `max_attempts` times with the default backoff
    /// (100 ms doubling to a 5 s cap).
    pub fn retries(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            ..Self::none()
        }
    }

    /// Replaces the backoff range.
    #[must_use]
    pub fn with_delays(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Caps one whole recovery at `deadline` of wall-clock time.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the jitter seed.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The delay before 1-based `attempt`: `base * 2^(attempt-1)` capped
    /// at `max_delay`, then scaled into `[1/2, 1)` by the jitter PRNG so
    /// synchronized clients don't reconnect in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        // Deterministic xorshift64 jitter: scale by (512 + r)/1024.
        let jitter = 512 + (xorshift64(rng) % 512) as u32;
        raw.saturating_mul(jitter) / 1024
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// One xorshift64 step (never returns the all-zero state).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    if x == 0 {
        x = 0x9e37_79b9_7f4a_7c15;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// `a <= b` under wrapping `u32` sequence arithmetic.
fn seq_le(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) < 0x8000_0000
}

/// Configures and opens [`Client`] connections: address, timeouts, and
/// the retry policy, in one place instead of scattered constants.
///
/// ```no_run
/// use std::time::Duration;
/// use cira_serve::client::{Client, RetryPolicy};
/// use cira_serve::proto::HelloConfig;
///
/// let client = Client::builder("127.0.0.1:9184")
///     .read_timeout(Duration::from_secs(30))
///     .retry(RetryPolicy::retries(5))
///     .connect(HelloConfig::default());
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    connect_timeout: Option<Duration>,
    read_timeout: Duration,
    write_timeout: Option<Duration>,
    retry: RetryPolicy,
}

impl ClientBuilder {
    /// A builder for connections to `addr` with the historical defaults:
    /// no connect/write timeout, a 120 s read timeout, and no retries.
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_owned(),
            connect_timeout: None,
            read_timeout: Duration::from_secs(120),
            write_timeout: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Caps the TCP connect itself (per attempt).
    #[must_use]
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = Some(t);
        self
    }

    /// Replaces the 120 s default read timeout.
    #[must_use]
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Sets a socket write timeout (none by default).
    #[must_use]
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = Some(t);
        self
    }

    /// Replaces the no-retry default policy.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Dials one TCP connection with the configured timeouts.
    fn dial(&self) -> io::Result<TcpStream> {
        let stream = match self.connect_timeout {
            Some(t) => {
                let mut last = None;
                let mut stream = None;
                for a in self.addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, t) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
            None => TcpStream::connect(&self.addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        if let Some(t) = self.write_timeout {
            stream.set_write_timeout(Some(t))?;
        }
        Ok(stream)
    }

    /// Connects and negotiates `config`, retrying connect failures and
    /// `BUSY` sheds under the configured [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with the server's code/message when the
    /// hello is rejected (bad spec, version mismatch); the last
    /// connect/shed error once retries are exhausted.
    pub fn connect(self, config: HelloConfig) -> Result<Client, ClientError> {
        self.connect_inner(Some(config))
    }

    /// Connects **without** negotiating a session (no `HELLO`).
    ///
    /// A raw connection can only use the sessionless rev 1.1 frames:
    /// [`Client::stats`], [`Client::metrics_text`], and
    /// [`Client::goodbye`]. This is what `cira stats` uses to inspect a
    /// live server without disturbing its sessions.
    ///
    /// # Errors
    ///
    /// Connection failures (after retries, if configured).
    pub fn connect_raw(self) -> Result<Client, ClientError> {
        self.connect_inner(None)
    }

    /// Re-attaches to a parked session by resume token (rev 1.3): the
    /// crash-recovery entry point. A *fresh process* — possibly talking
    /// to a freshly restarted server that recovered the park from its
    /// disk tier — adopts the session and continues streaming where the
    /// last cumulative ack left off (`next_seq` continues after the
    /// server's last acked sequence number).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`code::UNKNOWN_SESSION`] when the
    /// token names nothing (expired, evicted, or already resumed);
    /// connect failures and `BUSY` sheds after retries.
    pub fn resume(self, token: u64) -> Result<Client, ClientError> {
        let mut rng = self.retry.jitter_seed;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.try_resume_fresh(token) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    attempt += 1;
                    let retryable = e.is_transport() || matches!(e, ClientError::Busy { .. });
                    if !retryable || attempt > self.retry.max_attempts {
                        return Err(e);
                    }
                    if let Some(d) = self.retry.deadline {
                        if started.elapsed() >= d {
                            return Err(e);
                        }
                    }
                    let mut delay = self.retry.backoff(attempt, &mut rng);
                    if let ClientError::Busy { retry_after_ms, .. } = &e {
                        delay = delay.max(Duration::from_millis(u64::from(*retry_after_ms)));
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// One dial + `RESUME` attempt from a token alone (no prior client
    /// state to reconcile — the server's totals are adopted wholesale).
    fn try_resume_fresh(&self, token: u64) -> Result<Client, ClientError> {
        let stream = self.dial()?;
        let mut client = Client {
            stream,
            builder: self.clone(),
            session: 0,
            token: Some(token),
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 1,
            predictor: String::new(),
            mechanism: String::new(),
            next_seq: 0,
            unacked: Vec::new(),
            totals: StreamTotals::default(),
            retries: 0,
            resumes: 0,
            rng: self.retry.jitter_seed ^ 0xc0ff_ee00,
        };
        client.send(&ClientFrame::Resume {
            version: PROTO_VERSION,
            token,
        })?;
        match client.recv()? {
            ServerFrame::ResumeAck {
                session,
                last_seq,
                batches,
                records,
                mispredicts,
                low_confidence,
                max_frame,
                max_inflight,
            } => {
                client.session = session;
                client.max_frame = max_frame;
                client.max_inflight = max_inflight.max(1);
                client.totals = StreamTotals {
                    batches,
                    records,
                    mispredicts,
                    low_confidence,
                };
                client.next_seq = last_seq.map_or(0, |s| s.wrapping_add(1));
                client.resumes = 1;
                Ok(client)
            }
            ServerFrame::Busy {
                retry_after_ms,
                message,
            } => Err(ClientError::Busy {
                retry_after_ms,
                message,
            }),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn connect_inner(self, config: Option<HelloConfig>) -> Result<Client, ClientError> {
        let mut rng = self.retry.jitter_seed;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.try_connect_once(config.as_ref()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    attempt += 1;
                    let retryable = e.is_transport() || matches!(e, ClientError::Busy { .. });
                    if !retryable || attempt > self.retry.max_attempts {
                        return Err(e);
                    }
                    if let Some(d) = self.retry.deadline {
                        if started.elapsed() >= d {
                            return Err(e);
                        }
                    }
                    let mut delay = self.retry.backoff(attempt, &mut rng);
                    if let ClientError::Busy { retry_after_ms, .. } = &e {
                        delay = delay.max(Duration::from_millis(u64::from(*retry_after_ms)));
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }

    fn try_connect_once(&self, config: Option<&HelloConfig>) -> Result<Client, ClientError> {
        let stream = self.dial()?;
        let mut client = Client {
            stream,
            builder: self.clone(),
            session: 0,
            token: None,
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 1,
            predictor: String::new(),
            mechanism: String::new(),
            next_seq: 0,
            unacked: Vec::new(),
            totals: StreamTotals::default(),
            retries: 0,
            resumes: 0,
            rng: self.retry.jitter_seed ^ 0xc0ff_ee00,
        };
        let Some(config) = config else {
            return Ok(client); // raw: no session
        };
        client.send(&ClientFrame::Hello {
            version: PROTO_VERSION,
            config: config.clone(),
        })?;
        match client.recv()? {
            ServerFrame::HelloAck {
                session,
                max_frame,
                max_inflight,
                predictor,
                mechanism,
                token,
                ..
            } => {
                client.session = session;
                client.token = Some(token);
                client.max_frame = max_frame;
                client.max_inflight = max_inflight.max(1);
                client.predictor = predictor;
                client.mechanism = mechanism;
                Ok(client)
            }
            ServerFrame::Busy {
                retry_after_ms,
                message,
            } => Err(ClientError::Busy {
                retry_after_ms,
                message,
            }),
            // A HELLO rejection names the specs this client offered:
            // "bad spec" from a server that predates part of the grammar
            // (say, `tage:…` or `self:…`) is otherwise undiagnosable from
            // the bare typed ERROR.
            ServerFrame::Error { code, message } => Err(ClientError::Server {
                code,
                message: if code == code::BAD_SPEC || code == code::UNSUPPORTED_VERSION {
                    format!(
                        "{message} (offered predictor={} mechanism={} index={} init={})",
                        config.predictor, config.mechanism, config.index, config.init
                    )
                } else {
                    message
                },
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// Cumulative results of streaming batches through a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Batches acknowledged.
    pub batches: u64,
    /// Records acknowledged.
    pub records: u64,
    /// Mispredicted records.
    pub mispredicts: u64,
    /// Low-confidence records.
    pub low_confidence: u64,
}

impl StreamTotals {
    /// `self - earlier`, fieldwise (used to carve one `stream()` call's
    /// contribution out of the session-lifetime totals).
    fn since(self, earlier: StreamTotals) -> StreamTotals {
        StreamTotals {
            batches: self.batches - earlier.batches,
            records: self.records - earlier.records,
            mispredicts: self.mispredicts - earlier.mispredicts,
            low_confidence: self.low_confidence - earlier.low_confidence,
        }
    }
}

/// A negotiated connection to a `cira-serve` server.
///
/// With a [`RetryPolicy`] configured, the client transparently
/// reconnects and `RESUME`s its session after transport faults; see the
/// [module docs](self) for the recovery protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Everything needed to re-dial and re-attach after a fault.
    builder: ClientBuilder,
    session: u64,
    /// Resume token from `HELLO_ACK`; `None` on raw connections.
    token: Option<u64>,
    max_frame: u32,
    max_inflight: u32,
    predictor: String,
    mechanism: String,
    next_seq: u32,
    /// Sent-but-unacked batches, oldest first, for retransmission after
    /// a resume. Never longer than `max_inflight`.
    unacked: Vec<(u32, PackedTrace)>,
    /// Session-lifetime acked totals (reconciled from `RESUME_ACK` after
    /// a fault, so lost acks are still counted exactly once).
    totals: StreamTotals,
    /// Reconnect attempts made over this client's lifetime.
    retries: u64,
    /// Successful session resumptions.
    resumes: u64,
    /// Jitter PRNG state.
    rng: u64,
}

impl Client {
    /// A [`ClientBuilder`] for `addr` with the historical defaults.
    pub fn builder(addr: &str) -> ClientBuilder {
        ClientBuilder::new(addr)
    }

    /// Connects to `addr` and negotiates `config` with default settings
    /// (120 s read timeout, no retries) — see [`Client::builder`] for
    /// control over timeouts and fault tolerance.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with the server's code/message when the
    /// hello is rejected (bad spec, version mismatch); connection or
    /// protocol errors otherwise.
    pub fn connect(addr: &str, config: HelloConfig) -> Result<Client, ClientError> {
        ClientBuilder::new(addr).connect(config)
    }

    /// Connects to `addr` **without** negotiating a session (no `HELLO`),
    /// with default settings — see [`ClientBuilder::connect_raw`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_raw(addr: &str) -> Result<Client, ClientError> {
        ClientBuilder::new(addr).connect_raw()
    }

    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The server's parsed predictor description.
    pub fn predictor(&self) -> &str {
        &self.predictor
    }

    /// The server's parsed mechanism description.
    pub fn mechanism(&self) -> &str {
        &self.mechanism
    }

    /// The session's resume token, if one was negotiated (rev 1.2).
    /// Save it across process restarts: [`ClientBuilder::resume`] (or a
    /// `RESUME` frame from any client) re-attaches with it — including
    /// after the *server* restarts, when it runs a durable park.
    pub fn resume_token(&self) -> Option<u64> {
        self.token
    }

    /// Reconnect attempts made over this client's lifetime (rev 1.2).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful session resumptions over this client's lifetime
    /// (rev 1.2).
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_client(frame))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        // Tolerate server-side pauses: a blocking client treats read
        // timeouts as "keep waiting" up to the framing stall budget.
        match read_frame(&mut self.stream, u32::MAX, 4)? {
            ReadOutcome::Frame(body) => {
                decode_server(&body).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            ReadOutcome::Eof => Err(ClientError::Protocol(
                "server closed the connection".to_owned(),
            )),
            ReadOutcome::Idle => Err(ClientError::Protocol(
                "timed out waiting for the server".to_owned(),
            )),
        }
    }

    /// Drops retransmit buffer entries up to and including `seq` — acks
    /// are cumulative, so one ack can retire several buffered batches
    /// whose individual acks were lost to a fault.
    fn drop_acked(&mut self, seq: u32) {
        self.unacked.retain(|(s, _)| !seq_le(*s, seq));
    }

    /// Receives frames until one batch ack arrives, folding it into the
    /// session totals. Recovers (resume + retransmit) on transport
    /// faults; `RESUME_ACK` reconciliation may retire buffered batches
    /// without any ack arriving, which also counts as progress.
    fn pump_one_ack(&mut self) -> Result<(), ClientError> {
        let before = self.unacked.len();
        loop {
            match self.recv() {
                Ok(ServerFrame::BatchAck {
                    seq,
                    records,
                    mispredicts,
                    low_confidence,
                    ..
                }) => {
                    self.drop_acked(seq);
                    self.totals.batches += 1;
                    self.totals.records += records;
                    self.totals.mispredicts += mispredicts;
                    self.totals.low_confidence += low_confidence;
                    return Ok(());
                }
                Ok(ServerFrame::Error { code, message }) => {
                    return Err(ClientError::Server { code, message })
                }
                Ok(other) => return Err(ClientError::Unexpected(format!("{other:?}"))),
                Err(e) => {
                    self.recover(e)?;
                    if self.unacked.len() < before {
                        return Ok(()); // reconciliation retired batches
                    }
                }
            }
        }
    }

    /// Blocks until at most `limit` batches are unacked.
    fn pump_acks_until(&mut self, limit: usize) -> Result<(), ClientError> {
        while self.unacked.len() > limit {
            self.pump_one_ack()?;
        }
        Ok(())
    }

    /// Reconnects and re-attaches after a transport fault: backoff,
    /// dial, `RESUME` by token, reconcile totals against the server's
    /// cumulative state, retransmit everything unacked. Returns the
    /// original error when retries are disabled, exhausted, out of
    /// deadline, or the session is unrecoverable (`UNKNOWN_SESSION`).
    fn recover(&mut self, cause: ClientError) -> Result<(), ClientError> {
        if !cause.is_recoverable() || self.builder.retry.max_attempts == 0 {
            return Err(cause);
        }
        // Sever the old connection so the server notices and parks the
        // session — it may still look alive server-side (e.g. after a
        // client-observed stall).
        let _ = self.stream.shutdown(Shutdown::Both);
        let policy = self.builder.retry.clone();
        let started = Instant::now();
        let mut last = cause;
        for attempt in 1..=policy.max_attempts {
            let mut delay = policy.backoff(attempt, &mut self.rng);
            if let ClientError::Busy { retry_after_ms, .. } = &last {
                delay = delay.max(Duration::from_millis(u64::from(*retry_after_ms)));
            }
            std::thread::sleep(delay);
            if let Some(d) = policy.deadline {
                if started.elapsed() >= d {
                    return Err(last);
                }
            }
            self.retries += 1;
            match self.try_resume_once() {
                Ok(()) => {
                    self.resumes += 1;
                    return Ok(());
                }
                // UNKNOWN_SESSION is retried within the budget: the
                // session may simply not be parked *yet* (the server
                // parks when it notices the old connection die). If the
                // state is truly gone, the remaining attempts fail the
                // same way and the error surfaces below.
                Err(e @ ClientError::Server { code: c, .. }) if c == code::UNKNOWN_SESSION => {
                    last = e;
                }
                Err(e @ (ClientError::Server { .. } | ClientError::Unexpected(_))) => {
                    // Other typed rejections are permanent.
                    return Err(e);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One reconnect + `RESUME` + retransmit attempt.
    fn try_resume_once(&mut self) -> Result<(), ClientError> {
        let Some(token) = self.token else {
            // Raw (sessionless) connections just need a fresh socket.
            self.stream = self.builder.dial()?;
            return Ok(());
        };
        self.stream = self.builder.dial()?;
        self.send(&ClientFrame::Resume {
            version: PROTO_VERSION,
            token,
        })?;
        match self.recv()? {
            ServerFrame::ResumeAck {
                session,
                last_seq,
                batches,
                records,
                mispredicts,
                low_confidence,
                max_frame,
                max_inflight,
            } => {
                self.session = session;
                self.max_frame = max_frame;
                self.max_inflight = max_inflight.max(1);
                // The server's cumulative totals are the truth: acks
                // lost to the fault are already included, retransmits
                // about to happen are not.
                self.totals = StreamTotals {
                    batches,
                    records,
                    mispredicts,
                    low_confidence,
                };
                if let Some(acked) = last_seq {
                    self.drop_acked(acked);
                }
                // Retransmit in order; acks come back through the usual
                // pump. A fault here surfaces as Io and the outer loop
                // tries again (the server parks the session anew when it
                // notices this connection die).
                for i in 0..self.unacked.len() {
                    let (seq, records) = self.unacked[i].clone();
                    self.send(&ClientFrame::Batch { seq, records })?;
                }
                Ok(())
            }
            ServerFrame::Busy {
                retry_after_ms,
                message,
            } => Err(ClientError::Busy {
                retry_after_ms,
                message,
            }),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Enqueues and sends one batch, first making room in the in-flight
    /// window.
    fn push_batch(&mut self, seq: u32, records: PackedTrace) -> Result<(), ClientError> {
        self.pump_acks_until(self.max_inflight.max(1) as usize - 1)?;
        self.unacked.push((seq, records.clone()));
        if let Err(e) = self.send(&ClientFrame::Batch { seq, records }) {
            // The batch is buffered, so recovery retransmits it.
            self.recover(e)?;
        }
        Ok(())
    }

    /// Sends one batch and waits for its ack, returning the batch's own
    /// `(records, mispredicts, low_confidence)` contribution.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures (after recovery, if
    /// a [`RetryPolicy`] is configured).
    pub fn send_batch(&mut self, records: &PackedTrace) -> Result<StreamTotals, ClientError> {
        let start = self.totals;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.push_batch(seq, records.clone())?;
        self.pump_acks_until(0)?;
        Ok(self.totals.since(start))
    }

    /// Streams `trace` in `batch_len`-record batches, keeping up to the
    /// server's advertised in-flight limit outstanding.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures (after recovery, if
    /// a [`RetryPolicy`] is configured).
    ///
    /// # Panics
    ///
    /// Panics if `batch_len` is zero.
    pub fn stream(
        &mut self,
        trace: &PackedTrace,
        batch_len: usize,
    ) -> Result<StreamTotals, ClientError> {
        assert!(batch_len > 0, "batch_len must be positive");
        let start = self.totals;
        let mut at = 0usize;
        while at < trace.len() {
            let end = (at + batch_len).min(trace.len());
            let batch: PackedTrace = (at..end)
                .map(|i| trace.get(i).expect("index in range"))
                .collect();
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.push_batch(seq, batch)?;
            at = end;
        }
        self.pump_acks_until(0)?;
        Ok(self.totals.since(start))
    }

    /// Sends `frame` and receives its reply, recovering once through the
    /// retry policy on a transport fault (the request is re-sent on the
    /// resumed connection — all these request frames are idempotent).
    fn roundtrip(&mut self, frame: &ClientFrame) -> Result<ServerFrame, ClientError> {
        debug_assert!(self.unacked.is_empty(), "roundtrips only between streams");
        let once = |me: &mut Self| -> Result<ServerFrame, ClientError> {
            me.send(frame)?;
            me.recv()
        };
        match once(self) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                self.recover(e)?;
                once(self)
            }
        }
    }

    /// Fetches the session's accumulated statistics.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn snapshot(&mut self) -> Result<ServerFrame, ClientError> {
        match self.roundtrip(&ClientFrame::Snapshot)? {
            reply @ ServerFrame::SnapshotReply { .. } => Ok(reply),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the session's statistics as a [`BucketStats`], bit-identical
    /// to the server's accumulator.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames, transport failures, and invalid cells.
    pub fn snapshot_stats(&mut self) -> Result<BucketStats, ClientError> {
        match self.snapshot()? {
            ServerFrame::SnapshotReply { cells, .. } => {
                crate::proto::stats_from_cells(&cells).map_err(ClientError::Protocol)
            }
            _ => unreachable!("snapshot() only returns SnapshotReply"),
        }
    }

    /// Fetches server-wide metrics as name/value pairs.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.roundtrip(&ClientFrame::Stats)? {
            ServerFrame::StatsReply(pairs) => Ok(pairs),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the full Prometheus text exposition (server, session, and
    /// pool metrics) over the wire — the same text `GET /metrics` serves.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames (including unknown-frame-type errors from
    /// pre-rev-1.1 servers) and transport failures.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&ClientFrame::Metrics)? {
            ServerFrame::MetricsReply { text } => Ok(text),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's flight-recorder contents as Chrome
    /// trace-event JSON (rev 1.5) — the same blob `GET /trace` serves
    /// and `cira trace dump` writes. A server running with tracing
    /// disabled returns a valid but empty trace.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames (including unknown-frame-type errors from
    /// pre-rev-1.5 servers) and transport failures.
    pub fn trace_json(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&ClientFrame::TraceDump)? {
            ServerFrame::TraceDumpReply { json } => Ok(json),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Resets the session to its freshly-negotiated state.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn reset(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&ClientFrame::Reset)? {
            ServerFrame::ResetAck => {
                self.totals = StreamTotals::default();
                Ok(())
            }
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to checkpoint and park the session durably
    /// (rev 1.3), returning the resume token on success. The server
    /// closes the connection after acking, so the client should be
    /// dropped; re-attach later with [`ClientBuilder::resume`].
    ///
    /// # Errors
    ///
    /// [`ClientError::StoreFull`] when the server's disk park tier is at
    /// capacity — the session is **still attached** and this client
    /// remains usable (keep streaming, or retry after the hint).
    /// Server `ERROR` frames (e.g. [`code::STORE_FULL`] from a server
    /// with parking disabled) and transport failures otherwise.
    pub fn park(&mut self) -> Result<u64, ClientError> {
        // Everything unacked must land first: the checkpoint covers
        // exactly the batches the server has applied.
        self.pump_acks_until(0)?;
        self.send(&ClientFrame::Park)?;
        match self.recv()? {
            ServerFrame::ParkedAck { token } => Ok(token),
            ServerFrame::StoreFull {
                retry_after_ms,
                message,
            } => Err(ClientError::StoreFull {
                retry_after_ms,
                message,
            }),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Orderly close: waits for the server's acknowledgement. Never
    /// retried — a goodbye that raced a fault leaves the session parked
    /// server-side until its TTL expires, which is harmless.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&ClientFrame::Goodbye)?;
        match self.recv()? {
            ServerFrame::GoodbyeAck => Ok(()),
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_compare_wraps() {
        assert!(seq_le(0, 0));
        assert!(seq_le(0, 1));
        assert!(!seq_le(1, 0));
        assert!(seq_le(u32::MAX, 0)); // wrap: MAX precedes 0
        assert!(!seq_le(0, u32::MAX));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = RetryPolicy::retries(8)
            .with_delays(Duration::from_millis(10), Duration::from_millis(100))
            .with_jitter_seed(42);
        let mut rng1 = p.jitter_seed;
        let mut rng2 = p.jitter_seed;
        let a: Vec<Duration> = (1..=8).map(|i| p.backoff(i, &mut rng1)).collect();
        let b: Vec<Duration> = (1..=8).map(|i| p.backoff(i, &mut rng2)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            // Jitter scales into [1/2, 1) of the raw exponential value.
            let raw = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(100));
            assert!(*d >= raw / 2 && *d <= raw, "attempt {}: {d:?}", i + 1);
        }
        let mut other = p.jitter_seed ^ 1;
        let c: Vec<Duration> = (1..=8).map(|i| p.backoff(i, &mut other)).collect();
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn drop_acked_is_cumulative() {
        // Exercise the retain logic without a socket via seq_le directly:
        // acks retire everything at-or-before the acked sequence.
        let unacked: Vec<u32> = vec![3, 4, 5, 6];
        let after: Vec<u32> = unacked.iter().copied().filter(|s| !seq_le(*s, 5)).collect();
        assert_eq!(after, vec![6]);
    }

    #[test]
    fn totals_since_subtracts_fieldwise() {
        let a = StreamTotals {
            batches: 10,
            records: 1000,
            mispredicts: 50,
            low_confidence: 70,
        };
        let b = StreamTotals {
            batches: 4,
            records: 400,
            mispredicts: 20,
            low_confidence: 30,
        };
        assert_eq!(
            a.since(b),
            StreamTotals {
                batches: 6,
                records: 600,
                mispredicts: 30,
                low_confidence: 40,
            }
        );
    }
}
