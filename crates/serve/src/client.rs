//! A blocking client for the `CIRS` protocol: connect, negotiate, stream
//! batches with a bounded pipeline, and pull statistics.
//!
//! The client is what `cira replay --connect` uses, and what the loopback
//! tests drive: [`Client::stream`] sends a whole trace in windowed batches
//! (up to the server-advertised in-flight limit before waiting for acks)
//! and [`Client::snapshot_stats`] returns the server's accumulated
//! [`BucketStats`] rebuilt bit-for-bit from the wire.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

use cira_analysis::BucketStats;
use cira_trace::codec::PackedTrace;

use crate::frame::{read_frame, write_frame, FrameError, ReadOutcome, DEFAULT_MAX_FRAME};
use crate::proto::{
    decode_server, encode_client, ClientFrame, HelloConfig, ServerFrame, PROTO_VERSION,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode, or the stream ended mid-frame.
    Protocol(String),
    /// The server answered with an `ERROR` frame.
    Server {
        /// One of the [`crate::proto::code`] constants.
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The server sent a well-formed frame we did not expect here.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// Cumulative results of streaming batches through a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Batches acknowledged.
    pub batches: u64,
    /// Records acknowledged.
    pub records: u64,
    /// Mispredicted records.
    pub mispredicts: u64,
    /// Low-confidence records.
    pub low_confidence: u64,
}

/// A negotiated connection to a `cira-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
    max_frame: u32,
    max_inflight: u32,
    predictor: String,
    mechanism: String,
    next_seq: u32,
}

impl Client {
    /// Connects to `addr` and negotiates `config`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with the server's code/message when the
    /// hello is rejected (bad spec, version mismatch); connection or
    /// protocol errors otherwise.
    pub fn connect(addr: &str, config: HelloConfig) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut client = Client {
            stream,
            session: 0,
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 1,
            predictor: String::new(),
            mechanism: String::new(),
            next_seq: 0,
        };
        client.send(&ClientFrame::Hello {
            version: PROTO_VERSION,
            config,
        })?;
        match client.recv()? {
            ServerFrame::HelloAck {
                session,
                max_frame,
                max_inflight,
                predictor,
                mechanism,
                ..
            } => {
                client.session = session;
                client.max_frame = max_frame;
                client.max_inflight = max_inflight.max(1);
                client.predictor = predictor;
                client.mechanism = mechanism;
                Ok(client)
            }
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Connects to `addr` **without** negotiating a session (no `HELLO`).
    ///
    /// A raw connection can only use the sessionless rev 1.1 frames:
    /// [`stats`](Self::stats), [`metrics_text`](Self::metrics_text), and
    /// [`goodbye`](Self::goodbye). This is what `cira stats` uses to
    /// inspect a live server without disturbing its sessions.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_raw(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            stream,
            session: 0,
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 1,
            predictor: String::new(),
            mechanism: String::new(),
            next_seq: 0,
        })
    }

    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The server's parsed predictor description.
    pub fn predictor(&self) -> &str {
        &self.predictor
    }

    /// The server's parsed mechanism description.
    pub fn mechanism(&self) -> &str {
        &self.mechanism
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_client(frame))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        // Tolerate server-side pauses: a blocking client treats read
        // timeouts as "keep waiting" up to the framing stall budget.
        match read_frame(&mut self.stream, u32::MAX, 4)? {
            ReadOutcome::Frame(body) => {
                decode_server(&body).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            ReadOutcome::Eof => Err(ClientError::Protocol(
                "server closed the connection".to_owned(),
            )),
            ReadOutcome::Idle => Err(ClientError::Protocol(
                "timed out waiting for the server".to_owned(),
            )),
        }
    }

    fn recv_batch_ack(&mut self, totals: &mut StreamTotals) -> Result<(), ClientError> {
        match self.recv()? {
            ServerFrame::BatchAck {
                records,
                mispredicts,
                low_confidence,
                ..
            } => {
                totals.batches += 1;
                totals.records += records;
                totals.mispredicts += mispredicts;
                totals.low_confidence += low_confidence;
                Ok(())
            }
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends one batch and waits for its ack, returning
    /// `(records, mispredicts, low_confidence)` for the batch.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn send_batch(&mut self, records: &PackedTrace) -> Result<StreamTotals, ClientError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.send(&ClientFrame::Batch {
            seq,
            records: records.clone(),
        })?;
        let mut totals = StreamTotals::default();
        self.recv_batch_ack(&mut totals)?;
        Ok(totals)
    }

    /// Streams `trace` in `batch_len`-record batches, keeping up to the
    /// server's advertised in-flight limit outstanding.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    ///
    /// # Panics
    ///
    /// Panics if `batch_len` is zero.
    pub fn stream(
        &mut self,
        trace: &PackedTrace,
        batch_len: usize,
    ) -> Result<StreamTotals, ClientError> {
        assert!(batch_len > 0, "batch_len must be positive");
        let mut totals = StreamTotals::default();
        let mut in_flight = 0u32;
        let mut at = 0usize;
        while at < trace.len() {
            let end = (at + batch_len).min(trace.len());
            let batch: PackedTrace = (at..end)
                .map(|i| trace.get(i).expect("index in range"))
                .collect();
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.send(&ClientFrame::Batch {
                seq,
                records: batch,
            })?;
            in_flight += 1;
            at = end;
            if in_flight >= self.max_inflight {
                self.recv_batch_ack(&mut totals)?;
                in_flight -= 1;
            }
        }
        while in_flight > 0 {
            self.recv_batch_ack(&mut totals)?;
            in_flight -= 1;
        }
        Ok(totals)
    }

    /// Fetches the session's accumulated statistics.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn snapshot(&mut self) -> Result<ServerFrame, ClientError> {
        self.send(&ClientFrame::Snapshot)?;
        match self.recv()? {
            reply @ ServerFrame::SnapshotReply { .. } => Ok(reply),
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the session's statistics as a [`BucketStats`], bit-identical
    /// to the server's accumulator.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames, transport failures, and invalid cells.
    pub fn snapshot_stats(&mut self) -> Result<BucketStats, ClientError> {
        match self.snapshot()? {
            ServerFrame::SnapshotReply { cells, .. } => {
                crate::proto::stats_from_cells(&cells).map_err(ClientError::Protocol)
            }
            _ => unreachable!("snapshot() only returns SnapshotReply"),
        }
    }

    /// Fetches server-wide metrics as name/value pairs.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.send(&ClientFrame::Stats)?;
        match self.recv()? {
            ServerFrame::StatsReply(pairs) => Ok(pairs),
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the full Prometheus text exposition (server, session, and
    /// pool metrics) over the wire — the same text `GET /metrics` serves.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames (including unknown-frame-type errors from
    /// pre-rev-1.1 servers) and transport failures.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.send(&ClientFrame::Metrics)?;
        match self.recv()? {
            ServerFrame::MetricsReply { text } => Ok(text),
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Resets the session to its freshly-negotiated state.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn reset(&mut self) -> Result<(), ClientError> {
        self.send(&ClientFrame::Reset)?;
        match self.recv()? {
            ServerFrame::ResetAck => Ok(()),
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Orderly close: waits for the server's acknowledgement.
    ///
    /// # Errors
    ///
    /// Server `ERROR` frames and transport failures.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&ClientFrame::Goodbye)?;
        match self.recv()? {
            ServerFrame::GoodbyeAck => Ok(()),
            ServerFrame::Error { code, message } => {
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
