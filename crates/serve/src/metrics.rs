//! Live server-wide metrics: lock-free counters, gauges, and histograms
//! from [`cira_obs`], readable at any time via the `STATS` frame, the
//! `METRICS` frame, or HTTP `GET /metrics` (and from process code via
//! [`ServerMetrics::snapshot`]).

use std::sync::Arc;
use std::time::Instant;

use cira_obs::{Counter, Gauge, Histogram, Registry};

use crate::proto::code;

/// Protocol-error codes with a dedicated breakdown slot, in wire order.
/// Index 0 is the catch-all for violations that never produce an `ERROR`
/// frame (mid-frame disconnects and stalls).
const ERROR_SLOTS: usize = 10;

/// The breakdown label for `protocol_errors` slot `i`.
fn error_slot_name(i: usize) -> &'static str {
    match i as u16 {
        code::MALFORMED => "malformed",
        code::UNSUPPORTED_VERSION => "unsupported_version",
        code::BAD_SPEC => "bad_spec",
        code::OVERSIZED => "oversized",
        code::HELLO_REQUIRED => "hello_required",
        code::SHUTTING_DOWN => "shutting_down",
        code::UNKNOWN_SESSION => "unknown_session",
        code::IDLE_TIMEOUT => "idle_timeout",
        code::STORE_FULL => "store_full",
        _ => "stalled",
    }
}

/// Monotonic counters, gauges, and histograms describing everything the
/// server has done since start. All updates are relaxed: metrics are
/// observational and never synchronize data.
#[derive(Debug)]
pub struct ServerMetrics {
    /// When this metrics block (i.e. the server) was created.
    started: Instant,
    /// Connections ever accepted.
    pub connections_total: Counter,
    /// Connections currently open.
    pub connections_active: Gauge,
    /// Sessions successfully negotiated (HELLO accepted).
    pub sessions_opened: Counter,
    /// Session resets performed.
    pub sessions_reset: Counter,
    /// Frames read from clients.
    pub frames_in: Counter,
    /// Frames written to clients.
    pub frames_out: Counter,
    /// Bytes of frame bodies read.
    pub bytes_in: Counter,
    /// Bytes of frame bodies written.
    pub bytes_out: Counter,
    /// BATCH frames processed.
    pub batches: Counter,
    /// Branch records scored and trained.
    pub records: Counter,
    /// Mispredicted records.
    pub mispredicts: Counter,
    /// Low-confidence records (key < session threshold).
    pub low_confidence: Counter,
    /// Records per BATCH frame.
    pub batch_records: Histogram,
    /// Wall-clock time to score one BATCH, in microseconds.
    pub batch_service_us: Histogram,
    /// Sessions alive right now: attached to a connection or parked
    /// (rev 1.2).
    pub sessions_live: Gauge,
    /// Sessions parked after an unclean disconnect (rev 1.2).
    pub sessions_parked: Counter,
    /// Sessions successfully re-attached via `RESUME` (rev 1.2).
    pub sessions_resumed: Counter,
    /// `RESUME` frames received, successful or not (rev 1.2).
    pub resume_attempts: Counter,
    /// `RESUME` frames that named no parked session (rev 1.2).
    pub resume_failures: Counter,
    /// `HELLO`s shed with `BUSY` at session capacity (rev 1.2).
    pub sessions_shed: Counter,
    /// Parked sessions evicted by the TTL sweep (rev 1.2).
    pub park_evicted_ttl: Counter,
    /// Parked sessions evicted to make room (rev 1.2).
    pub park_evicted_capacity: Counter,
    /// Sessions closed by the idle timeout (rev 1.2).
    pub sessions_idle_evicted: Counter,
    /// Parked sessions dropped from the hot tier with their disk copy
    /// kept (rev 1.3).
    pub park_spilled: Counter,
    /// Resumes served by decoding a disk checkpoint — the hot tier had
    /// no copy (rev 1.3).
    pub park_loaded: Counter,
    /// Parks refused because the disk tier was at capacity (rev 1.3).
    pub park_store_full: Counter,
    /// Checkpoint records currently in the disk tier (rev 1.3).
    pub park_disk_records: Gauge,
    /// Bytes of live checkpoint pages in the disk tier (rev 1.3).
    pub park_disk_bytes: Gauge,
    /// Store buffer-pool page hits (rev 1.3).
    pub store_page_hits: Gauge,
    /// Store buffer-pool page misses, i.e. disk reads (rev 1.3).
    pub store_page_misses: Gauge,
    /// Wall-clock milliseconds the startup recovery scan of the park's
    /// disk tier took (rev 1.4); 0 when no disk tier is configured.
    pub store_recovery_ms: Gauge,
    /// Hot parked sessions written through to disk by the background
    /// spiller on a shard tick (rev 1.4).
    pub park_bg_spilled: Counter,
    /// Connections dropped for protocol violations, broken down by error
    /// code (slot 0 collects violations with no `ERROR` frame: mid-frame
    /// disconnects and stalls). Increment via
    /// [`ServerMetrics::protocol_error`]; total via
    /// [`ServerMetrics::protocol_errors_total`].
    protocol_errors: [Counter; ERROR_SLOTS],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            connections_total: Counter::new(),
            connections_active: Gauge::new(),
            sessions_opened: Counter::new(),
            sessions_reset: Counter::new(),
            frames_in: Counter::new(),
            frames_out: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            batches: Counter::new(),
            records: Counter::new(),
            mispredicts: Counter::new(),
            low_confidence: Counter::new(),
            batch_records: Histogram::new(),
            batch_service_us: Histogram::new(),
            sessions_live: Gauge::new(),
            sessions_parked: Counter::new(),
            sessions_resumed: Counter::new(),
            resume_attempts: Counter::new(),
            resume_failures: Counter::new(),
            sessions_shed: Counter::new(),
            park_evicted_ttl: Counter::new(),
            park_evicted_capacity: Counter::new(),
            sessions_idle_evicted: Counter::new(),
            park_spilled: Counter::new(),
            park_loaded: Counter::new(),
            park_store_full: Counter::new(),
            park_disk_records: Gauge::new(),
            park_disk_bytes: Gauge::new(),
            store_page_hits: Gauge::new(),
            store_page_misses: Gauge::new(),
            store_recovery_ms: Gauge::new(),
            park_bg_spilled: Counter::new(),
            protocol_errors: Default::default(),
        }
    }
}

impl ServerMetrics {
    /// A zeroed metrics block whose uptime clock starts now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whole seconds since this server started.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Counts one protocol violation under its `ERROR`-frame code (use
    /// `0` for violations that send no frame: disconnects, stalls).
    pub fn protocol_error(&self, code: u16) {
        let slot = if (code as usize) < ERROR_SLOTS {
            code as usize
        } else {
            0
        };
        self.protocol_errors[slot].inc();
    }

    /// Protocol violations across all error codes.
    pub fn protocol_errors_total(&self) -> u64 {
        self.protocol_errors.iter().map(Counter::get).sum()
    }

    /// Violations recorded under one error code (`0` = no-frame slot).
    pub fn protocol_errors_for(&self, code: u16) -> u64 {
        if (code as usize) < ERROR_SLOTS {
            self.protocol_errors[code as usize].get()
        } else {
            0
        }
    }

    /// All counters as stable `(name, value)` pairs — the `STATS_REPLY`
    /// payload.
    ///
    /// Protocol rev 1.1 appends names (`uptime_seconds` and the
    /// `protocol_errors_*` breakdown) after the original thirteen; the
    /// pair encoding is self-describing, so rev 1.0 clients that look up
    /// the names they know keep working unchanged.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("connections_total".into(), self.connections_total.get()),
            (
                "connections_active".into(),
                self.connections_active.get().max(0) as u64,
            ),
            ("sessions_opened".into(), self.sessions_opened.get()),
            ("sessions_reset".into(), self.sessions_reset.get()),
            ("frames_in".into(), self.frames_in.get()),
            ("frames_out".into(), self.frames_out.get()),
            ("bytes_in".into(), self.bytes_in.get()),
            ("bytes_out".into(), self.bytes_out.get()),
            ("batches".into(), self.batches.get()),
            ("records".into(), self.records.get()),
            ("mispredicts".into(), self.mispredicts.get()),
            ("low_confidence".into(), self.low_confidence.get()),
            ("protocol_errors".into(), self.protocol_errors_total()),
            // Rev 1.1 additions below this line.
            ("uptime_seconds".into(), self.uptime_seconds()),
        ];
        for (i, c) in self.protocol_errors.iter().enumerate() {
            out.push((format!("protocol_errors_{}", error_slot_name(i)), c.get()));
        }
        // Rev 1.2 additions below this line.
        out.push(("sessions_live".into(), self.sessions_live.get().max(0) as u64));
        out.push(("sessions_parked".into(), self.sessions_parked.get()));
        out.push(("sessions_resumed".into(), self.sessions_resumed.get()));
        out.push(("resume_attempts".into(), self.resume_attempts.get()));
        out.push(("resume_failures".into(), self.resume_failures.get()));
        out.push(("sessions_shed".into(), self.sessions_shed.get()));
        out.push(("park_evicted_ttl".into(), self.park_evicted_ttl.get()));
        out.push((
            "park_evicted_capacity".into(),
            self.park_evicted_capacity.get(),
        ));
        out.push((
            "sessions_idle_evicted".into(),
            self.sessions_idle_evicted.get(),
        ));
        // Rev 1.3 additions below this line.
        out.push(("park_spilled".into(), self.park_spilled.get()));
        out.push(("park_loaded".into(), self.park_loaded.get()));
        out.push(("park_store_full".into(), self.park_store_full.get()));
        out.push((
            "park_disk_records".into(),
            self.park_disk_records.get().max(0) as u64,
        ));
        out.push((
            "park_disk_bytes".into(),
            self.park_disk_bytes.get().max(0) as u64,
        ));
        out.push((
            "store_page_hits".into(),
            self.store_page_hits.get().max(0) as u64,
        ));
        out.push((
            "store_page_misses".into(),
            self.store_page_misses.get().max(0) as u64,
        ));
        // Rev 1.4 additions below this line.
        out.push((
            "store_recovery_ms".into(),
            self.store_recovery_ms.get().max(0) as u64,
        ));
        out.push(("park_bg_spilled".into(), self.park_bg_spilled.get()));
        out
    }

    /// Registers every instrument on `reg` under `server_*`/`session_*`
    /// names. Takes an [`Arc`] because the registry closures read the
    /// metrics on every scrape.
    pub fn register(self: &Arc<Self>, reg: &Registry) {
        // One clone per closure keeps each closure independent.
        let m = Arc::clone(self);
        reg.gauge(
            "server_uptime_seconds",
            "Whole seconds since the server started",
            move || m.uptime_seconds() as i64,
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_connections_total",
            "Connections ever accepted",
            move || m.connections_total.get(),
        );
        let m = Arc::clone(self);
        reg.gauge(
            "server_connections_active",
            "Connections currently open",
            move || m.connections_active.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_opened_total",
            "Sessions successfully negotiated",
            move || m.sessions_opened.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_reset_total",
            "Session resets performed",
            move || m.sessions_reset.get(),
        );
        let m = Arc::clone(self);
        reg.counter("server_frames_in_total", "Frames read from clients", move || {
            m.frames_in.get()
        });
        let m = Arc::clone(self);
        reg.counter(
            "server_frames_out_total",
            "Frames written to clients",
            move || m.frames_out.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_bytes_in_total",
            "Bytes of frame bodies read",
            move || m.bytes_in.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_bytes_out_total",
            "Bytes of frame bodies written",
            move || m.bytes_out.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "session_batches_total",
            "BATCH frames processed",
            move || m.batches.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "session_records_total",
            "Branch records scored and trained",
            move || m.records.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "session_mispredicts_total",
            "Mispredicted records",
            move || m.mispredicts.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "session_low_confidence_total",
            "Low-confidence records (key below the session threshold)",
            move || m.low_confidence.get(),
        );
        let m = Arc::clone(self);
        reg.histogram(
            "session_batch_records",
            "Records per BATCH frame",
            move || m.batch_records.snapshot(),
        );
        let m = Arc::clone(self);
        reg.histogram(
            "session_batch_service_us",
            "Wall-clock time to score one BATCH in microseconds",
            move || m.batch_service_us.snapshot(),
        );
        for slot in 0..ERROR_SLOTS {
            let m = Arc::clone(self);
            reg.counter_with(
                "server_protocol_errors_total",
                "Connections dropped for protocol violations, by error code",
                &[("code", error_slot_name(slot))],
                move || m.protocol_errors[slot].get(),
            );
        }
        // Rev 1.2: session resumption, shedding, and park instruments.
        let m = Arc::clone(self);
        reg.gauge(
            "server_sessions_live",
            "Sessions alive right now (attached or parked)",
            move || m.sessions_live.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_parked_total",
            "Sessions parked after an unclean disconnect",
            move || m.sessions_parked.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_resumed_total",
            "Sessions re-attached via RESUME",
            move || m.sessions_resumed.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_resume_attempts_total",
            "RESUME frames received, successful or not",
            move || m.resume_attempts.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_resume_failures_total",
            "RESUME frames that named no parked session",
            move || m.resume_failures.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_shed_total",
            "HELLOs shed with BUSY at session capacity",
            move || m.sessions_shed.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_park_evicted_ttl_total",
            "Parked sessions evicted by the TTL sweep",
            move || m.park_evicted_ttl.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_park_evicted_capacity_total",
            "Parked sessions evicted to make room for newer ones",
            move || m.park_evicted_capacity.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_sessions_idle_evicted_total",
            "Sessions closed by the idle timeout",
            move || m.sessions_idle_evicted.get(),
        );
        // Rev 1.3: durable park tier instruments.
        let m = Arc::clone(self);
        reg.counter(
            "server_park_spilled_total",
            "Parked sessions dropped from the hot tier with their disk copy kept",
            move || m.park_spilled.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_park_loaded_total",
            "Resumes served by decoding a disk checkpoint",
            move || m.park_loaded.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_park_store_full_total",
            "Parks refused because the disk tier was at capacity",
            move || m.park_store_full.get(),
        );
        let m = Arc::clone(self);
        reg.gauge(
            "server_park_disk_records",
            "Checkpoint records currently in the disk tier",
            move || m.park_disk_records.get(),
        );
        let m = Arc::clone(self);
        reg.gauge(
            "server_park_disk_bytes",
            "Bytes of live checkpoint pages in the disk tier",
            move || m.park_disk_bytes.get(),
        );
        let m = Arc::clone(self);
        reg.gauge(
            "server_store_page_hits",
            "Store buffer-pool page hits",
            move || m.store_page_hits.get(),
        );
        let m = Arc::clone(self);
        reg.gauge(
            "server_store_page_misses",
            "Store buffer-pool page misses (disk reads)",
            move || m.store_page_misses.get(),
        );
        // Rev 1.4: event-loop rearchitecture instruments.
        let m = Arc::clone(self);
        reg.gauge(
            "server_store_recovery_ms",
            "Wall-clock milliseconds of the startup park recovery scan",
            move || m.store_recovery_ms.get(),
        );
        let m = Arc::clone(self);
        reg.counter(
            "server_park_bg_spilled_total",
            "Hot parked sessions written to disk by the background spiller",
            move || m.park_bg_spilled.get(),
        );
        // Rev 1.5: build provenance and flight-recorder instruments.
        let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
            .map(|s| s.trim().to_owned())
            .unwrap_or_else(|_| "unknown".to_owned());
        reg.gauge_with(
            "build_info",
            "Build provenance; the value is always 1",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("rustc", env!("CIRA_RUSTC_VERSION")),
                ("kernel", &kernel),
            ],
            || 1,
        );
        reg.counter(
            "trace_events_recorded_total",
            "Flight-recorder span events recorded across all rings",
            || cira_obs::trace::stats().recorded,
        );
        reg.counter(
            "trace_events_dropped_total",
            "Flight-recorder span events overwritten by ring wrap",
            || cira_obs::trace::stats().dropped,
        );
    }
}

/// One event-loop shard's instruments (rev 1.4). Each shard owns one
/// block, updated lock-free from its own thread; the registry exposes
/// them as labeled series (`shard="N"`) under per-family names.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Connections currently registered on this shard.
    pub connections: Gauge,
    /// `epoll_wait` returns that delivered at least one event or wake.
    pub wakeups: Counter,
    /// Parsed frames queued across this shard's connections, waiting
    /// for the pump (ready-queue depth).
    pub ready_depth: Gauge,
    /// Bytes sitting in this shard's per-connection parse buffers.
    pub parse_buffer_bytes: Gauge,
    /// Connections handed off to another shard for session affinity.
    pub migrations_out: Counter,
}

/// Registers every shard's instruments on `reg` as `shard`-labeled
/// series: connections, epoll wakeups, ready-queue depth, and
/// parse-buffer bytes per shard.
pub fn register_shards(shards: &Arc<Vec<ShardMetrics>>, reg: &Registry) {
    for i in 0..shards.len() {
        let label = i.to_string();
        let labels: &[(&str, &str)] = &[("shard", &label)];
        let s = Arc::clone(shards);
        reg.gauge_with(
            "serve_shard_connections",
            "Connections currently registered on this shard",
            labels,
            move || s[i].connections.get(),
        );
        let s = Arc::clone(shards);
        reg.counter_with(
            "serve_shard_wakeups_total",
            "epoll_wait returns that delivered events on this shard",
            labels,
            move || s[i].wakeups.get(),
        );
        let s = Arc::clone(shards);
        reg.gauge_with(
            "serve_shard_ready_depth",
            "Parsed frames queued on this shard awaiting the pump",
            labels,
            move || s[i].ready_depth.get(),
        );
        let s = Arc::clone(shards);
        reg.gauge_with(
            "serve_shard_parse_buffer_bytes",
            "Bytes buffered in this shard's per-connection parse buffers",
            labels,
            move || s[i].parse_buffer_bytes.get(),
        );
        let s = Arc::clone(shards);
        reg.counter_with(
            "serve_shard_migrations_out_total",
            "Connections handed off to another shard for session affinity",
            labels,
            move || s[i].migrations_out.get(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServerMetrics::new();
        m.connections_total.inc();
        m.records.add(500);
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("connections_total"), 1);
        assert_eq!(get("records"), 500);
        assert_eq!(get("batches"), 0);
        // Names are unique and stable.
        let mut names: Vec<_> = snap.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), snap.len());
        // The original 13 rev-1.0 names still lead the payload.
        assert_eq!(snap[0].0, "connections_total");
        assert_eq!(snap[12].0, "protocol_errors");
    }

    #[test]
    fn protocol_errors_break_down_by_code() {
        let m = ServerMetrics::new();
        m.protocol_error(code::MALFORMED);
        m.protocol_error(code::MALFORMED);
        m.protocol_error(code::BAD_SPEC);
        m.protocol_error(0); // stall / disconnect
        m.protocol_error(999); // unknown codes fold into the stall slot
        assert_eq!(m.protocol_errors_total(), 5);
        assert_eq!(m.protocol_errors_for(code::MALFORMED), 2);
        assert_eq!(m.protocol_errors_for(code::BAD_SPEC), 1);
        assert_eq!(m.protocol_errors_for(0), 2);
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("protocol_errors"), 5);
        assert_eq!(get("protocol_errors_malformed"), 2);
        assert_eq!(get("protocol_errors_stalled"), 2);
        // The lump counter always equals the sum of the breakdown.
        let breakdown: u64 = (0..ERROR_SLOTS as u16)
            .map(|c| m.protocol_errors_for(c))
            .sum();
        assert_eq!(get("protocol_errors"), breakdown);
    }

    #[test]
    fn registry_covers_all_families() {
        let m = Arc::new(ServerMetrics::new());
        m.batches.inc();
        m.batch_records.record(1024);
        m.batch_service_us.record(250);
        m.protocol_error(code::OVERSIZED);
        let reg = Registry::new("cira");
        m.register(&reg);
        let text = reg.render();
        let doc = cira_obs::promtext::Exposition::parse_validated(&text).unwrap();
        assert_eq!(doc.value("cira_session_batches_total"), Some(1.0));
        assert_eq!(doc.histogram("cira_session_batch_records").unwrap().count, 1);
        assert_eq!(
            doc.histogram("cira_session_batch_service_us").unwrap().count,
            1
        );
        let errs = doc.family("cira_server_protocol_errors_total").unwrap();
        assert_eq!(errs.samples.len(), ERROR_SLOTS);
        assert!(text.contains("cira_server_protocol_errors_total{code=\"oversized\"} 1"));
    }

    #[test]
    fn resume_counters_in_snapshot_and_exposition() {
        let m = Arc::new(ServerMetrics::new());
        m.sessions_live.inc();
        m.sessions_parked.inc();
        m.sessions_resumed.inc();
        m.resume_attempts.add(2);
        m.resume_failures.inc();
        m.sessions_shed.add(3);
        m.park_evicted_ttl.inc();
        m.park_evicted_capacity.inc();
        m.sessions_idle_evicted.inc();
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("sessions_live"), 1);
        assert_eq!(get("sessions_parked"), 1);
        assert_eq!(get("sessions_resumed"), 1);
        assert_eq!(get("resume_attempts"), 2);
        assert_eq!(get("resume_failures"), 1);
        assert_eq!(get("sessions_shed"), 3);
        assert_eq!(get("park_evicted_ttl"), 1);
        assert_eq!(get("park_evicted_capacity"), 1);
        assert_eq!(get("sessions_idle_evicted"), 1);
        // And on the Prometheus side.
        let reg = Registry::new("cira");
        m.register(&reg);
        let text = reg.render();
        let doc = cira_obs::promtext::Exposition::parse_validated(&text).unwrap();
        assert_eq!(doc.value("cira_server_sessions_resumed_total"), Some(1.0));
        assert_eq!(doc.value("cira_server_sessions_shed_total"), Some(3.0));
        assert_eq!(doc.value("cira_server_resume_attempts_total"), Some(2.0));
        assert_eq!(doc.value("cira_server_sessions_parked_total"), Some(1.0));
        assert_eq!(doc.value("cira_server_sessions_live"), Some(1.0));
    }

    #[test]
    fn park_store_instruments_in_snapshot_and_exposition() {
        let m = Arc::new(ServerMetrics::new());
        m.park_spilled.add(4);
        m.park_loaded.add(2);
        m.park_store_full.inc();
        m.park_disk_records.set(7);
        m.park_disk_bytes.set(7 * 4096);
        m.store_page_hits.set(100);
        m.store_page_misses.set(9);
        m.protocol_error(code::STORE_FULL);
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("park_spilled"), 4);
        assert_eq!(get("park_loaded"), 2);
        assert_eq!(get("park_store_full"), 1);
        assert_eq!(get("park_disk_records"), 7);
        assert_eq!(get("park_disk_bytes"), 7 * 4096);
        assert_eq!(get("store_page_hits"), 100);
        assert_eq!(get("store_page_misses"), 9);
        assert_eq!(get("protocol_errors_store_full"), 1);
        let reg = Registry::new("cira");
        m.register(&reg);
        let text = reg.render();
        let doc = cira_obs::promtext::Exposition::parse_validated(&text).unwrap();
        assert_eq!(doc.value("cira_server_park_spilled_total"), Some(4.0));
        assert_eq!(doc.value("cira_server_park_loaded_total"), Some(2.0));
        assert_eq!(doc.value("cira_server_park_store_full_total"), Some(1.0));
        assert_eq!(doc.value("cira_server_park_disk_records"), Some(7.0));
        assert_eq!(doc.value("cira_server_store_page_hits"), Some(100.0));
        assert_eq!(doc.value("cira_server_store_page_misses"), Some(9.0));
        assert!(text.contains("cira_server_protocol_errors_total{code=\"store_full\"} 1"));
    }

    #[test]
    fn recovery_and_bg_spill_instruments() {
        let m = Arc::new(ServerMetrics::new());
        m.store_recovery_ms.set(42);
        m.park_bg_spilled.add(5);
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("store_recovery_ms"), 42);
        assert_eq!(get("park_bg_spilled"), 5);
        let reg = Registry::new("cira");
        m.register(&reg);
        let doc = cira_obs::promtext::Exposition::parse_validated(&reg.render()).unwrap();
        assert_eq!(doc.value("cira_server_store_recovery_ms"), Some(42.0));
        assert_eq!(doc.value("cira_server_park_bg_spilled_total"), Some(5.0));
    }

    #[test]
    fn shard_metrics_expose_labeled_series() {
        let shards = Arc::new(vec![ShardMetrics::default(), ShardMetrics::default()]);
        shards[0].connections.add(3);
        shards[0].wakeups.add(7);
        shards[1].ready_depth.set(2);
        shards[1].parse_buffer_bytes.set(512);
        shards[1].migrations_out.inc();
        let reg = Registry::new("cira");
        register_shards(&shards, &reg);
        let text = reg.render();
        let doc = cira_obs::promtext::Exposition::parse_validated(&text).unwrap();
        let conns = doc.family("cira_serve_shard_connections").unwrap();
        assert_eq!(conns.samples.len(), 2, "one series per shard");
        assert!(text.contains("cira_serve_shard_connections{shard=\"0\"} 3"));
        assert!(text.contains("cira_serve_shard_wakeups_total{shard=\"0\"} 7"));
        assert!(text.contains("cira_serve_shard_ready_depth{shard=\"1\"} 2"));
        assert!(text.contains("cira_serve_shard_parse_buffer_bytes{shard=\"1\"} 512"));
        assert!(text.contains("cira_serve_shard_migrations_out_total{shard=\"1\"} 1"));
    }

    #[test]
    fn uptime_is_monotone() {
        let m = ServerMetrics::new();
        let a = m.uptime_seconds();
        assert!(m.uptime_seconds() >= a);
        let snap = m.snapshot();
        assert!(snap.iter().any(|(n, _)| n == "uptime_seconds"));
    }
}
