//! Live server-wide metrics: lock-free atomic counters, readable at any
//! time via the `STATS` frame (and from process code via
//! [`ServerMetrics::snapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing everything the server has done since
/// start (plus one gauge, `connections_active`). All updates are
/// `Relaxed`: metrics are observational and never synchronize data.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Sessions successfully negotiated (HELLO accepted).
    pub sessions_opened: AtomicU64,
    /// Session resets performed.
    pub sessions_reset: AtomicU64,
    /// Frames read from clients.
    pub frames_in: AtomicU64,
    /// Frames written to clients.
    pub frames_out: AtomicU64,
    /// Bytes of frame bodies read.
    pub bytes_in: AtomicU64,
    /// Bytes of frame bodies written.
    pub bytes_out: AtomicU64,
    /// BATCH frames processed.
    pub batches: AtomicU64,
    /// Branch records scored and trained.
    pub records: AtomicU64,
    /// Mispredicted records.
    pub mispredicts: AtomicU64,
    /// Low-confidence records (key < session threshold).
    pub low_confidence: AtomicU64,
    /// Connections dropped for protocol violations (bad frames, bad
    /// specs, oversized frames, version mismatches, mid-frame stalls).
    pub protocol_errors: AtomicU64,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero is the caller's
    /// responsibility; pairs with an earlier increment).
    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// All counters as stable `(name, value)` pairs — the `STATS_REPLY`
    /// payload.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("connections_total".into(), read(&self.connections_total)),
            ("connections_active".into(), read(&self.connections_active)),
            ("sessions_opened".into(), read(&self.sessions_opened)),
            ("sessions_reset".into(), read(&self.sessions_reset)),
            ("frames_in".into(), read(&self.frames_in)),
            ("frames_out".into(), read(&self.frames_out)),
            ("bytes_in".into(), read(&self.bytes_in)),
            ("bytes_out".into(), read(&self.bytes_out)),
            ("batches".into(), read(&self.batches)),
            ("records".into(), read(&self.records)),
            ("mispredicts".into(), read(&self.mispredicts)),
            ("low_confidence".into(), read(&self.low_confidence)),
            ("protocol_errors".into(), read(&self.protocol_errors)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServerMetrics::new();
        ServerMetrics::inc(&m.connections_total);
        ServerMetrics::add(&m.records, 500);
        let snap = m.snapshot();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("connections_total"), 1);
        assert_eq!(get("records"), 500);
        assert_eq!(get("batches"), 0);
        // Names are unique and stable.
        let mut names: Vec<_> = snap.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), snap.len());
    }
}
