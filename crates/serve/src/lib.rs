//! `cira-serve` — an online streaming confidence service.
//!
//! Everything the offline [`cira_analysis`] engine computes in bulk, this
//! crate serves over TCP: a client opens a session, negotiates a branch
//! predictor and confidence mechanism (the same `spec` grammar the CLI
//! uses), streams branch outcomes in packed batches, and gets back
//! per-record predictions, high/low confidence assignments, and — at any
//! point — the session's accumulated [`cira_analysis::BucketStats`],
//! **bit-identical** to an offline run over the same records.
//!
//! Layering, bottom up:
//!
//! * [`event`] — `epoll(7)`/`eventfd(2)` readiness primitives via the
//!   same no-deps FFI style as the `signal(2)` shim in [`shutdown`];
//! * [`frame`] — length-prefixed framing: blocking reads with
//!   idle/stall discrimination for the client side, plus the
//!   incremental [`frame::FrameBuffer`] the nonblocking server parses
//!   from;
//! * [`proto`] — the typed `CIRS` v1 frames and their byte encodings;
//! * [`session`] — one client's isolated predictor + mechanism + stats;
//! * [`park`] — the bounded, TTL-evicting store of detached sessions
//!   awaiting a `RESUME` (rev 1.2); since rev 1.3 a **two-tier** store:
//!   parked sessions are checkpointed to a durable [`cira_store`] page
//!   file (when [`server::ServerConfig::park_dir`] is set), survive
//!   `kill -9`, and are recovered — bit-identically — by the next
//!   server process. Explicit `PARK` frames are write-through; teardown
//!   parks spill in the background from the shards' timer ticks (rev
//!   1.4);
//! * [`server`] — N sharded epoll event loops (thread-per-core, not
//!   thread-per-connection): nonblocking sockets with per-connection
//!   parse buffers and write queues, stable session affinity for
//!   resumes, batch execution on a shared
//!   [`cira_analysis::engine::pool::WorkerPool`] with completions waking
//!   the owning shard, backpressure, graceful drain, capacity shedding,
//!   and session parking;
//! * [`client`] — a blocking client with windowed batch pipelining,
//!   configured via [`client::ClientBuilder`], that transparently
//!   reconnects and resumes under a [`client::RetryPolicy`];
//! * [`chaos`] — a deterministic fault-injecting TCP proxy for tests;
//! * [`metrics`] — live server-wide counters, gauges, and latency
//!   histograms ([`cira_obs`] instruments), exposed three ways: the
//!   `STATS` frame (name/value pairs), the `METRICS` frame (Prometheus
//!   text over the wire), and HTTP `GET /metrics` when
//!   [`server::ServerConfig::metrics_addr`] is set. Since rev 1.5 the
//!   server also threads [`cira_obs::trace`] flight-recorder spans
//!   through every pipeline stage (accept → parse → checkout → score →
//!   complete → write, plus park spill/load and cross-shard migration),
//!   exported as Chrome trace JSON via `GET /trace`, the `TRACE_DUMP`
//!   frame, `SIGUSR1`, and automatic crash dumps
//!   ([`server::ServerConfig::trace`]);
//! * [`shutdown`] — a waitable token plus optional SIGINT/SIGTERM/SIGUSR1
//!   hooks.
//!
//! Networking is std-only: no async runtime, no registry dependencies.
//!
//! # Example
//!
//! ```
//! use cira_analysis::engine::pool::WorkerPool;
//! use cira_serve::client::Client;
//! use cira_serve::proto::HelloConfig;
//! use cira_serve::server::{serve, ServerConfig};
//! use cira_trace::codec::PackedTrace;
//! use cira_trace::suite::ibs_like_suite;
//!
//! let handle = serve("127.0.0.1:0", ServerConfig::default(), WorkerPool::global()).unwrap();
//! let addr = handle.local_addr().to_string();
//!
//! let trace: PackedTrace = ibs_like_suite()[0].walker().take(4096).collect();
//! let mut client = Client::connect(&addr, HelloConfig::default()).unwrap();
//! let totals = client.stream(&trace, 1024).unwrap();
//! assert_eq!(totals.records, 4096);
//! let stats = client.snapshot_stats().unwrap();
//! assert_eq!(stats.total_refs(), 4096.0);
//! client.goodbye().unwrap();
//! handle.shutdown_and_join();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use cira_obs;

pub mod chaos;
pub mod client;
pub mod event;
pub mod frame;
pub mod metrics;
pub mod park;
pub mod proto;
pub mod server;
pub mod session;
pub mod shutdown;

pub use client::{Client, ClientBuilder, ClientError, RetryPolicy, StreamTotals};
pub use proto::HelloConfig;
pub use server::{serve, ServerConfig, ServerHandle};
pub use shutdown::ShutdownToken;
