//! Golden equivalence and determinism tests for the execution engine.
//!
//! The engine's whole contract is that its trace cache + work-stealing
//! pool + batched replay kernel change *nothing* about the statistics:
//! every number must be bit-identical to walking each benchmark trace
//! sequentially through [`cira_analysis::runner`], and independent of the
//! worker count.

use cira_analysis::engine::Engine;
use cira_analysis::{runner, BucketStats, ConfusionCounts};
use cira_core::one_level::ResettingConfidence;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
use cira_predictor::Gshare;
use cira_trace::suite::{ibs_like_suite, Benchmark};

const TRACE_LENS: [u64; 2] = [10_000, 60_000];

fn suite3() -> Vec<Benchmark> {
    ibs_like_suite().into_iter().take(3).collect()
}

fn make_predictor() -> Gshare {
    Gshare::new(12, 12)
}

fn make_mechanism() -> ResettingConfidence {
    ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes)
}

fn make_estimator() -> ThresholdEstimator<ResettingConfidence> {
    ThresholdEstimator::new(make_mechanism(), LowRule::KeyBelow(8))
}

/// The sequential reference: fresh tables per benchmark, per-record loop,
/// no engine involved.
fn sequential_buckets(suite: &[Benchmark], len: u64) -> Vec<(String, BucketStats)> {
    suite
        .iter()
        .map(|bench| {
            let mut predictor = make_predictor();
            let mut mech = make_mechanism();
            (
                bench.name().to_owned(),
                runner::collect_mechanism_buckets(
                    bench.walker().take(len as usize),
                    &mut predictor,
                    &mut mech,
                ),
            )
        })
        .collect()
}

fn sequential_confusion(suite: &[Benchmark], len: u64) -> Vec<(String, ConfusionCounts)> {
    suite
        .iter()
        .map(|bench| {
            let mut predictor = make_predictor();
            let mut est = make_estimator();
            (
                bench.name().to_owned(),
                runner::run_estimator(
                    bench.walker().take(len as usize),
                    &mut predictor,
                    &mut est,
                ),
            )
        })
        .collect()
}

#[test]
fn engine_buckets_bit_identical_to_sequential_runner() {
    let suite = suite3();
    for len in TRACE_LENS {
        let reference = sequential_buckets(&suite, len);

        let engine = Engine::with_jobs(4);
        let out = engine
            .run_suite_mechanisms(&suite, len, make_predictor, || {
                vec![Box::new(make_mechanism()) as Box<dyn ConfidenceMechanism>]
            })
            .pop()
            .expect("one series");

        assert_eq!(out.per_benchmark.len(), reference.len());
        for ((en, es), (rn, rs)) in out.per_benchmark.iter().zip(&reference) {
            assert_eq!(en, rn, "len {len}: benchmark order");
            assert_eq!(es, rs, "len {len}, {en}: buckets must be bit-identical");
        }
        let combined = BucketStats::combine_equal_weight(reference.iter().map(|(_, s)| s));
        assert_eq!(out.combined, combined, "len {len}: combined buckets");
    }
}

#[test]
fn engine_confusion_counts_bit_identical_to_sequential_runner() {
    let suite = suite3();
    for len in TRACE_LENS {
        let reference = sequential_confusion(&suite, len);

        let engine = Engine::with_jobs(4);
        let (per, total) = engine.run_suite_estimator(&suite, len, make_predictor, make_estimator);

        assert_eq!(per, reference, "len {len}: per-benchmark confusion counts");
        let mut ref_total = ConfusionCounts::new();
        for (_, c) in &reference {
            ref_total.merge(c);
        }
        assert_eq!(total, ref_total, "len {len}: summed confusion counts");
    }
}

#[test]
fn engine_results_independent_of_worker_count() {
    let suite = suite3();
    let len = 30_000;

    // CIRA_JOBS affects only the global engine; pin both counts explicitly.
    let serial = Engine::with_jobs(1);
    let wide = Engine::with_jobs(
        std::thread::available_parallelism()
            .map(|n| n.get().max(4))
            .unwrap_or(4),
    );

    let run = |engine: &Engine| {
        engine
            .run_suite_mechanisms(&suite, len, make_predictor, || {
                vec![Box::new(make_mechanism()) as Box<dyn ConfidenceMechanism>]
            })
            .pop()
            .expect("one series")
    };
    let a = run(&serial);
    let b = run(&wide);

    assert_eq!(a.combined, b.combined);
    assert_eq!(a.per_benchmark, b.per_benchmark);

    let (pa, ta) = serial.run_suite_estimator(&suite, len, make_predictor, make_estimator);
    let (pb, tb) = wide.run_suite_estimator(&suite, len, make_predictor, make_estimator);
    assert_eq!(pa, pb);
    assert_eq!(ta, tb);
}

#[test]
fn engine_grid_rows_match_single_config_runs() {
    // A multi-config grid must reproduce each configuration's standalone
    // result — shared trace buffers must not leak state across tasks.
    let suite = suite3();
    let len = 20_000;
    let maxes = [8u32, 16];

    let engine = Engine::with_jobs(3);
    let grid = engine.run_grid(
        &suite,
        len,
        &maxes,
        |_| make_predictor(),
        |&max| {
            vec![Box::new(ResettingConfidence::new(
                IndexSpec::pc_xor_bhr(12),
                max,
                InitPolicy::AllOnes,
            )) as Box<dyn ConfidenceMechanism>]
        },
    );

    for (&max, row) in maxes.iter().zip(&grid) {
        let reference: Vec<(String, BucketStats)> = suite
            .iter()
            .map(|bench| {
                let mut predictor = make_predictor();
                let mut mech =
                    ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), max, InitPolicy::AllOnes);
                (
                    bench.name().to_owned(),
                    runner::collect_mechanism_buckets(
                        bench.walker().take(len as usize),
                        &mut predictor,
                        &mut mech,
                    ),
                )
            })
            .collect();
        assert_eq!(row[0].per_benchmark, reference, "max {max}");
    }
}
