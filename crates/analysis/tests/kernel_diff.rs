//! Scalar-vs-vector differential suite for the batched replay kernel.
//!
//! The vectorized kernel — lane-parallel history fill, SWAR pattern
//! tables, batched mechanism observe — must be **bit-identical** to the
//! per-record scalar loop for every predictor, mechanism, index function,
//! and initialization policy, at every trace length (including the chunk
//! boundary cases 0, 1, CHUNK−1, CHUNK, CHUNK+1 and lengths that are not
//! multiples of the 64-record lane group).
//!
//! The scalar side is pinned with [`ScalarKernel`] / [`ScalarObserve`],
//! which suppress the batched overrides so the trait-default per-record
//! loops run over the same driver. A seeded randomized sweep then samples
//! the spec grammar more broadly than the deterministic grid.

use cira_analysis::engine::replay::{replay_mechanisms, replay_predictor, StreamingReplay};
use cira_analysis::spec::{parse_init, parse_mechanism, parse_predictor, IndexForm};
use cira_core::{ConfidenceMechanism, ScalarObserve};
use cira_predictor::ScalarKernel;
use cira_trace::codec::PackedTrace;
use cira_trace::BranchRecord;

/// Mirrors the kernel's private chunk size; boundary lengths below assume
/// it. If the kernel's CHUNK changes, these still exercise interesting
/// splits — they just stop sitting exactly on the boundary.
const CHUNK: usize = 4096;

/// Lengths that historically break batched kernels: empty, single record,
/// one less / exactly / one more than a chunk, and a length that is
/// neither a chunk nor a lane-group multiple.
const LENGTHS: [usize; 6] = [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 777];

const PREDICTORS: [&str; 10] = [
    "gshare:10:10",
    "gshare:10:6",
    "gselect:10:4",
    "bimodal:10",
    "local:8:6",
    "agree:10:10:8",
    // TAGE-class: no batch override — runs the trait-default scalar loop
    // on both sides, so this checks the engine's chunking/BHR plumbing
    // around a provider-aware predictor (DESIGN.md §11).
    "tage:10:4:2:32:9",
    "tage-sc-lite:10:4:2:32:9",
    "taken",
    "not-taken",
];

const MECHANISMS: [&str; 6] = [
    "cir:8",
    "ones-count:8",
    "saturating:16",
    "resetting:16",
    "two-level:pcxorbhr-cir",
    // Shadow-predictor mechanism: also scalar on both sides.
    "self:tage:10:4:2:32:9",
];

const INDICES: [&str; 5] = ["pc:10", "bhr:10", "pcxorbhr:10", "pcconcatbhr:10", "gcir:6"];

const INITS: [&str; 4] = ["ones", "zeros", "lastbit", "random:7"];

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed.max(1);
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// A synthetic trace with a small hot site set and per-site bias, so
/// pattern tables see both aliasing and learnable behavior.
fn synth_trace(seed: u64, len: usize) -> PackedTrace {
    let mut rng = xorshift(seed);
    (0..len)
        .map(|_| {
            let site = rng() % 97;
            let pc = 0x40_0000 + (site << 2);
            // Bias depends on the site: some near-always-taken, some noisy.
            let taken = rng() % 100 < 20 + (site * 7) % 75;
            BranchRecord::new(pc, taken)
        })
        .collect()
}

/// Runs one spec combination through the vectorized kernel and through the
/// scalar-pinned reference, asserting bit-identical buckets and run stats.
fn assert_scalar_vector_equal(
    trace: &PackedTrace,
    len: usize,
    predictor: &str,
    mechanism: &str,
    index: &str,
    init: &str,
) {
    let label = format!("{predictor} / {mechanism} @ {index} init {init} len {len}");
    let idx = || index.parse::<IndexForm>().unwrap().build();
    let pol = parse_init(init).unwrap();

    let mut vec_p = parse_predictor(predictor).unwrap();
    let mut vec_m = parse_mechanism(mechanism, idx(), pol).unwrap();
    let mut vec_refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut vec_m];
    let vectorized = replay_mechanisms(trace, len, &mut vec_p, &mut vec_refs).remove(0);

    let mut sc_p = ScalarKernel(parse_predictor(predictor).unwrap());
    let mut sc_m = ScalarObserve(parse_mechanism(mechanism, idx(), pol).unwrap());
    let mut sc_refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut sc_m];
    let scalar = replay_mechanisms(trace, len, &mut sc_p, &mut sc_refs).remove(0);

    assert_eq!(vectorized, scalar, "buckets diverge: {label}");

    let vec_run = replay_predictor(trace, len, &mut parse_predictor(predictor).unwrap());
    let sc_run = replay_predictor(
        trace,
        len,
        &mut ScalarKernel(parse_predictor(predictor).unwrap()),
    );
    assert_eq!(vec_run, sc_run, "predictor run diverges: {label}");
}

/// The deterministic grid: every predictor × mechanism × init at every
/// boundary length, over the fast-path index (PC⊕BHR).
#[test]
fn full_grid_boundary_lengths() {
    let trace = synth_trace(0xC1AA, CHUNK + 1);
    for predictor in PREDICTORS {
        for mechanism in MECHANISMS {
            for init in INITS {
                for len in LENGTHS {
                    assert_scalar_vector_equal(
                        &trace,
                        len,
                        predictor,
                        mechanism,
                        "pcxorbhr:10",
                        init,
                    );
                }
            }
        }
    }
}

/// Every index function — including the CIR-indexed forms that must take
/// the scalar interpreter path inside the mechanisms' batch loops.
#[test]
fn index_functions_cover_fast_and_slow_paths() {
    let trace = synth_trace(0xBEEF, CHUNK + 1);
    for index in INDICES {
        for mechanism in ["cir:8", "saturating:16", "resetting:16"] {
            assert_scalar_vector_equal(&trace, CHUNK + 1, "gshare:10:10", mechanism, index, "ones");
            assert_scalar_vector_equal(&trace, 777, "gshare:10:10", mechanism, index, "lastbit");
        }
    }
}

/// Seeded randomized sweep: ≥32 random spec/length combinations sampled
/// from the full grammar, so the grid's fixed points don't become the only
/// shapes the kernel is ever tested against. Deterministic seed — failures
/// reproduce exactly.
#[test]
fn randomized_spec_sweep() {
    let mut rng = xorshift(0x5EED_2026);
    let trace = synth_trace(0xF00D, 6 * 1024);
    for round in 0..32 {
        let predictor = PREDICTORS[rng() as usize % PREDICTORS.len()];
        let mechanism = MECHANISMS[rng() as usize % MECHANISMS.len()];
        let index = INDICES[rng() as usize % INDICES.len()];
        let init = INITS[rng() as usize % INITS.len()];
        let len = (rng() % (6 * 1024 + 1)) as usize;
        eprintln!("round {round}: {predictor} {mechanism} {index} {init} len {len}");
        assert_scalar_vector_equal(&trace, len, predictor, mechanism, index, init);
    }
}

/// Streaming replay fed in random batch splits must match the offline
/// scalar reference — the kernel, the chunking, and the BHR carry across
/// batch boundaries all at once.
#[test]
fn streaming_random_splits_match_scalar_reference() {
    let mut rng = xorshift(0x57_EA_11);
    let n = 10_000;
    let trace = synth_trace(0xCAFE, n);

    let idx = || "pcxorbhr:10".parse::<IndexForm>().unwrap().build();
    let pol = parse_init("ones").unwrap();

    for (predictor, mechanism) in [
        ("gshare:10:10", "resetting:16"),
        ("agree:10:10:8", "cir:8"),
        ("bimodal:10", "saturating:16"),
        ("local:8:6", "two-level:pcxorbhr-cir"),
        ("tage:10:4:2:32:9", "resetting:16"),
        ("tage-sc-lite:10:4:2:32:9", "self:tage-sc-lite:10:4:2:32:9"),
    ] {
        // Offline scalar reference over the whole trace.
        let mut sc_p = ScalarKernel(parse_predictor(predictor).unwrap());
        let mut sc_m = ScalarObserve(parse_mechanism(mechanism, idx(), pol).unwrap());
        let mut sc_refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut sc_m];
        let reference = replay_mechanisms(&trace, n, &mut sc_p, &mut sc_refs).remove(0);
        let ref_run = replay_predictor(
            &trace,
            n,
            &mut ScalarKernel(parse_predictor(predictor).unwrap()),
        );

        // Vectorized streaming side, fed in random uneven splits
        // (occasionally zero-length) with fresh state per split pattern.
        for trial in 0..4 {
            let mut streaming = StreamingReplay::new(
                parse_predictor(predictor).unwrap(),
                parse_mechanism(mechanism, idx(), pol).unwrap(),
            );
            let mut at = 0;
            while at < n {
                let len = match rng() % 5 {
                    0 => 0,
                    1 => 1 + (rng() % 64) as usize,
                    2 => CHUNK + (rng() % 128) as usize,
                    _ => 1 + (rng() % 3000) as usize,
                }
                .min(n - at);
                let batch: PackedTrace = (at..at + len).map(|i| trace.get(i).unwrap()).collect();
                streaming.feed(&batch);
                at += len;
            }
            let label = format!("{predictor} / {mechanism} trial {trial}");
            assert_eq!(streaming.stats(), &reference, "streaming stats: {label}");
            assert_eq!(streaming.run(), ref_run, "streaming run: {label}");
        }
    }
}
