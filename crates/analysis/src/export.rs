//! Result export: CSV files and quick ASCII plots.
//!
//! Every figure binary in `cira-bench` writes a long-format CSV (one row
//! per curve point, tagged with its series name) into `results/` and also
//! prints an ASCII rendition so the curve shapes are visible directly in a
//! terminal.

use std::io::{self, Write};
use std::path::Path;

use crate::curve::{CoverageCurve, CurvePoint};

/// Writes curves in long CSV format:
/// `series,pct_branches,pct_mispredicts,key,bucket_miss_rate`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_curves_csv<W: Write>(
    mut writer: W,
    curves: &[(&str, &CoverageCurve)],
) -> io::Result<()> {
    writeln!(
        writer,
        "series,pct_branches,pct_mispredicts,key,bucket_miss_rate"
    )?;
    for (name, curve) in curves {
        for p in curve.points() {
            writeln!(
                writer,
                "{},{:.4},{:.4},{},{:.6}",
                name, p.pct_branches, p.pct_mispredicts, p.key, p.bucket_miss_rate
            )?;
        }
    }
    Ok(())
}

/// Writes curves to a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_curves_csv<P: AsRef<Path>>(
    path: P,
    curves: &[(&str, &CoverageCurve)],
) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_curves_csv(io::BufWriter::new(file), curves)
}

/// Renders one or more coverage curves as an ASCII chart
/// (x: % dynamic branches, y: % mispredictions; both 0–100).
///
/// Each series is drawn with its own symbol, assigned in order from
/// `SYMBOLS`; later series overwrite earlier ones where they collide.
#[allow(clippy::needless_range_loop)] // `col` addresses a computed row per step
pub fn ascii_chart(curves: &[(&str, &CoverageCurve)], width: usize, height: usize) -> String {
    const SYMBOLS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = width.max(20);
    let height = height.max(8);
    let mut grid = vec![vec![' '; width]; height];

    for (si, (_, curve)) in curves.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        // Sample the interpolated curve at every column for a continuous
        // line, then overlay actual points.
        for col in 0..width {
            let x = 100.0 * col as f64 / (width - 1) as f64;
            let y = curve.coverage_at(x);
            let row = ((100.0 - y) / 100.0 * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = sym;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let ylabel = if i == 0 {
            "100 "
        } else if i == height - 1 {
            "  0 "
        } else if i == height / 2 {
            " 50 "
        } else {
            "    "
        };
        out.push_str(ylabel);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("     0%");
    let pad = width.saturating_sub(14);
    out.push_str(&" ".repeat(pad / 2));
    out.push_str("% dynamic branches");
    out.push_str(&" ".repeat(pad.saturating_sub(pad / 2).saturating_sub(11)));
    out.push_str("100%\n");
    let mut legend = String::from("    ");
    for (si, (name, _)) in curves.iter().enumerate() {
        legend.push_str(&format!(" {}={}", SYMBOLS[si % SYMBOLS.len()], name));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

/// Formats the paper-style summary line for a curve: coverage at a given
/// branch budget.
pub fn coverage_summary(name: &str, curve: &CoverageCurve, budget_pct: f64) -> String {
    format!(
        "{name}: {:.1}% of mispredictions in the lowest-confidence {budget_pct:.0}% of branches (miss rate {:.2}%)",
        curve.coverage_at(budget_pct),
        100.0 * curve.miss_rate()
    )
}

/// Convenience for printing thinned point lists (the paper's "points that
/// differ by 2.5%" plotting rule).
pub fn format_points(points: &[CurvePoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&format!(
            "  ({:6.2}, {:6.2})  key={:<8} rate={:.4}\n",
            p.pct_branches, p.pct_mispredicts, p.key, p.bucket_miss_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::BucketStats;

    fn curve() -> CoverageCurve {
        let mut s = BucketStats::new();
        for i in 0..100u64 {
            s.observe(i % 5, i % 7 == 0);
        }
        CoverageCurve::from_buckets(&s)
    }

    #[test]
    fn csv_round_shape() {
        let c = curve();
        let mut buf = Vec::new();
        write_curves_csv(&mut buf, &[("a", &c), ("b", &c)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * c.points().len());
        assert!(lines[0].starts_with("series,"));
        assert!(lines[1].starts_with("a,"));
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("cira_export_test");
        let path = dir.join("nested").join("x.csv");
        let c = curve();
        save_curves_csv(&path, &[("s", &c)]).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_chart_has_requested_dimensions() {
        let c = curve();
        let chart = ascii_chart(&[("s", &c)], 40, 12);
        let lines: Vec<&str> = chart.lines().collect();
        // height rows + axis + label + legend
        assert_eq!(lines.len(), 12 + 3);
        assert!(lines[0].starts_with("100 |"));
        assert!(chart.contains("*=s"));
    }

    #[test]
    fn ascii_chart_clamps_tiny_dimensions() {
        let c = curve();
        let chart = ascii_chart(&[("s", &c)], 1, 1);
        assert!(chart.lines().count() >= 8);
    }

    #[test]
    fn summary_mentions_name_and_coverage() {
        let c = curve();
        let s = coverage_summary("test", &c, 20.0);
        assert!(s.starts_with("test:"));
        assert!(s.contains("20%"));
    }

    #[test]
    fn format_points_lists_all() {
        let c = curve();
        let text = format_points(c.points());
        assert_eq!(text.lines().count(), c.points().len());
    }
}
