//! Confusion-matrix metrics for online high/low confidence estimators.
//!
//! The paper evaluates confidence sets with coverage curves; follow-on work
//! (Grunwald, Klauser, Manne & Pleszkun, ISCA 1998) standardized four
//! derived metrics which we also report, treating "low confidence" as the
//! positive class for misprediction detection:
//!
//! * **SENS** (sensitivity) — fraction of mispredictions flagged low.
//! * **SPEC** (specificity) — fraction of correct predictions flagged high.
//! * **PVN** (predictive value of a negative/low signal) — probability a
//!   low-confidence prediction is actually wrong.
//! * **PVP** (predictive value of a positive/high signal) — probability a
//!   high-confidence prediction is actually right.

use std::fmt;

use cira_core::Confidence;

/// Counts of (confidence signal × prediction correctness) outcomes.
///
/// # Examples
///
/// ```
/// use cira_analysis::ConfusionCounts;
/// use cira_core::Confidence;
///
/// let mut c = ConfusionCounts::new();
/// c.observe(Confidence::Low, false);  // flagged low, mispredicted: good
/// c.observe(Confidence::High, true);  // flagged high, correct: good
/// assert_eq!(c.sensitivity(), 1.0);
/// assert_eq!(c.specificity(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// High-confidence predictions that were correct.
    pub high_correct: u64,
    /// High-confidence predictions that were mispredicted (missed).
    pub high_incorrect: u64,
    /// Low-confidence predictions that were correct (false alarms).
    pub low_correct: u64,
    /// Low-confidence predictions that were mispredicted (caught).
    pub low_incorrect: u64,
}

impl ConfusionCounts {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction with its confidence signal and correctness.
    pub fn observe(&mut self, confidence: Confidence, correct: bool) {
        match (confidence, correct) {
            (Confidence::High, true) => self.high_correct += 1,
            (Confidence::High, false) => self.high_incorrect += 1,
            (Confidence::Low, true) => self.low_correct += 1,
            (Confidence::Low, false) => self.low_incorrect += 1,
        }
    }

    /// Total predictions observed.
    pub fn total(&self) -> u64 {
        self.high_correct + self.high_incorrect + self.low_correct + self.low_incorrect
    }

    /// Total mispredictions observed.
    pub fn total_incorrect(&self) -> u64 {
        self.high_incorrect + self.low_incorrect
    }

    /// Fraction of all predictions flagged low confidence — the size of
    /// the low-confidence set (the paper's x-axis).
    pub fn low_fraction(&self) -> f64 {
        ratio(self.low_correct + self.low_incorrect, self.total())
    }

    /// Fraction of all mispredictions captured in the low-confidence set —
    /// the paper's y-axis. Equals [`sensitivity`](Self::sensitivity).
    pub fn mispredict_coverage(&self) -> f64 {
        self.sensitivity()
    }

    /// SENS: mispredictions flagged low / all mispredictions.
    pub fn sensitivity(&self) -> f64 {
        ratio(self.low_incorrect, self.total_incorrect())
    }

    /// SPEC: correct predictions flagged high / all correct predictions.
    pub fn specificity(&self) -> f64 {
        ratio(self.high_correct, self.high_correct + self.low_correct)
    }

    /// PVN: low-confidence predictions that were wrong / all low flags.
    pub fn pvn(&self) -> f64 {
        ratio(self.low_incorrect, self.low_incorrect + self.low_correct)
    }

    /// PVP: high-confidence predictions that were right / all high flags.
    pub fn pvp(&self) -> f64 {
        ratio(self.high_correct, self.high_correct + self.high_incorrect)
    }

    /// Overall misprediction rate of the underlying predictor.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.total_incorrect(), self.total())
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &ConfusionCounts) {
        self.high_correct += other.high_correct;
        self.high_incorrect += other.high_incorrect;
        self.low_correct += other.low_correct;
        self.low_incorrect += other.low_incorrect;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConfusionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "low set {:.1}% | coverage {:.1}% | PVN {:.3} PVP {:.4} SENS {:.3} SPEC {:.3}",
            100.0 * self.low_fraction(),
            100.0 * self.mispredict_coverage(),
            self.pvn(),
            self.pvp(),
            self.sensitivity(),
            self.specificity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionCounts {
        ConfusionCounts {
            high_correct: 900,
            high_incorrect: 10,
            low_correct: 60,
            low_incorrect: 30,
        }
    }

    #[test]
    fn totals() {
        let c = sample();
        assert_eq!(c.total(), 1000);
        assert_eq!(c.total_incorrect(), 40);
        assert!((c.miss_rate() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn axes() {
        let c = sample();
        assert!((c.low_fraction() - 0.09).abs() < 1e-12);
        assert!((c.mispredict_coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn grunwald_metrics() {
        let c = sample();
        assert!((c.sensitivity() - 30.0 / 40.0).abs() < 1e-12);
        assert!((c.specificity() - 900.0 / 960.0).abs() < 1e-12);
        assert!((c.pvn() - 30.0 / 90.0).abs() < 1e-12);
        assert!((c.pvp() - 900.0 / 910.0).abs() < 1e-12);
    }

    #[test]
    fn observe_routes_correctly() {
        let mut c = ConfusionCounts::new();
        c.observe(Confidence::High, true);
        c.observe(Confidence::High, false);
        c.observe(Confidence::Low, true);
        c.observe(Confidence::Low, false);
        assert_eq!(
            c,
            ConfusionCounts {
                high_correct: 1,
                high_incorrect: 1,
                low_correct: 1,
                low_incorrect: 1
            }
        );
    }

    #[test]
    fn empty_counts_yield_zero_ratios() {
        let c = ConfusionCounts::new();
        assert_eq!(c.sensitivity(), 0.0);
        assert_eq!(c.pvn(), 0.0);
        assert_eq!(c.low_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total(), 2000);
        assert_eq!(a.low_incorrect, 60);
    }

    #[test]
    fn display_mentions_metrics() {
        let s = sample().to_string();
        assert!(s.contains("PVN") && s.contains("coverage"), "{s}");
    }
}

/// Leave-one-out (jackknife) summary of a per-benchmark statistic: mean
/// and standard error across benchmarks.
///
/// The paper reports suite averages without error bars; Fig. 9 shows the
/// spread matters. This helper quantifies it: pass one value per
/// benchmark (e.g. coverage at the 20% budget) and report `mean ± se`.
///
/// # Examples
///
/// ```
/// use cira_analysis::metrics::jackknife;
///
/// let (mean, se) = jackknife(&[80.0, 82.0, 84.0]);
/// assert!((mean - 82.0).abs() < 1e-12);
/// assert!(se > 0.0);
/// ```
pub fn jackknife(values: &[f64]) -> (f64, f64) {
    let n = values.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    // Leave-one-out means.
    let total: f64 = values.iter().sum();
    let loo: Vec<f64> = values
        .iter()
        .map(|v| (total - v) / (n - 1) as f64)
        .collect();
    let loo_mean = loo.iter().sum::<f64>() / n as f64;
    let var = loo.iter().map(|m| (m - loo_mean).powi(2)).sum::<f64>() * (n - 1) as f64 / n as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod jackknife_tests {
    use super::jackknife;

    #[test]
    fn empty_and_single() {
        assert_eq!(jackknife(&[]), (0.0, 0.0));
        assert_eq!(jackknife(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn constant_values_have_zero_error() {
        let (mean, se) = jackknife(&[3.0; 10]);
        assert_eq!(mean, 3.0);
        assert!(se.abs() < 1e-12);
    }

    #[test]
    fn matches_standard_error_for_iid_samples() {
        // For the plain mean, jackknife SE equals the classic s/sqrt(n).
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (mean, se) = jackknife(&v);
        assert!((mean - 3.5).abs() < 1e-12);
        let s2 = v.iter().map(|x| (x - 3.5f64).powi(2)).sum::<f64>() / 5.0;
        let classic = (s2 / 6.0).sqrt();
        assert!((se - classic).abs() < 1e-9, "jk {se} vs classic {classic}");
    }

    #[test]
    fn wider_spread_gives_larger_error() {
        let (_, tight) = jackknife(&[10.0, 10.1, 9.9]);
        let (_, wide) = jackknife(&[5.0, 15.0, 10.0]);
        assert!(wide > tight);
    }
}
