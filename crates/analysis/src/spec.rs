//! Textual specifications for predictors, confidence mechanisms, and index
//! functions, e.g. `gshare:16:16`, `resetting:16`, `pcxorbhr:12`.
//!
//! This grammar is the configuration surface shared by the `cira` CLI and
//! the `cira-serve` wire protocol's `HELLO` negotiation: both sides parse
//! the same strings into the same structures, and every malformed spec is
//! a recoverable [`SpecError`] (never a panic), so a bad `HELLO` can be
//! rejected per-connection.
//!
//! Each grammar has a typed form ([`PredictorSpec`], [`IndexForm`],
//! [`InitSpec`], [`MechanismSpec`]) whose [`FromStr`] accepts every
//! spelling the grammar allows and whose [`Display`](fmt::Display)
//! renders the canonical one — so `s.parse()?.to_string()` normalizes a
//! spec (shorthands like `gshare64k` included), and
//! `display(x).parse() == x` holds for every form (the round-trip
//! property the tests drive from an exhaustive table). The historical
//! `parse_*` functions validate a string and build the simulator object
//! in one step.

use std::fmt;
use std::str::FromStr;

use cira_core::one_level::{MappedKey, OneLevelCir, ResettingConfidence, SaturatingConfidence};
use cira_core::two_level::TwoLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy, SelfConfidence};
use cira_predictor::{
    Agree, Bimodal, BranchPredictor, GSelect, Gshare, LocalTwoLevel, StaticDirection, Tage,
    TageScLite,
};

/// Error for unparseable specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What kind of spec was being parsed.
    pub kind: &'static str,
    /// The offending input.
    pub input: String,
    /// Accepted forms.
    pub usage: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} spec {:?}; expected one of: {}",
            self.kind, self.input, self.usage
        )
    }
}

impl std::error::Error for SpecError {}

fn err(kind: &'static str, input: &str, usage: &'static str) -> SpecError {
    cira_obs::debug!("spec rejected", kind = kind, input = input);
    SpecError {
        kind,
        input: input.to_owned(),
        usage,
    }
}

fn split(input: &str) -> (&str, Vec<&str>) {
    let mut parts = input.split(':');
    let head = parts.next().unwrap_or("");
    (head, parts.collect())
}

fn parse_bits(
    raw: &str,
    kind: &'static str,
    input: &str,
    usage: &'static str,
) -> Result<u32, SpecError> {
    raw.parse::<u32>()
        .ok()
        .filter(|b| (1..=28).contains(b))
        .ok_or_else(|| err(kind, input, usage))
}

/// A validated predictor specification; see [`parse_predictor`] for the
/// grammar. `Display` renders the canonical string (shorthands like
/// `gshare64k` normalize to their explicit form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// `gshare:<table_bits>:<history_bits>`
    Gshare {
        /// log2 table entries.
        table_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// `gselect:<table_bits>:<history_bits>`
    GSelect {
        /// log2 table entries.
        table_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// `bimodal:<bits>`
    Bimodal {
        /// log2 table entries.
        bits: u32,
    },
    /// `local:<bht_bits>:<hist_bits>`
    Local {
        /// log2 BHT entries.
        bht_bits: u32,
        /// Per-branch history length.
        history_bits: u32,
    },
    /// `agree:<table_bits>:<history_bits>:<bias_bits>`
    Agree {
        /// log2 direction-table entries.
        table_bits: u32,
        /// Global history length.
        history_bits: u32,
        /// log2 bias-table entries.
        bias_bits: u32,
    },
    /// `tage:<base_bits>:<ncomp>:<minlen>:<maxlen>[:tag_bits]`
    Tage {
        /// log2 base-bimodal entries (tagged components get 2 fewer bits).
        base_bits: u32,
        /// Number of tagged components (2..=12).
        ncomp: u32,
        /// Shortest geometric history length.
        min_len: u32,
        /// Longest geometric history length (<= 64, the driver BHR width).
        max_len: u32,
        /// Partial-tag width (4..=15; defaults to 11 when omitted).
        tag_bits: u32,
    },
    /// `tage-sc-lite:<base_bits>:<ncomp>:<minlen>:<maxlen>[:tag_bits]`
    TageScLite {
        /// log2 base-bimodal entries (tagged components get 2 fewer bits).
        base_bits: u32,
        /// Number of tagged components (2..=12).
        ncomp: u32,
        /// Shortest geometric history length.
        min_len: u32,
        /// Longest geometric history length (<= 64, the driver BHR width).
        max_len: u32,
        /// Partial-tag width (4..=15; defaults to 11 when omitted).
        tag_bits: u32,
    },
    /// `taken`
    Taken,
    /// `not-taken`
    NotTaken,
}

const PREDICTOR_USAGE: &str = "gshare:T:H, gshare64k, gshare4k, bimodal:B, gselect:T:H, \
                               local:B:H, agree:T:H:B, tage:B:N:MIN:MAX[:TAG], \
                               tage-sc-lite:B:N:MIN:MAX[:TAG], tage64k, tage-sc-lite64k, \
                               taken, not-taken";

/// TAGE defaults and bounds shared by the parser and the builders; the
/// parser mirrors [`Tage::new`]'s panics as recoverable [`SpecError`]s so
/// a hostile `HELLO` can never abort a server.
const TAGE_DEFAULT_TAG_BITS: u32 = 11;

/// Validates the TAGE parameter tuple, returning it on success.
fn check_tage(
    input: &str,
    base_bits: u32,
    ncomp: u32,
    min_len: u32,
    max_len: u32,
    tag_bits: u32,
) -> Result<(u32, u32, u32, u32, u32), SpecError> {
    let ok = (3..=28).contains(&base_bits)
        && (2..=12).contains(&ncomp)
        && (4..=15).contains(&tag_bits)
        && min_len >= 1
        && min_len < max_len
        && max_len <= 64
        && max_len - min_len + 1 >= ncomp;
    if ok {
        Ok((base_bits, ncomp, min_len, max_len, tag_bits))
    } else {
        Err(err("predictor", input, PREDICTOR_USAGE))
    }
}

impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => write!(f, "gshare:{table_bits}:{history_bits}"),
            PredictorSpec::GSelect {
                table_bits,
                history_bits,
            } => write!(f, "gselect:{table_bits}:{history_bits}"),
            PredictorSpec::Bimodal { bits } => write!(f, "bimodal:{bits}"),
            PredictorSpec::Local {
                bht_bits,
                history_bits,
            } => write!(f, "local:{bht_bits}:{history_bits}"),
            PredictorSpec::Agree {
                table_bits,
                history_bits,
                bias_bits,
            } => write!(f, "agree:{table_bits}:{history_bits}:{bias_bits}"),
            PredictorSpec::Tage {
                base_bits,
                ncomp,
                min_len,
                max_len,
                tag_bits,
            } => write!(f, "tage:{base_bits}:{ncomp}:{min_len}:{max_len}:{tag_bits}"),
            PredictorSpec::TageScLite {
                base_bits,
                ncomp,
                min_len,
                max_len,
                tag_bits,
            } => write!(
                f,
                "tage-sc-lite:{base_bits}:{ncomp}:{min_len}:{max_len}:{tag_bits}"
            ),
            PredictorSpec::Taken => write!(f, "taken"),
            PredictorSpec::NotTaken => write!(f, "not-taken"),
        }
    }
}

impl FromStr for PredictorSpec {
    type Err = SpecError;

    fn from_str(input: &str) -> Result<Self, SpecError> {
        let kind = "predictor";
        let (head, rest) = split(input);
        let bits = |raw| parse_bits(raw, kind, input, PREDICTOR_USAGE);
        match (head, rest.as_slice()) {
            ("gshare64k", []) => Ok(PredictorSpec::Gshare {
                table_bits: 16,
                history_bits: 16,
            }),
            ("gshare4k", []) => Ok(PredictorSpec::Gshare {
                table_bits: 12,
                history_bits: 12,
            }),
            ("gshare", [t, h]) => {
                let (table_bits, history_bits) = (bits(t)?, bits(h)?);
                if history_bits > table_bits {
                    return Err(err(kind, input, PREDICTOR_USAGE));
                }
                Ok(PredictorSpec::Gshare {
                    table_bits,
                    history_bits,
                })
            }
            ("gselect", [t, h]) => {
                let (table_bits, history_bits) = (bits(t)?, bits(h)?);
                if history_bits > table_bits {
                    return Err(err(kind, input, PREDICTOR_USAGE));
                }
                Ok(PredictorSpec::GSelect {
                    table_bits,
                    history_bits,
                })
            }
            ("bimodal", [b]) => Ok(PredictorSpec::Bimodal { bits: bits(b)? }),
            ("local", [b, h]) => Ok(PredictorSpec::Local {
                bht_bits: bits(b)?,
                history_bits: bits(h)?,
            }),
            ("agree", [t, h, b]) => {
                let (table_bits, history_bits, bias_bits) = (bits(t)?, bits(h)?, bits(b)?);
                if history_bits > table_bits {
                    return Err(err(kind, input, PREDICTOR_USAGE));
                }
                Ok(PredictorSpec::Agree {
                    table_bits,
                    history_bits,
                    bias_bits,
                })
            }
            ("tage64k", []) => Ok(PredictorSpec::Tage {
                base_bits: 14,
                ncomp: 7,
                min_len: 4,
                max_len: 64,
                tag_bits: 11,
            }),
            ("tage-sc-lite64k", []) => Ok(PredictorSpec::TageScLite {
                base_bits: 14,
                ncomp: 7,
                min_len: 4,
                max_len: 64,
                tag_bits: 11,
            }),
            ("tage" | "tage-sc-lite", [b, n, lo, hi] | [b, n, lo, hi, _]) => {
                let tag = match rest.as_slice() {
                    [_, _, _, _, t] => bits(t)?,
                    _ => TAGE_DEFAULT_TAG_BITS,
                };
                let raw = |r: &str| {
                    r.parse::<u32>()
                        .map_err(|_| err(kind, input, PREDICTOR_USAGE))
                };
                let (base_bits, ncomp, min_len, max_len, tag_bits) =
                    check_tage(input, bits(b)?, raw(n)?, raw(lo)?, raw(hi)?, tag)?;
                if head == "tage" {
                    Ok(PredictorSpec::Tage {
                        base_bits,
                        ncomp,
                        min_len,
                        max_len,
                        tag_bits,
                    })
                } else {
                    Ok(PredictorSpec::TageScLite {
                        base_bits,
                        ncomp,
                        min_len,
                        max_len,
                        tag_bits,
                    })
                }
            }
            ("taken", []) => Ok(PredictorSpec::Taken),
            ("not-taken", []) => Ok(PredictorSpec::NotTaken),
            _ => Err(err(kind, input, PREDICTOR_USAGE)),
        }
    }
}

impl PredictorSpec {
    /// Constructs the predictor this spec describes.
    pub fn build(&self) -> Box<dyn BranchPredictor + Send> {
        match *self {
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => Box::new(Gshare::new(table_bits, history_bits)),
            PredictorSpec::GSelect {
                table_bits,
                history_bits,
            } => Box::new(GSelect::new(table_bits, history_bits)),
            PredictorSpec::Bimodal { bits } => Box::new(Bimodal::new(bits)),
            PredictorSpec::Local {
                bht_bits,
                history_bits,
            } => Box::new(LocalTwoLevel::new(bht_bits, history_bits)),
            PredictorSpec::Agree {
                table_bits,
                history_bits,
                bias_bits,
            } => Box::new(Agree::new(table_bits, history_bits, bias_bits)),
            PredictorSpec::Tage {
                base_bits,
                ncomp,
                min_len,
                max_len,
                tag_bits,
            } => Box::new(Tage::new(base_bits, ncomp, min_len, max_len, tag_bits)),
            PredictorSpec::TageScLite {
                base_bits,
                ncomp,
                min_len,
                max_len,
                tag_bits,
            } => Box::new(TageScLite::new(base_bits, ncomp, min_len, max_len, tag_bits)),
            PredictorSpec::Taken => Box::new(StaticDirection::always_taken()),
            PredictorSpec::NotTaken => Box::new(StaticDirection::always_not_taken()),
        }
    }
}

/// A validated index specification; see [`parse_index`] for the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexForm {
    /// `pc:<bits>`
    Pc(u32),
    /// `bhr:<bits>`
    Bhr(u32),
    /// `pcxorbhr:<bits>`
    PcXorBhr(u32),
    /// `pcconcatbhr:<bits>` (at least 2 bits: one PC, one BHR)
    PcConcatBhr(u32),
    /// `gcir:<bits>`
    Gcir(u32),
}

const INDEX_USAGE: &str = "pc:B, bhr:B, pcxorbhr:B, pcconcatbhr:B, gcir:B";

impl fmt::Display for IndexForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexForm::Pc(b) => write!(f, "pc:{b}"),
            IndexForm::Bhr(b) => write!(f, "bhr:{b}"),
            IndexForm::PcXorBhr(b) => write!(f, "pcxorbhr:{b}"),
            IndexForm::PcConcatBhr(b) => write!(f, "pcconcatbhr:{b}"),
            IndexForm::Gcir(b) => write!(f, "gcir:{b}"),
        }
    }
}

impl FromStr for IndexForm {
    type Err = SpecError;

    fn from_str(input: &str) -> Result<Self, SpecError> {
        let kind = "index";
        let (head, rest) = split(input);
        let [bits] = rest.as_slice() else {
            return Err(err(kind, input, INDEX_USAGE));
        };
        let bits = parse_bits(bits, kind, input, INDEX_USAGE)?;
        match head {
            "pc" => Ok(IndexForm::Pc(bits)),
            "bhr" => Ok(IndexForm::Bhr(bits)),
            "pcxorbhr" => Ok(IndexForm::PcXorBhr(bits)),
            "pcconcatbhr" if bits >= 2 => Ok(IndexForm::PcConcatBhr(bits)),
            "gcir" => Ok(IndexForm::Gcir(bits)),
            _ => Err(err(kind, input, INDEX_USAGE)),
        }
    }
}

impl IndexForm {
    /// Constructs the [`IndexSpec`] this form describes.
    pub fn build(&self) -> IndexSpec {
        match *self {
            IndexForm::Pc(b) => IndexSpec::pc(b),
            IndexForm::Bhr(b) => IndexSpec::bhr(b),
            IndexForm::PcXorBhr(b) => IndexSpec::pc_xor_bhr(b),
            IndexForm::PcConcatBhr(b) => IndexSpec::pc_concat_bhr(b),
            IndexForm::Gcir(b) => IndexSpec::global_cir(b),
        }
    }
}

/// A validated initialization policy; see [`parse_init`] for the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitSpec {
    /// `ones`
    Ones,
    /// `zeros`
    Zeros,
    /// `lastbit`
    LastBit,
    /// `random:<seed>`
    Random(u64),
}

const INIT_USAGE: &str = "ones, zeros, lastbit, random:SEED";

impl fmt::Display for InitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitSpec::Ones => write!(f, "ones"),
            InitSpec::Zeros => write!(f, "zeros"),
            InitSpec::LastBit => write!(f, "lastbit"),
            InitSpec::Random(seed) => write!(f, "random:{seed}"),
        }
    }
}

impl FromStr for InitSpec {
    type Err = SpecError;

    fn from_str(input: &str) -> Result<Self, SpecError> {
        let kind = "init";
        let (head, rest) = split(input);
        match (head, rest.as_slice()) {
            ("ones", []) => Ok(InitSpec::Ones),
            ("zeros", []) => Ok(InitSpec::Zeros),
            ("lastbit", []) => Ok(InitSpec::LastBit),
            ("random", [seed]) => seed
                .parse::<u64>()
                .map(InitSpec::Random)
                .map_err(|_| err(kind, input, INIT_USAGE)),
            _ => Err(err(kind, input, INIT_USAGE)),
        }
    }
}

impl InitSpec {
    /// Constructs the [`InitPolicy`] this form describes.
    pub fn build(&self) -> InitPolicy {
        match *self {
            InitSpec::Ones => InitPolicy::AllOnes,
            InitSpec::Zeros => InitPolicy::AllZeros,
            InitSpec::LastBit => InitPolicy::LastBit,
            InitSpec::Random(seed) => InitPolicy::Random(seed),
        }
    }
}

/// The two-level table variants of `two-level:<variant>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoLevelVariant {
    /// `pc-cir`
    PcCir,
    /// `pcxorbhr-cir`
    PcXorBhrCir,
    /// `pcxorbhr-cirxorpcxorbhr`
    PcXorBhrCirXorPcXorBhr,
}

/// A validated confidence-mechanism specification; see
/// [`parse_mechanism`] for the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismSpec {
    /// `cir:<width>` — full CIRs, ideal-reduction keys.
    Cir(u32),
    /// `ones-count:<width>`
    OnesCount(u32),
    /// `saturating:<max>`
    Saturating(u32),
    /// `resetting:<max>`
    Resetting(u32),
    /// `two-level:<variant>` (ignores the session's index/init).
    TwoLevel(TwoLevelVariant),
    /// `self:<predictor-spec>` — bucket on the predictor's own strength
    /// via a shadow instance of the named predictor (ignores the
    /// session's index/init). The inner spec should match the session
    /// predictor; the CLI defaults it accordingly.
    SelfConf(PredictorSpec),
}

const MECHANISM_USAGE: &str = "cir:W, ones-count:W, saturating:MAX, resetting:MAX, \
                               two-level:{pc-cir|pcxorbhr-cir|pcxorbhr-cirxorpcxorbhr}, \
                               self:PREDICTOR";

impl fmt::Display for MechanismSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismSpec::Cir(w) => write!(f, "cir:{w}"),
            MechanismSpec::OnesCount(w) => write!(f, "ones-count:{w}"),
            MechanismSpec::Saturating(m) => write!(f, "saturating:{m}"),
            MechanismSpec::Resetting(m) => write!(f, "resetting:{m}"),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcCir) => write!(f, "two-level:pc-cir"),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCir) => {
                write!(f, "two-level:pcxorbhr-cir")
            }
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCirXorPcXorBhr) => {
                write!(f, "two-level:pcxorbhr-cirxorpcxorbhr")
            }
            MechanismSpec::SelfConf(inner) => write!(f, "self:{inner}"),
        }
    }
}

impl FromStr for MechanismSpec {
    type Err = SpecError;

    fn from_str(input: &str) -> Result<Self, SpecError> {
        let kind = "mechanism";
        // `self:` wraps a whole predictor spec (which contains colons of
        // its own), so it is handled before the generic head:parts split.
        if let Some(inner) = input.strip_prefix("self:") {
            return inner
                .parse::<PredictorSpec>()
                .map(MechanismSpec::SelfConf)
                .map_err(|_| err(kind, input, MECHANISM_USAGE));
        }
        let (head, rest) = split(input);
        let width = |raw: &str| {
            raw.parse::<u32>()
                .ok()
                .filter(|w| (1..=32).contains(w))
                .ok_or_else(|| err(kind, input, MECHANISM_USAGE))
        };
        let max = |raw: &str| {
            raw.parse::<u32>()
                .ok()
                .filter(|&m| m > 0)
                .ok_or_else(|| err(kind, input, MECHANISM_USAGE))
        };
        match (head, rest.as_slice()) {
            ("cir", [w]) => Ok(MechanismSpec::Cir(width(w)?)),
            ("ones-count", [w]) => Ok(MechanismSpec::OnesCount(width(w)?)),
            ("saturating", [m]) => Ok(MechanismSpec::Saturating(max(m)?)),
            ("resetting", [m]) => Ok(MechanismSpec::Resetting(max(m)?)),
            ("two-level", [variant]) => match *variant {
                "pc-cir" => Ok(MechanismSpec::TwoLevel(TwoLevelVariant::PcCir)),
                "pcxorbhr-cir" => Ok(MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCir)),
                "pcxorbhr-cirxorpcxorbhr" => Ok(MechanismSpec::TwoLevel(
                    TwoLevelVariant::PcXorBhrCirXorPcXorBhr,
                )),
                _ => Err(err(kind, input, MECHANISM_USAGE)),
            },
            _ => Err(err(kind, input, MECHANISM_USAGE)),
        }
    }
}

impl MechanismSpec {
    /// Constructs the mechanism this spec describes over `index`/`init`
    /// (two-level variants carry their own indexing and ignore both).
    pub fn build(
        &self,
        index: IndexSpec,
        init: InitPolicy,
    ) -> Box<dyn ConfidenceMechanism + Send> {
        match *self {
            MechanismSpec::Cir(w) => Box::new(OneLevelCir::new(index, w, init)),
            MechanismSpec::OnesCount(w) => {
                Box::new(MappedKey::ones_count(OneLevelCir::new(index, w, init)))
            }
            MechanismSpec::Saturating(m) => Box::new(SaturatingConfidence::new(index, m, init)),
            MechanismSpec::Resetting(m) => Box::new(ResettingConfidence::new(index, m, init)),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcCir) => {
                Box::new(TwoLevelCir::variant_pc_cir())
            }
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCir) => {
                Box::new(TwoLevelCir::variant_pcxorbhr_cir())
            }
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCirXorPcXorBhr) => {
                Box::new(TwoLevelCir::variant_pcxorbhr_cirxorpcxorbhr())
            }
            MechanismSpec::SelfConf(inner) => {
                Box::new(SelfConfidence::new(Box::new(move || inner.build())))
            }
        }
    }
}

/// Parses a predictor spec.
///
/// Forms: `gshare:<table_bits>:<history_bits>` · `bimodal:<bits>` ·
/// `gselect:<table_bits>:<history_bits>` · `local:<bht_bits>:<hist_bits>` ·
/// `agree:<table_bits>:<history_bits>:<bias_bits>` · `taken` ·
/// `not-taken`. Shorthands: `gshare64k` (= `gshare:16:16`), `gshare4k`
/// (= `gshare:12:12`).
pub fn parse_predictor(input: &str) -> Result<Box<dyn BranchPredictor + Send>, SpecError> {
    Ok(input.parse::<PredictorSpec>()?.build())
}

/// Parses an index spec: `pc:<bits>` · `bhr:<bits>` · `pcxorbhr:<bits>` ·
/// `pcconcatbhr:<bits>` · `gcir:<bits>`.
pub fn parse_index(input: &str) -> Result<IndexSpec, SpecError> {
    Ok(input.parse::<IndexForm>()?.build())
}

/// Parses an initialization policy: `ones` · `zeros` · `lastbit` ·
/// `random:<seed>`.
pub fn parse_init(input: &str) -> Result<InitPolicy, SpecError> {
    Ok(input.parse::<InitSpec>()?.build())
}

/// Parses a confidence-mechanism spec, given the index and init policy.
///
/// Forms: `cir:<width>` (full CIRs, ideal-reduction keys) ·
/// `ones-count:<width>` · `saturating:<max>` · `resetting:<max>` ·
/// `two-level:<variant>` where variant is `pc-cir`, `pcxorbhr-cir`, or
/// `pcxorbhr-cirxorpcxorbhr` (two-level variants ignore `index`/`init`).
pub fn parse_mechanism(
    input: &str,
    index: IndexSpec,
    init: InitPolicy,
) -> Result<Box<dyn ConfidenceMechanism + Send>, SpecError> {
    Ok(input.parse::<MechanismSpec>()?.build(index, init))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar per predictor form. The match forces a compile error
    /// when a variant is added without extending this table, so new spec
    /// forms cannot skip the round-trip property.
    fn all_predictor_forms() -> Vec<PredictorSpec> {
        let table = vec![
            PredictorSpec::Gshare {
                table_bits: 16,
                history_bits: 12,
            },
            PredictorSpec::GSelect {
                table_bits: 10,
                history_bits: 4,
            },
            PredictorSpec::Bimodal { bits: 12 },
            PredictorSpec::Local {
                bht_bits: 10,
                history_bits: 8,
            },
            PredictorSpec::Agree {
                table_bits: 12,
                history_bits: 12,
                bias_bits: 10,
            },
            PredictorSpec::Tage {
                base_bits: 10,
                ncomp: 4,
                min_len: 2,
                max_len: 32,
                tag_bits: 9,
            },
            PredictorSpec::TageScLite {
                base_bits: 10,
                ncomp: 4,
                min_len: 2,
                max_len: 32,
                tag_bits: 9,
            },
            PredictorSpec::Taken,
            PredictorSpec::NotTaken,
        ];
        for form in &table {
            match form {
                PredictorSpec::Gshare { .. } => (),
                PredictorSpec::GSelect { .. } => (),
                PredictorSpec::Bimodal { .. } => (),
                PredictorSpec::Local { .. } => (),
                PredictorSpec::Agree { .. } => (),
                PredictorSpec::Tage { .. } => (),
                PredictorSpec::TageScLite { .. } => (),
                PredictorSpec::Taken => (),
                PredictorSpec::NotTaken => (),
            }
        }
        table
    }

    fn all_index_forms() -> Vec<IndexForm> {
        let table = vec![
            IndexForm::Pc(8),
            IndexForm::Bhr(6),
            IndexForm::PcXorBhr(16),
            IndexForm::PcConcatBhr(8),
            IndexForm::Gcir(6),
        ];
        for form in &table {
            match form {
                IndexForm::Pc(_) => (),
                IndexForm::Bhr(_) => (),
                IndexForm::PcXorBhr(_) => (),
                IndexForm::PcConcatBhr(_) => (),
                IndexForm::Gcir(_) => (),
            }
        }
        table
    }

    fn all_init_forms() -> Vec<InitSpec> {
        let table = vec![
            InitSpec::Ones,
            InitSpec::Zeros,
            InitSpec::LastBit,
            InitSpec::Random(9),
        ];
        for form in &table {
            match form {
                InitSpec::Ones => (),
                InitSpec::Zeros => (),
                InitSpec::LastBit => (),
                InitSpec::Random(_) => (),
            }
        }
        table
    }

    fn all_mechanism_forms() -> Vec<MechanismSpec> {
        let table = vec![
            MechanismSpec::Cir(16),
            MechanismSpec::OnesCount(16),
            MechanismSpec::Saturating(8),
            MechanismSpec::Resetting(16),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcCir),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCir),
            MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCirXorPcXorBhr),
            MechanismSpec::SelfConf(PredictorSpec::Gshare {
                table_bits: 10,
                history_bits: 10,
            }),
            MechanismSpec::SelfConf(PredictorSpec::Tage {
                base_bits: 10,
                ncomp: 4,
                min_len: 2,
                max_len: 32,
                tag_bits: 9,
            }),
        ];
        for form in &table {
            match form {
                MechanismSpec::Cir(_) => (),
                MechanismSpec::OnesCount(_) => (),
                MechanismSpec::Saturating(_) => (),
                MechanismSpec::Resetting(_) => (),
                MechanismSpec::TwoLevel(TwoLevelVariant::PcCir) => (),
                MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCir) => (),
                MechanismSpec::TwoLevel(TwoLevelVariant::PcXorBhrCirXorPcXorBhr) => (),
                MechanismSpec::SelfConf(_) => (),
            }
        }
        table
    }

    /// The property: `Display` output parses back to the same form, and
    /// the one-step `parse_*` builders accept every canonical string.
    #[test]
    fn every_spec_form_round_trips_through_display() {
        for form in all_predictor_forms() {
            let text = form.to_string();
            assert_eq!(text.parse::<PredictorSpec>().unwrap(), form, "{text}");
            parse_predictor(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        for form in all_index_forms() {
            let text = form.to_string();
            assert_eq!(text.parse::<IndexForm>().unwrap(), form, "{text}");
            parse_index(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        for form in all_init_forms() {
            let text = form.to_string();
            assert_eq!(text.parse::<InitSpec>().unwrap(), form, "{text}");
            parse_init(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        for form in all_mechanism_forms() {
            let text = form.to_string();
            assert_eq!(text.parse::<MechanismSpec>().unwrap(), form, "{text}");
            parse_mechanism(&text, IndexSpec::pc(8), InitPolicy::AllOnes)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn shorthands_normalize_to_canonical_forms() {
        let spec: PredictorSpec = "gshare64k".parse().unwrap();
        assert_eq!(
            spec,
            PredictorSpec::Gshare {
                table_bits: 16,
                history_bits: 16
            }
        );
        assert_eq!(spec.to_string(), "gshare:16:16");
        let spec: PredictorSpec = "gshare4k".parse().unwrap();
        assert_eq!(spec.to_string(), "gshare:12:12");
    }

    #[test]
    fn predictor_specs() {
        assert_eq!(
            parse_predictor("gshare:10:8").unwrap().describe(),
            "gshare(10,8)"
        );
        assert_eq!(
            parse_predictor("gshare64k").unwrap().describe(),
            "gshare(16,16)"
        );
        assert_eq!(
            parse_predictor("gshare4k").unwrap().describe(),
            "gshare(12,12)"
        );
        assert_eq!(
            parse_predictor("bimodal:12").unwrap().describe(),
            "bimodal(12)"
        );
        assert_eq!(
            parse_predictor("gselect:10:4").unwrap().describe(),
            "gselect(10,4)"
        );
        assert_eq!(
            parse_predictor("local:10:8").unwrap().describe(),
            "local(10,8)"
        );
        assert_eq!(
            parse_predictor("agree:12:12:10").unwrap().describe(),
            "agree(12,12,bias 10)"
        );
        assert_eq!(
            parse_predictor("taken").unwrap().describe(),
            "static(taken)"
        );
        assert_eq!(
            parse_predictor("not-taken").unwrap().describe(),
            "static(not-taken)"
        );
    }

    #[test]
    fn tage_shorthands_and_default_tag_bits() {
        let spec: PredictorSpec = "tage64k".parse().unwrap();
        assert_eq!(spec.to_string(), "tage:14:7:4:64:11");
        let spec: PredictorSpec = "tage-sc-lite64k".parse().unwrap();
        assert_eq!(spec.to_string(), "tage-sc-lite:14:7:4:64:11");
        // Omitting the tag width picks the default, and the canonical
        // rendering always spells all five parameters.
        let spec: PredictorSpec = "tage:10:4:2:32".parse().unwrap();
        assert_eq!(spec.to_string(), "tage:10:4:2:32:11");
        assert_eq!(
            parse_predictor("tage:10:4:2:32:9").unwrap().describe(),
            "tage(10,4c,2..32,tag9)"
        );
        assert_eq!(
            parse_predictor("tage-sc-lite:10:4:2:32:9").unwrap().describe(),
            "tage-sc-lite(10,4c,2..32,tag9)"
        );
    }

    /// Reject-path sweep for the TAGE grammar: every parameter bound the
    /// builder would panic on must come back as a recoverable SpecError
    /// (these strings can arrive over the wire in a HELLO).
    #[test]
    fn tage_spec_reject_paths() {
        for bad in [
            // structural
            "tage",
            "tage:10",
            "tage:10:4",
            "tage:10:4:2",
            "tage:10:4:2:32:9:9",
            "tage:10:4:2:32:x",
            "tage:x:4:2:32",
            // bad component counts
            "tage:10:0:2:32",
            "tage:10:1:2:32",
            "tage:10:13:2:32",
            // more components than distinct lengths
            "tage:10:8:2:8",
            // minlen >= maxlen, out-of-range lengths
            "tage:10:4:32:32",
            "tage:10:4:33:32",
            "tage:10:4:0:32",
            "tage:10:4:2:65",
            // base table too small for tagged components / too large
            "tage:2:4:2:32",
            "tage:29:4:2:32",
            // tag width out of range
            "tage:10:4:2:32:3",
            "tage:10:4:2:32:16",
            // same grammar, sc-lite head
            "tage-sc-lite:10:1:2:32",
            "tage-sc-lite:10:4:32:2",
        ] {
            let e = match bad.parse::<PredictorSpec>() {
                Err(e) => e,
                Ok(p) => panic!("{bad:?} parsed as {p}"),
            };
            assert_eq!(e.kind, "predictor");
        }
    }

    #[test]
    fn predictor_spec_errors() {
        for bad in [
            "",
            "gshare",
            "gshare:0:0",
            "gshare:8:9",
            "gshare:29:1",
            "frobnicate:3",
        ] {
            let e = match parse_predictor(bad) {
                Err(e) => e,
                Ok(p) => panic!("{bad:?} parsed as {}", p.describe()),
            };
            assert_eq!(e.kind, "predictor");
            assert!(e.to_string().contains("expected one of"));
        }
    }

    #[test]
    fn index_specs() {
        assert_eq!(parse_index("pc:8").unwrap().to_string(), "PC[8b]");
        assert_eq!(
            parse_index("pcxorbhr:16").unwrap().to_string(),
            "PC^BHR[16b]"
        );
        assert_eq!(
            parse_index("pcconcatbhr:8").unwrap().to_string(),
            "PC||BHR[8b]"
        );
        assert_eq!(parse_index("gcir:6").unwrap().to_string(), "GCIR[6b]");
        assert!(parse_index("pc").is_err());
        assert!(parse_index("pc:0").is_err());
        assert!(parse_index("pcconcatbhr:1").is_err());
        assert!(parse_index("what:8").is_err());
    }

    #[test]
    fn init_specs() {
        assert_eq!(parse_init("ones").unwrap(), InitPolicy::AllOnes);
        assert_eq!(parse_init("zeros").unwrap(), InitPolicy::AllZeros);
        assert_eq!(parse_init("lastbit").unwrap(), InitPolicy::LastBit);
        assert_eq!(parse_init("random:9").unwrap(), InitPolicy::Random(9));
        assert!(parse_init("random:x").is_err());
        assert!(parse_init("none").is_err());
    }

    #[test]
    fn mechanism_specs() {
        let idx = || IndexSpec::pc_xor_bhr(8);
        let m = parse_mechanism("resetting:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("resetting"));
        let m = parse_mechanism("saturating:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("saturating"));
        let m = parse_mechanism("cir:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("one-level CIR[16]"));
        let m = parse_mechanism("ones-count:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("ones-count"));
        let m = parse_mechanism("two-level:pcxorbhr-cir", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("two-level"));
        let m = parse_mechanism("self:tage:10:4:2:32:9", idx(), InitPolicy::AllOnes).unwrap();
        assert_eq!(m.describe(), "self-confidence(tage(10,4c,2..32,tag9))");
        assert_eq!(m.key_space(), Some(8));
        let m = parse_mechanism("self:gshare64k", idx(), InitPolicy::AllOnes).unwrap();
        assert_eq!(m.describe(), "self-confidence(gshare(16,16))");
    }

    #[test]
    fn mechanism_spec_errors() {
        let idx = || IndexSpec::pc(8);
        for bad in [
            "",
            "cir",
            "cir:0",
            "cir:33",
            "resetting:0",
            "two-level:nope",
            "zzz:1",
            // `self` needs an inner predictor spec (the CLI expands the
            // bare form before parsing), and the inner spec must be valid.
            "self",
            "self:",
            "self:frobnicate",
            "self:tage:10:1:2:32",
        ] {
            assert!(
                parse_mechanism(bad, idx(), InitPolicy::AllOnes).is_err(),
                "{bad}"
            );
        }
    }
}
