//! Textual specifications for predictors, confidence mechanisms, and index
//! functions, e.g. `gshare:16:16`, `resetting:16`, `pcxorbhr:12`.
//!
//! This grammar is the configuration surface shared by the `cira` CLI and
//! the `cira-serve` wire protocol's `HELLO` negotiation: both sides parse
//! the same strings into the same structures, and every malformed spec is
//! a recoverable [`SpecError`] (never a panic), so a bad `HELLO` can be
//! rejected per-connection.

use std::fmt;

use cira_core::one_level::{MappedKey, OneLevelCir, ResettingConfidence, SaturatingConfidence};
use cira_core::two_level::TwoLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::{
    Agree, Bimodal, BranchPredictor, GSelect, Gshare, LocalTwoLevel, StaticDirection,
};

/// Error for unparseable specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What kind of spec was being parsed.
    pub kind: &'static str,
    /// The offending input.
    pub input: String,
    /// Accepted forms.
    pub usage: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} spec {:?}; expected one of: {}",
            self.kind, self.input, self.usage
        )
    }
}

impl std::error::Error for SpecError {}

fn err(kind: &'static str, input: &str, usage: &'static str) -> SpecError {
    cira_obs::debug!("spec rejected", kind = kind, input = input);
    SpecError {
        kind,
        input: input.to_owned(),
        usage,
    }
}

fn split(input: &str) -> (&str, Vec<&str>) {
    let mut parts = input.split(':');
    let head = parts.next().unwrap_or("");
    (head, parts.collect())
}

fn parse_bits(
    raw: &str,
    kind: &'static str,
    input: &str,
    usage: &'static str,
) -> Result<u32, SpecError> {
    raw.parse::<u32>()
        .ok()
        .filter(|b| (1..=28).contains(b))
        .ok_or_else(|| err(kind, input, usage))
}

/// Parses a predictor spec.
///
/// Forms: `gshare:<table_bits>:<history_bits>` · `bimodal:<bits>` ·
/// `gselect:<table_bits>:<history_bits>` · `local:<bht_bits>:<hist_bits>` ·
/// `taken` · `not-taken`. Shorthands: `gshare64k` (= `gshare:16:16`),
/// `gshare4k` (= `gshare:12:12`).
pub fn parse_predictor(input: &str) -> Result<Box<dyn BranchPredictor + Send>, SpecError> {
    const USAGE: &str = "gshare:T:H, gshare64k, gshare4k, bimodal:B, gselect:T:H, \
                         local:B:H, agree:T:H:B, taken, not-taken";
    let kind = "predictor";
    let (head, rest) = split(input);
    match (head, rest.as_slice()) {
        ("gshare64k", []) => Ok(Box::new(Gshare::paper_large())),
        ("gshare4k", []) => Ok(Box::new(Gshare::paper_small())),
        ("gshare", [t, h]) => {
            let t = parse_bits(t, kind, input, USAGE)?;
            let h = parse_bits(h, kind, input, USAGE)?;
            if h > t {
                return Err(err(kind, input, USAGE));
            }
            Ok(Box::new(Gshare::new(t, h)))
        }
        ("gselect", [t, h]) => {
            let t = parse_bits(t, kind, input, USAGE)?;
            let h = parse_bits(h, kind, input, USAGE)?;
            if h > t {
                return Err(err(kind, input, USAGE));
            }
            Ok(Box::new(GSelect::new(t, h)))
        }
        ("bimodal", [b]) => Ok(Box::new(Bimodal::new(parse_bits(b, kind, input, USAGE)?))),
        ("local", [b, h]) => Ok(Box::new(LocalTwoLevel::new(
            parse_bits(b, kind, input, USAGE)?,
            parse_bits(h, kind, input, USAGE)?,
        ))),
        ("agree", [t, h, b]) => {
            let t = parse_bits(t, kind, input, USAGE)?;
            let h = parse_bits(h, kind, input, USAGE)?;
            let b = parse_bits(b, kind, input, USAGE)?;
            if h > t {
                return Err(err(kind, input, USAGE));
            }
            Ok(Box::new(Agree::new(t, h, b)))
        }
        ("taken", []) => Ok(Box::new(StaticDirection::always_taken())),
        ("not-taken", []) => Ok(Box::new(StaticDirection::always_not_taken())),
        _ => Err(err(kind, input, USAGE)),
    }
}

/// Parses an index spec: `pc:<bits>` · `bhr:<bits>` · `pcxorbhr:<bits>` ·
/// `pcconcatbhr:<bits>` · `gcir:<bits>`.
pub fn parse_index(input: &str) -> Result<IndexSpec, SpecError> {
    const USAGE: &str = "pc:B, bhr:B, pcxorbhr:B, pcconcatbhr:B, gcir:B";
    let kind = "index";
    let (head, rest) = split(input);
    let [bits] = rest.as_slice() else {
        return Err(err(kind, input, USAGE));
    };
    let bits = parse_bits(bits, kind, input, USAGE)?;
    match head {
        "pc" => Ok(IndexSpec::pc(bits)),
        "bhr" => Ok(IndexSpec::bhr(bits)),
        "pcxorbhr" => Ok(IndexSpec::pc_xor_bhr(bits)),
        "pcconcatbhr" if bits >= 2 => Ok(IndexSpec::pc_concat_bhr(bits)),
        "gcir" => Ok(IndexSpec::global_cir(bits)),
        _ => Err(err(kind, input, USAGE)),
    }
}

/// Parses an initialization policy: `ones` · `zeros` · `lastbit` ·
/// `random:<seed>`.
pub fn parse_init(input: &str) -> Result<InitPolicy, SpecError> {
    const USAGE: &str = "ones, zeros, lastbit, random:SEED";
    let kind = "init";
    let (head, rest) = split(input);
    match (head, rest.as_slice()) {
        ("ones", []) => Ok(InitPolicy::AllOnes),
        ("zeros", []) => Ok(InitPolicy::AllZeros),
        ("lastbit", []) => Ok(InitPolicy::LastBit),
        ("random", [seed]) => seed
            .parse::<u64>()
            .map(InitPolicy::Random)
            .map_err(|_| err(kind, input, USAGE)),
        _ => Err(err(kind, input, USAGE)),
    }
}

/// Parses a confidence-mechanism spec, given the index and init policy.
///
/// Forms: `cir:<width>` (full CIRs, ideal-reduction keys) ·
/// `ones-count:<width>` · `saturating:<max>` · `resetting:<max>` ·
/// `two-level:<variant>` where variant is `pc-cir`, `pcxorbhr-cir`, or
/// `pcxorbhr-cirxorpcxorbhr` (two-level variants ignore `index`/`init`).
pub fn parse_mechanism(
    input: &str,
    index: IndexSpec,
    init: InitPolicy,
) -> Result<Box<dyn ConfidenceMechanism + Send>, SpecError> {
    const USAGE: &str = "cir:W, ones-count:W, saturating:MAX, resetting:MAX, \
                         two-level:{pc-cir|pcxorbhr-cir|pcxorbhr-cirxorpcxorbhr}";
    let kind = "mechanism";
    let (head, rest) = split(input);
    match (head, rest.as_slice()) {
        ("cir", [w]) => {
            let w = w
                .parse::<u32>()
                .ok()
                .filter(|w| (1..=32).contains(w))
                .ok_or_else(|| err(kind, input, USAGE))?;
            Ok(Box::new(OneLevelCir::new(index, w, init)))
        }
        ("ones-count", [w]) => {
            let w = w
                .parse::<u32>()
                .ok()
                .filter(|w| (1..=32).contains(w))
                .ok_or_else(|| err(kind, input, USAGE))?;
            Ok(Box::new(MappedKey::ones_count(OneLevelCir::new(
                index, w, init,
            ))))
        }
        ("saturating", [m]) => {
            let m = m
                .parse::<u32>()
                .ok()
                .filter(|&m| m > 0)
                .ok_or_else(|| err(kind, input, USAGE))?;
            Ok(Box::new(SaturatingConfidence::new(index, m, init)))
        }
        ("resetting", [m]) => {
            let m = m
                .parse::<u32>()
                .ok()
                .filter(|&m| m > 0)
                .ok_or_else(|| err(kind, input, USAGE))?;
            Ok(Box::new(ResettingConfidence::new(index, m, init)))
        }
        ("two-level", [variant]) => match *variant {
            "pc-cir" => Ok(Box::new(TwoLevelCir::variant_pc_cir())),
            "pcxorbhr-cir" => Ok(Box::new(TwoLevelCir::variant_pcxorbhr_cir())),
            "pcxorbhr-cirxorpcxorbhr" => {
                Ok(Box::new(TwoLevelCir::variant_pcxorbhr_cirxorpcxorbhr()))
            }
            _ => Err(err(kind, input, USAGE)),
        },
        _ => Err(err(kind, input, USAGE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_specs() {
        assert_eq!(
            parse_predictor("gshare:10:8").unwrap().describe(),
            "gshare(10,8)"
        );
        assert_eq!(
            parse_predictor("gshare64k").unwrap().describe(),
            "gshare(16,16)"
        );
        assert_eq!(
            parse_predictor("gshare4k").unwrap().describe(),
            "gshare(12,12)"
        );
        assert_eq!(
            parse_predictor("bimodal:12").unwrap().describe(),
            "bimodal(12)"
        );
        assert_eq!(
            parse_predictor("gselect:10:4").unwrap().describe(),
            "gselect(10,4)"
        );
        assert_eq!(
            parse_predictor("local:10:8").unwrap().describe(),
            "local(10,8)"
        );
        assert_eq!(
            parse_predictor("agree:12:12:10").unwrap().describe(),
            "agree(12,12,bias 10)"
        );
        assert_eq!(
            parse_predictor("taken").unwrap().describe(),
            "static(taken)"
        );
        assert_eq!(
            parse_predictor("not-taken").unwrap().describe(),
            "static(not-taken)"
        );
    }

    #[test]
    fn predictor_spec_errors() {
        for bad in [
            "",
            "gshare",
            "gshare:0:0",
            "gshare:8:9",
            "gshare:29:1",
            "frobnicate:3",
        ] {
            let e = match parse_predictor(bad) {
                Err(e) => e,
                Ok(p) => panic!("{bad:?} parsed as {}", p.describe()),
            };
            assert_eq!(e.kind, "predictor");
            assert!(e.to_string().contains("expected one of"));
        }
    }

    #[test]
    fn index_specs() {
        assert_eq!(parse_index("pc:8").unwrap().to_string(), "PC[8b]");
        assert_eq!(
            parse_index("pcxorbhr:16").unwrap().to_string(),
            "PC^BHR[16b]"
        );
        assert_eq!(
            parse_index("pcconcatbhr:8").unwrap().to_string(),
            "PC||BHR[8b]"
        );
        assert_eq!(parse_index("gcir:6").unwrap().to_string(), "GCIR[6b]");
        assert!(parse_index("pc").is_err());
        assert!(parse_index("pc:0").is_err());
        assert!(parse_index("pcconcatbhr:1").is_err());
        assert!(parse_index("what:8").is_err());
    }

    #[test]
    fn init_specs() {
        assert_eq!(parse_init("ones").unwrap(), InitPolicy::AllOnes);
        assert_eq!(parse_init("zeros").unwrap(), InitPolicy::AllZeros);
        assert_eq!(parse_init("lastbit").unwrap(), InitPolicy::LastBit);
        assert_eq!(parse_init("random:9").unwrap(), InitPolicy::Random(9));
        assert!(parse_init("random:x").is_err());
        assert!(parse_init("none").is_err());
    }

    #[test]
    fn mechanism_specs() {
        let idx = || IndexSpec::pc_xor_bhr(8);
        let m = parse_mechanism("resetting:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("resetting"));
        let m = parse_mechanism("saturating:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("saturating"));
        let m = parse_mechanism("cir:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("one-level CIR[16]"));
        let m = parse_mechanism("ones-count:16", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("ones-count"));
        let m = parse_mechanism("two-level:pcxorbhr-cir", idx(), InitPolicy::AllOnes).unwrap();
        assert!(m.describe().contains("two-level"));
    }

    #[test]
    fn mechanism_spec_errors() {
        let idx = || IndexSpec::pc(8);
        for bad in [
            "",
            "cir",
            "cir:0",
            "cir:33",
            "resetting:0",
            "two-level:nope",
            "zzz:1",
        ] {
            assert!(
                parse_mechanism(bad, idx(), InitPolicy::AllOnes).is_err(),
                "{bad}"
            );
        }
    }
}
