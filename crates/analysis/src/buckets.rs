//! Bucketed prediction statistics.
//!
//! Every experiment in the paper reduces to the same bookkeeping: group
//! dynamic branches by some *key* — the static branch PC (§2), the CIR
//! pattern read from a table (§4), or a reduced counter value (§5) — and
//! count, per key, how many predictions and how many mispredictions
//! occurred. [`BucketStats`] is that bookkeeping, with `f64` weights so
//! that multiple benchmarks can be combined with the paper's
//! equal-dynamic-branch normalization (§1.2).

use std::collections::HashMap;

/// Accumulated references and mispredictions for one bucket key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BucketCell {
    /// Weighted number of dynamic branches that read this key.
    pub refs: f64,
    /// Weighted number of those that were mispredicted.
    pub mispredicts: f64,
}

impl BucketCell {
    /// Misprediction rate within the bucket (0 for an empty bucket).
    pub fn miss_rate(&self) -> f64 {
        if self.refs > 0.0 {
            self.mispredicts / self.refs
        } else {
            0.0
        }
    }
}

/// Per-key prediction statistics.
///
/// # Examples
///
/// ```
/// use cira_analysis::BucketStats;
///
/// let mut stats = BucketStats::new();
/// stats.observe(0, false); // key 0, correctly predicted
/// stats.observe(0, true);  // key 0, mispredicted
/// stats.observe(7, true);
/// assert_eq!(stats.total_refs(), 3.0);
/// assert_eq!(stats.total_mispredicts(), 2.0);
/// assert_eq!(stats.cell(0).unwrap().miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketStats {
    cells: HashMap<u64, BucketCell>,
    total_refs: f64,
    total_miss: f64,
}

impl BucketStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic branch with unit weight.
    pub fn observe(&mut self, key: u64, mispredicted: bool) {
        self.observe_weighted(key, mispredicted, 1.0);
    }

    /// Records one dynamic branch with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn observe_weighted(&mut self, key: u64, mispredicted: bool, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and >= 0"
        );
        let cell = self.cells.entry(key).or_default();
        cell.refs += weight;
        self.total_refs += weight;
        if mispredicted {
            cell.mispredicts += weight;
            self.total_miss += weight;
        }
    }

    /// Records a pre-aggregated batch of unit-weight observations for one
    /// key: `refs` dynamic branches of which `mispredicts` missed.
    ///
    /// Integer counts below 2^53 are exact in `f64`, so folding per-key
    /// totals in any order produces bit-identical statistics to calling
    /// [`observe`](Self::observe) once per branch — the property the
    /// execution engine's batched replay kernel relies on.
    ///
    /// # Panics
    ///
    /// Panics if `mispredicts > refs`.
    pub fn record_batch(&mut self, key: u64, refs: u64, mispredicts: u64) {
        assert!(
            mispredicts <= refs,
            "mispredicts ({mispredicts}) cannot exceed refs ({refs})"
        );
        if refs == 0 {
            return;
        }
        let cell = self.cells.entry(key).or_default();
        cell.refs += refs as f64;
        cell.mispredicts += mispredicts as f64;
        self.total_refs += refs as f64;
        self.total_miss += mispredicts as f64;
    }

    /// Merges raw weighted counts for one key — the inverse of [`iter`]
    /// (`from_cells ∘ iter` is the identity), used to reconstruct statistics
    /// shipped cell-by-cell over the `cira-serve` wire protocol.
    ///
    /// # Panics
    ///
    /// Panics if either count is negative or non-finite, or if
    /// `mispredicts > refs`.
    ///
    /// [`iter`]: Self::iter
    pub fn merge_cell(&mut self, key: u64, refs: f64, mispredicts: f64) {
        assert!(
            refs >= 0.0 && refs.is_finite() && mispredicts >= 0.0 && mispredicts.is_finite(),
            "cell counts must be finite and >= 0"
        );
        assert!(
            mispredicts <= refs,
            "mispredicts ({mispredicts}) cannot exceed refs ({refs})"
        );
        let cell = self.cells.entry(key).or_default();
        cell.refs += refs;
        cell.mispredicts += mispredicts;
        self.total_refs += refs;
        self.total_miss += mispredicts;
    }

    /// The cell for `key`, if any branch ever read it.
    pub fn cell(&self, key: u64) -> Option<&BucketCell> {
        self.cells.get(&key)
    }

    /// Number of distinct keys observed.
    pub fn distinct_keys(&self) -> usize {
        self.cells.len()
    }

    /// Total weighted references.
    pub fn total_refs(&self) -> f64 {
        self.total_refs
    }

    /// Total weighted mispredictions.
    pub fn total_mispredicts(&self) -> f64 {
        self.total_miss
    }

    /// Overall misprediction rate.
    pub fn miss_rate(&self) -> f64 {
        if self.total_refs > 0.0 {
            self.total_miss / self.total_refs
        } else {
            0.0
        }
    }

    /// Iterates `(key, cell)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BucketCell)> {
        self.cells.iter().map(|(k, c)| (*k, c))
    }

    /// Returns a copy scaled so that `total_refs() == 1.0` (no-op on an
    /// empty accumulator).
    pub fn normalized(&self) -> BucketStats {
        if self.total_refs == 0.0 {
            return self.clone();
        }
        let s = 1.0 / self.total_refs;
        let mut out = BucketStats::new();
        for (k, c) in self.iter() {
            let cell = out.cells.entry(k).or_default();
            cell.refs = c.refs * s;
            cell.mispredicts = c.mispredicts * s;
        }
        out.total_refs = 1.0;
        out.total_miss = self.total_miss * s;
        out
    }

    /// Adds `other` into `self`, scaled by `weight`.
    pub fn merge_weighted(&mut self, other: &BucketStats, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and >= 0"
        );
        for (k, c) in other.iter() {
            let cell = self.cells.entry(k).or_default();
            cell.refs += c.refs * weight;
            cell.mispredicts += c.mispredicts * weight;
        }
        self.total_refs += other.total_refs * weight;
        self.total_miss += other.total_miss * weight;
    }

    /// Combines per-benchmark statistics with the paper's normalization:
    /// each input is scaled so it contributes the same number of dynamic
    /// branches (§1.2 "each benchmark, in effect, executes the same number
    /// of conditional branches").
    pub fn combine_equal_weight<'a, I>(parts: I) -> BucketStats
    where
        I: IntoIterator<Item = &'a BucketStats>,
    {
        let mut out = BucketStats::new();
        for p in parts {
            out.merge_weighted(&p.normalized(), 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = BucketStats::new();
        assert_eq!(s.total_refs(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.distinct_keys(), 0);
        assert!(s.cell(0).is_none());
    }

    #[test]
    fn observe_accumulates() {
        let mut s = BucketStats::new();
        s.observe(1, true);
        s.observe(1, false);
        s.observe(2, false);
        assert_eq!(s.distinct_keys(), 2);
        assert_eq!(s.total_refs(), 3.0);
        assert_eq!(s.total_mispredicts(), 1.0);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_observation() {
        let mut s = BucketStats::new();
        s.observe_weighted(5, true, 2.5);
        assert_eq!(s.cell(5).unwrap().refs, 2.5);
        assert_eq!(s.cell(5).unwrap().mispredicts, 2.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_rejected() {
        BucketStats::new().observe_weighted(0, false, -1.0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut s = BucketStats::new();
        for i in 0..10 {
            s.observe(i % 3, i % 4 == 0);
        }
        let n = s.normalized();
        assert!((n.total_refs() - 1.0).abs() < 1e-12);
        assert!((n.miss_rate() - s.miss_rate()).abs() < 1e-12);
    }

    #[test]
    fn normalized_empty_is_empty() {
        let s = BucketStats::new().normalized();
        assert_eq!(s.total_refs(), 0.0);
    }

    #[test]
    fn equal_weight_combination_balances_benchmarks() {
        // Benchmark A: 1000 branches, 10% miss. Benchmark B: 10 branches,
        // 50% miss. Equal weighting => overall miss = (0.1 + 0.5) / 2.
        let mut a = BucketStats::new();
        for i in 0..1000 {
            a.observe(0, i % 10 == 0);
        }
        let mut b = BucketStats::new();
        for i in 0..10 {
            b.observe(1, i % 2 == 0);
        }
        let c = BucketStats::combine_equal_weight([&a, &b]);
        assert!((c.miss_rate() - 0.3).abs() < 1e-9, "got {}", c.miss_rate());
        assert!((c.total_refs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_weighted_accumulates_cells() {
        let mut a = BucketStats::new();
        a.observe(3, true);
        let mut b = BucketStats::new();
        b.observe(3, false);
        b.observe(4, true);
        a.merge_weighted(&b, 2.0);
        assert_eq!(a.cell(3).unwrap().refs, 3.0);
        assert_eq!(a.cell(4).unwrap().mispredicts, 2.0);
        assert_eq!(a.total_refs(), 5.0);
    }

    #[test]
    fn record_batch_matches_per_branch_observation() {
        let mut a = BucketStats::new();
        for i in 0..1000 {
            a.observe(i % 5, i % 7 == 0);
        }
        let mut b = BucketStats::new();
        for key in 0..5u64 {
            let refs = (0..1000u64).filter(|i| i % 5 == key).count() as u64;
            let miss = (0..1000u64)
                .filter(|i| i % 5 == key && i % 7 == 0)
                .count() as u64;
            b.record_batch(key, refs, miss);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn record_batch_zero_refs_is_noop() {
        let mut s = BucketStats::new();
        s.record_batch(3, 0, 0);
        assert_eq!(s.distinct_keys(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn record_batch_rejects_excess_misses() {
        BucketStats::new().record_batch(0, 1, 2);
    }

    #[test]
    fn bucket_cell_miss_rate_handles_empty() {
        assert_eq!(BucketCell::default().miss_rate(), 0.0);
    }

    #[test]
    fn merge_cell_reconstructs_from_iter() {
        let mut a = BucketStats::new();
        for i in 0..500 {
            a.observe(i % 7, i % 3 == 0);
        }
        let mut b = BucketStats::new();
        for (k, c) in a.iter() {
            b.merge_cell(k, c.refs, c.mispredicts);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn merge_cell_rejects_excess_misses() {
        BucketStats::new().merge_cell(0, 1.0, 2.0);
    }
}
