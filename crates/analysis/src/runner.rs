//! Trace-driven simulation drivers.
//!
//! One loop shape underlies every experiment (§1.2): for each trace record,
//! read the predictor's prediction and the confidence structures *before*
//! update, score correctness against the recorded outcome, then update the
//! predictor, the confidence structures, and the shared global history
//! register — in that order, with every component seeing the same
//! pre-branch BHR value.

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::BranchRecord;

use crate::buckets::BucketStats;
use crate::metrics::ConfusionCounts;

/// Width of the driver's global history register. Components mask out the
/// bits they use, so this just needs to be at least the widest consumer.
pub const DRIVER_BHR_WIDTH: u32 = 64;

/// Aggregate result of running a predictor over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorRun {
    /// Dynamic branches simulated.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl PredictorRun {
    /// Misprediction rate (0 for an empty run).
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Runs `predictor` over `trace`, returning its accuracy.
///
/// # Examples
///
/// ```
/// use cira_analysis::runner::run_predictor;
/// use cira_predictor::Gshare;
/// use cira_trace::BranchRecord;
///
/// let trace = (0..100u64).map(|i| BranchRecord::new(0x40, i % 2 == 0));
/// let run = run_predictor(trace, &mut Gshare::new(10, 10));
/// assert!(run.miss_rate() < 0.3); // gshare learns alternation
/// ```
pub fn run_predictor<P, T>(trace: T, predictor: &mut P) -> PredictorRun
where
    P: BranchPredictor,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut run = PredictorRun::default();
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        run.branches += 1;
        if predicted != r.taken {
            run.mispredicts += 1;
        }
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    run
}

/// Runs a predictor and one confidence mechanism together, bucketing each
/// dynamic branch by the key the mechanism read for it.
pub fn collect_mechanism_buckets<P, M, T>(
    trace: T,
    predictor: &mut P,
    mechanism: &mut M,
) -> BucketStats
where
    P: BranchPredictor,
    M: ConfidenceMechanism,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut stats = vec![BucketStats::new()];
    let mut mechs: Vec<&mut dyn ConfidenceMechanism> = vec![mechanism];
    collect_many_into(trace, predictor, &mut mechs, &mut stats);
    stats.pop().expect("one mechanism, one stats")
}

/// Runs a predictor once while feeding several mechanisms, returning one
/// [`BucketStats`] per mechanism (in order). This is how multi-series
/// figures (Figs. 5, 6, 8, 11) are produced without re-simulating the
/// predictor per series.
pub fn collect_many_buckets<P, T>(
    trace: T,
    predictor: &mut P,
    mechanisms: &mut [&mut dyn ConfidenceMechanism],
) -> Vec<BucketStats>
where
    P: BranchPredictor,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut stats = vec![BucketStats::new(); mechanisms.len()];
    collect_many_into(trace, predictor, mechanisms, &mut stats);
    stats
}

fn collect_many_into<P, T>(
    trace: T,
    predictor: &mut P,
    mechanisms: &mut [&mut dyn ConfidenceMechanism],
    stats: &mut [BucketStats],
) where
    P: BranchPredictor,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        for (m, s) in mechanisms.iter_mut().zip(stats.iter_mut()) {
            let key = m.read_key(r.pc, h);
            s.observe(key, !correct);
            m.update(r.pc, h, correct);
        }
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
}

/// Like [`collect_mechanism_buckets`], but flushes the mechanism's tables
/// every `flush_interval` branches — the context-switch model of §5.4
/// (the predictor itself is left intact so only the confidence effect is
/// measured).
///
/// # Panics
///
/// Panics if `flush_interval` is zero.
pub fn collect_mechanism_buckets_with_flush<P, M, T>(
    trace: T,
    predictor: &mut P,
    mechanism: &mut M,
    flush_interval: u64,
) -> BucketStats
where
    P: BranchPredictor,
    M: ConfidenceMechanism,
    T: IntoIterator<Item = BranchRecord>,
{
    assert!(flush_interval > 0, "flush interval must be positive");
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut stats = BucketStats::new();
    let mut since_flush = 0u64;
    for r in trace {
        if since_flush == flush_interval {
            mechanism.flush();
            since_flush = 0;
        }
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        let key = mechanism.read_key(r.pc, h);
        stats.observe(key, !correct);
        mechanism.update(r.pc, h, correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
        since_flush += 1;
    }
    stats
}

/// Runs a predictor with a multi-level estimator, producing per-class
/// statistics (the §1 "multiple confidence sets" generalization).
pub fn run_multi_level<P, M, T>(
    trace: T,
    predictor: &mut P,
    estimator: &mut cira_core::MultiLevelEstimator<M>,
) -> cira_core::ClassStats
where
    P: BranchPredictor,
    M: ConfidenceMechanism,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut stats = cira_core::ClassStats::new(estimator.classes());
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        stats.observe(estimator.classify(r.pc, h), correct);
        estimator.update(r.pc, h, correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    stats
}

/// Runs a predictor while bucketing branches by their **static PC** — the
/// input to the §2 static-profile analysis (perfect profiling: the profile
/// and evaluation runs are the same data, as in the paper).
pub fn collect_static_buckets<P, T>(trace: T, predictor: &mut P) -> BucketStats
where
    P: BranchPredictor,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut stats = BucketStats::new();
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        stats.observe(r.pc, predicted != r.taken);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    stats
}

/// Runs a predictor with an online estimator, producing the confusion
/// counts of the binary confidence signal.
pub fn run_estimator<P, E, T>(trace: T, predictor: &mut P, estimator: &mut E) -> ConfusionCounts
where
    P: BranchPredictor,
    E: ConfidenceEstimator,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut counts = ConfusionCounts::new();
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        let confidence = estimator.estimate(r.pc, h);
        counts.observe(confidence, correct);
        estimator.update(r.pc, h, correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::{OneLevelCir, ResettingConfidence};
    use cira_core::{IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
    use cira_predictor::{Bimodal, Gshare, StaticDirection};

    fn alternating(n: u64) -> impl Iterator<Item = BranchRecord> {
        (0..n).map(|i| BranchRecord::new(0x40, i % 2 == 0))
    }

    fn biased(n: u64, pc: u64) -> impl Iterator<Item = BranchRecord> {
        // taken except every 10th
        (0..n).map(move |i| BranchRecord::new(pc, i % 10 != 0))
    }

    #[test]
    fn run_predictor_counts() {
        let run = run_predictor(alternating(1000), &mut StaticDirection::always_taken());
        assert_eq!(run.branches, 1000);
        assert_eq!(run.mispredicts, 500);
        assert!((run.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_run() {
        let run = run_predictor(std::iter::empty(), &mut Bimodal::new(4));
        assert_eq!(run.branches, 0);
        assert_eq!(run.miss_rate(), 0.0);
    }

    #[test]
    fn gshare_beats_bimodal_on_alternation() {
        let g = run_predictor(alternating(4000), &mut Gshare::new(10, 10));
        let b = run_predictor(alternating(4000), &mut Bimodal::new(10));
        assert!(g.miss_rate() < 0.05, "gshare {}", g.miss_rate());
        assert!(b.miss_rate() > 0.3, "bimodal {}", b.miss_rate());
    }

    #[test]
    fn mechanism_buckets_capture_mispredictions() {
        let mut predictor = Gshare::new(10, 10);
        let mut mech = ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes);
        let stats = collect_mechanism_buckets(biased(5000, 0x80), &mut predictor, &mut mech);
        assert_eq!(stats.total_refs(), 5000.0);
        assert!(stats.total_mispredicts() > 0.0);
        // Bucket 0 (just after a misprediction) should be worse than the
        // saturated bucket 16.
        let low = stats.cell(0).map(|c| c.miss_rate()).unwrap_or(0.0);
        let high = stats.cell(16).map(|c| c.miss_rate()).unwrap_or(0.0);
        assert!(
            low > high,
            "counter-0 bucket ({low}) should mispredict more than the zero bucket ({high})"
        );
    }

    #[test]
    fn many_buckets_matches_single_runs() {
        // Driving two mechanisms together must give each the same stats as
        // driving it alone (mechanisms are independent observers).
        let mk_pred = || Gshare::new(8, 8);
        let mk_a = || OneLevelCir::new(IndexSpec::pc(8), 8, InitPolicy::AllOnes);
        let mk_b = || ResettingConfidence::new(IndexSpec::bhr(8), 8, InitPolicy::AllOnes);

        let mut a_alone = mk_a();
        let solo_a = collect_mechanism_buckets(biased(3000, 0x40), &mut mk_pred(), &mut a_alone);
        let mut b_alone = mk_b();
        let solo_b = collect_mechanism_buckets(biased(3000, 0x40), &mut mk_pred(), &mut b_alone);

        let mut a = mk_a();
        let mut b = mk_b();
        let mut mechs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut a, &mut b];
        let both = collect_many_buckets(biased(3000, 0x40), &mut mk_pred(), &mut mechs);
        assert_eq!(both[0], solo_a);
        assert_eq!(both[1], solo_b);
    }

    #[test]
    fn static_buckets_key_by_pc() {
        let trace = biased(100, 0x10).chain(biased(100, 0x20));
        let stats = collect_static_buckets(trace, &mut StaticDirection::always_taken());
        assert_eq!(stats.distinct_keys(), 2);
        assert!(stats.cell(0x10).is_some() && stats.cell(0x20).is_some());
    }

    #[test]
    fn estimator_confusion_counts_total() {
        let mut predictor = Gshare::new(10, 10);
        let mech = ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes);
        let mut est = ThresholdEstimator::new(mech, LowRule::KeyBelow(16));
        let counts = run_estimator(biased(5000, 0x80), &mut predictor, &mut est);
        assert_eq!(counts.total(), 5000);
        // The low set should capture most mispredictions for this easy case.
        assert!(counts.mispredict_coverage() > 0.5, "{counts}");
    }

    #[test]
    fn flush_interval_disrupts_saturation() {
        // With constant flushing, resetting counters can never stay
        // saturated, so the saturated bucket shrinks versus no flushing.
        let mk = || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes);
        let mut a = mk();
        let no_flush =
            collect_mechanism_buckets(biased(8000, 0x40), &mut Gshare::new(10, 10), &mut a);
        let mut b = mk();
        let flushed = collect_mechanism_buckets_with_flush(
            biased(8000, 0x40),
            &mut Gshare::new(10, 10),
            &mut b,
            8,
        );
        let sat_no_flush = no_flush.cell(16).map(|c| c.refs).unwrap_or(0.0);
        let sat_flushed = flushed.cell(16).map(|c| c.refs).unwrap_or(0.0);
        assert!(
            sat_flushed < sat_no_flush,
            "flushing every 8 branches must shrink the saturated bucket              ({sat_flushed} vs {sat_no_flush})"
        );
        assert_eq!(flushed.total_refs(), 8000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_flush_interval_panics() {
        let mut mech = ResettingConfidence::new(IndexSpec::pc(4), 16, InitPolicy::AllOnes);
        collect_mechanism_buckets_with_flush(
            std::iter::empty(),
            &mut Bimodal::new(4),
            &mut mech,
            0,
        );
    }

    #[test]
    fn multi_level_classes_partition_the_stream() {
        use cira_core::MultiLevelEstimator;
        let mech = ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes);
        let mut est = MultiLevelEstimator::new(mech, vec![2, 8, 16]).unwrap();
        let stats = run_multi_level(biased(10_000, 0x80), &mut Gshare::new(10, 10), &mut est);
        assert_eq!(stats.total_refs(), 10_000);
        assert_eq!(stats.classes(), 4);
        assert!(
            stats.rates_are_monotone(),
            "higher classes should mispredict less:
{stats}"
        );
    }

    #[test]
    fn estimator_and_bucket_paths_agree_on_miss_rate() {
        let mut p1 = Gshare::new(10, 10);
        let mut p2 = Gshare::new(10, 10);
        let mut mech = ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes);
        let mech2 = ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes);
        let stats = collect_mechanism_buckets(biased(2000, 0x44), &mut p1, &mut mech);
        let mut est = ThresholdEstimator::new(mech2, LowRule::KeyBelow(1));
        let counts = run_estimator(biased(2000, 0x44), &mut p2, &mut est);
        assert!((stats.miss_rate() - counts.miss_rate()).abs() < 1e-12);
    }
}
