//! A persistent, std-only work-stealing worker pool.
//!
//! The execution engine schedules the full configuration × benchmark grid
//! as independent tasks. A one-shot `std::thread::scope` per call (the old
//! `suite_run` approach) caps parallelism at the number of benchmarks and
//! pays thread start-up per experiment; this pool instead keeps workers
//! alive for the process lifetime and lets idle workers *steal* queued
//! tasks from busy ones, so grids with many more tasks than cores saturate
//! the machine.
//!
//! Topology: one shared injector queue plus one deque per worker. Batch
//! submission distributes tasks round-robin across the worker deques;
//! a worker pops from its own deque first, then the injector, then steals
//! from siblings. The submitting thread *helps* (runs queued tasks) while
//! it waits, which also makes nested submissions deadlock-free.
//!
//! Sizing: [`WorkerPool::global`] uses `CIRA_JOBS` if set (a positive
//! integer), else [`std::thread::available_parallelism`]. Results are
//! returned in submission order and are independent of the worker count —
//! tasks share nothing and each writes its own result slot.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use cira_obs::{Counter, Histogram, Registry};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hot-path scheduling counters for a [`WorkerPool`].
///
/// Updated with relaxed atomics on every claim/execution; queue depths are
/// not stored here — they are read live off the deques when the pool is
/// registered on a [`Registry`] (see [`WorkerPool::register_metrics`]).
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Tasks fully executed by a worker or a helping submitter.
    pub tasks_executed: Counter,
    /// Tasks claimed from a *sibling's* deque (work stealing events).
    pub tasks_stolen: Counter,
    /// Fire-and-forget tasks pushed through the shared injector
    /// ([`WorkerPool::spawn`]).
    pub tasks_injected: Counter,
    /// Wall-clock task execution latency in microseconds.
    pub task_latency_us: Histogram,
}

/// Locks a mutex, ignoring poisoning (a panicking job never holds a queue
/// lock, so the protected state is always consistent).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Shared {
    /// Overflow queue for tasks not assigned to a specific worker.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; owners pop the front, thieves steal the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Queued-but-not-yet-claimed jobs, used to gate worker sleep.
    pending: AtomicUsize,
    /// Round-robin cursor for batch distribution.
    cursor: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    metrics: PoolMetrics,
}

impl Shared {
    /// Claims one job: own deque first, then the injector, then steal.
    /// `home` is `None` for non-worker (helping) threads.
    fn claim(&self, home: Option<usize>) -> Option<Job> {
        if let Some(h) = home {
            if let Some(job) = lock_clean(&self.queues[h]).pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        if let Some(job) = lock_clean(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        let n = self.queues.len();
        let start = home.map(|h| h + 1).unwrap_or(0);
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == home {
                continue;
            }
            if let Some(job) = lock_clean(&self.queues[v]).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.metrics.tasks_stolen.inc();
                return Some(job);
            }
        }
        None
    }

    /// Executes one claimed job, timing it and containing any panic.
    /// Panics are caught at the batch layer; a stray panic from a raw
    /// `submit` job must not kill the worker.
    fn run(&self, job: Job) {
        let t0 = Instant::now();
        let _ = catch_unwind(AssertUnwindSafe(job));
        self.metrics
            .task_latency_us
            .record(t0.elapsed().as_micros() as u64);
        self.metrics.tasks_executed.inc();
    }

    fn worker_loop(&self, index: usize) {
        loop {
            if let Some(job) = self.claim(Some(index)) {
                self.run(job);
                continue;
            }
            let guard = lock_clean(&self.sleep);
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.pending.load(Ordering::Acquire) == 0 {
                // Pushers raise `pending` before notifying under this mutex,
                // so the re-check above cannot miss a wakeup.
                drop(self.wake.wait(guard).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }
}

/// A persistent work-stealing thread pool; see the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `jobs` worker threads (at least one).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            queues: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: PoolMetrics::default(),
        });
        cira_obs::debug!("worker pool started", workers = jobs);
        let handles = (0..jobs)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cira-worker-{i}"))
                    .spawn(move || s.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool, created on first use and sized from
    /// `CIRA_JOBS` (positive integer) or the available parallelism.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_jobs()))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs `f` over every item, in parallel, returning results in item
    /// order. The calling thread helps execute queued tasks while waiting.
    ///
    /// # Panics
    ///
    /// If any invocation of `f` panics, the panic is re-raised on the
    /// calling thread after the whole batch has finished.
    pub fn scope_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers() == 1 {
            // Nothing to distribute; run inline (also keeps the common
            // single-benchmark path free of queue traffic).
            return (0..n).map(|i| f(i, &items[i])).collect();
        }

        struct Batch<R> {
            slots: Vec<Mutex<Option<R>>>,
            done: AtomicUsize,
            panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
            gate: Mutex<()>,
            cv: Condvar,
        }
        let batch = Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        };

        let run_one = |i: usize| {
            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                Ok(r) => *lock_clean(&batch.slots[i]) = Some(r),
                Err(p) => {
                    let mut g = lock_clean(&batch.panic);
                    if g.is_none() {
                        *g = Some(p);
                    }
                }
            }
            if batch.done.fetch_add(1, Ordering::AcqRel) + 1 == n {
                let _g = lock_clean(&batch.gate);
                batch.cv.notify_all();
            }
        };

        // Jobs capture a shared reference to the runner (the reference is
        // `Copy`, so each job can move its own copy).
        let run_one = &run_one;

        // SAFETY: every job runs exactly once before this function returns:
        // `done` is incremented only after a job body finishes, the wait
        // below does not return until `done == n`, and neither workers nor
        // the pool drop queued jobs while the pool is alive (the `&self`
        // borrow keeps it alive). Therefore the borrows of `items`, `f`,
        // and `batch` captured by the jobs never outlive this frame, and
        // erasing their lifetime to `'static` for the queue is sound.
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || run_one(i));
                unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
                }
            })
            .collect();
        self.submit(jobs);

        // Help with queued work (this batch's or anyone's) while waiting.
        while batch.done.load(Ordering::Acquire) < n {
            if let Some(job) = self.shared.claim(None) {
                self.shared.run(job);
                continue;
            }
            let g = lock_clean(&batch.gate);
            if batch.done.load(Ordering::Acquire) < n {
                drop(batch.cv.wait(g).unwrap_or_else(|e| e.into_inner()));
            }
        }

        if let Some(p) = lock_clean(&batch.panic).take() {
            resume_unwind(p);
        }
        batch
            .slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("completed job wrote its result")
            })
            .collect()
    }

    /// Enqueues one fire-and-forget job on the pool.
    ///
    /// Unlike [`scope_map`](Self::scope_map) this does not wait: the job
    /// runs on some worker whenever one is free, and a panic inside it is
    /// caught and discarded (the pool stays healthy). This is the entry
    /// point for event-driven users — `cira-serve` schedules each
    /// session's batch-processing turns here so connection handling fans
    /// out over the same workers as the offline experiment grid.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        // Spawned jobs go through the shared injector rather than a
        // specific worker's deque: no worker owns them, any idle worker
        // picks them up, and the injector depth gauge shows the backlog
        // of event-driven work distinctly from batch work.
        lock_clean(&self.shared.injector).push_back(Box::new(job));
        self.shared.metrics.tasks_injected.inc();
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        let _g = lock_clean(&self.shared.sleep);
        self.shared.wake.notify_all();
    }

    /// Scheduling counters and the task latency histogram.
    pub fn metrics(&self) -> &PoolMetrics {
        &self.shared.metrics
    }

    /// Registers this pool's metrics on `reg` under `pool_*` names:
    /// executed/stolen/injected counters, the task latency histogram, the
    /// worker count, and live injector / per-worker queue depth gauges.
    ///
    /// Takes `&'static self` because the registry closures read the pool
    /// on every scrape; both [`WorkerPool::global`] and the leaked pool in
    /// `cira-serve` satisfy this.
    pub fn register_metrics(&'static self, reg: &Registry) {
        let m = self.metrics();
        reg.counter(
            "pool_tasks_executed_total",
            "Tasks executed by pool workers (including helping submitters)",
            move || m.tasks_executed.get(),
        );
        reg.counter(
            "pool_tasks_stolen_total",
            "Tasks claimed from a sibling worker's deque",
            move || m.tasks_stolen.get(),
        );
        reg.counter(
            "pool_tasks_injected_total",
            "Fire-and-forget tasks pushed through the shared injector",
            move || m.tasks_injected.get(),
        );
        reg.histogram(
            "pool_task_latency_us",
            "Task execution wall-clock latency in microseconds",
            move || m.task_latency_us.snapshot(),
        );
        reg.gauge("pool_workers", "Number of pool worker threads", move || {
            self.workers() as i64
        });
        reg.gauge(
            "pool_injector_depth",
            "Jobs waiting in the shared injector queue",
            move || lock_clean(&self.shared.injector).len() as i64,
        );
        for w in 0..self.workers() {
            let label = w.to_string();
            reg.gauge_with(
                "pool_queue_depth",
                "Jobs waiting in a worker's own deque",
                &[("worker", &label)],
                move || lock_clean(&self.shared.queues[w]).len() as i64,
            );
        }
    }

    /// Enqueues ready-built jobs round-robin across the worker deques.
    fn submit(&self, jobs: Vec<Job>) {
        let count = jobs.len();
        let n = self.shared.queues.len();
        let start = self.shared.cursor.fetch_add(count, Ordering::Relaxed);
        for (k, job) in jobs.into_iter().enumerate() {
            lock_clean(&self.shared.queues[(start + k) % n]).push_back(job);
        }
        self.shared.pending.fetch_add(count, Ordering::AcqRel);
        let _g = lock_clean(&self.shared.sleep);
        self.shared.wake.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = lock_clean(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for h in lock_clean(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

/// `CIRA_JOBS` if set to a positive integer, else available parallelism.
pub fn default_jobs() -> usize {
    match std::env::var("CIRA_JOBS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("CIRA_JOBS must be a positive integer, got {v:?}")),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn maps_in_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = pool.scope_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.scope_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(pool.scope_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let out = pool.scope_map(&[1u32, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        let idx: Vec<usize> = (0..256).collect();
        pool.scope_map(&idx, |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_batches_complete() {
        let pool = WorkerPool::new(2);
        let outer: Vec<u64> = (0..4).collect();
        let out = pool.scope_map(&outer, |_, &x| {
            let inner: Vec<u64> = (0..8).collect();
            pool.scope_map(&inner, |_, &y| x * 100 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..4).map(|x| (0..8).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_propagates_after_batch() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map(&items, |_, &x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        assert_eq!(pool.scope_map(&[1u32], |_, &x| x), vec![1]);
    }

    #[test]
    fn default_jobs_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn metrics_count_executed_and_injected_tasks() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..64).collect();
        pool.scope_map(&items, |_, &x| x);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        while hits.load(Ordering::SeqCst) < 5 {
            std::thread::yield_now();
        }
        let m = pool.metrics();
        assert_eq!(m.tasks_injected.get(), 5);
        // Everything queued was executed and timed (the batch plus the
        // spawned jobs; steal counts are scheduling-dependent).
        assert_eq!(m.tasks_executed.get(), 64 + 5);
        assert_eq!(m.task_latency_us.snapshot().count, 64 + 5);
        assert!(m.tasks_stolen.get() <= m.tasks_executed.get());
    }

    #[test]
    fn spawned_jobs_run_and_panics_are_contained() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.spawn(|| panic!("contained"));
        // spawn() gives no completion handle; scope_map on the same pool
        // cannot finish before earlier queued jobs have been claimed, and
        // each job bumps the counter before returning.
        while hits.load(Ordering::SeqCst) < 32 {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 32);
        // Pool still usable after the panicking job.
        assert_eq!(pool.scope_map(&[2u32], |_, &x| x * 2), vec![4]);
    }
}
