//! Lane-parallel chunk preparation for the vectorized replay kernel.
//!
//! The scalar replay loop carries one serial dependency through every
//! record: the global history register, updated bit by bit. But the
//! *outcomes* that feed it are trace data, already materialized in the
//! [`PackedTrace`] taken bitmap — so every record's pre-branch history is
//! computable in closed form from the history at the start of its 64-record
//! lane group:
//!
//! ```text
//! h_j = ((h_0 << j) | rev >> (64 - j)) & mask      rev = word.reverse_bits()
//! ```
//!
//! where `word` holds the group's taken bits LSB-first. Each lane `j`
//! depends only on `h_0` and the shared reversed word, so the fill loop has
//! no loop-carried dependency and auto-vectorizes. The same pass expands
//! the taken bitmap into per-record bools and gathers PCs through the site
//! dictionary, producing the flat `(pc, history, taken)` slices that
//! [`BranchPredictor::predict_train_batch`] consumes.
//!
//! Everything here is bit-identical to pushing records one at a time
//! through a [`HistoryRegister`] — the unit tests and the
//! `kernel_diff` differential suite hold it to that.
//!
//! [`BranchPredictor::predict_train_batch`]: cira_predictor::BranchPredictor::predict_train_batch
//! [`HistoryRegister`]: cira_predictor::HistoryRegister
//! [`PackedTrace`]: cira_trace::codec::PackedTrace

use cira_trace::codec::PackedTrace;

/// Records per lane group — one taken-bitmap word.
pub const LANE_GROUP: usize = 64;

/// Computes the pre-branch history for each of the `hists.len()` (≤ 64)
/// records of one lane group, given the history `h0` before the group and
/// the group's taken bits in `taken_word` (bit `j` = record `j`'s outcome).
/// Returns the history after the whole group.
///
/// Bits of `taken_word` at or beyond `hists.len()` are ignored.
///
/// # Panics
///
/// Panics if `hists.len() > 64`.
pub fn fill_group_histories(h0: u64, taken_word: u64, mask: u64, hists: &mut [u64]) -> u64 {
    let n = hists.len();
    assert!(n <= LANE_GROUP, "lane group is at most 64 records");
    if n == 0 {
        return h0;
    }
    let rev = taken_word.reverse_bits();
    hists[0] = h0 & mask;
    // Lane j's history is h0 shifted left j with the first j outcomes below
    // it: rev's top j bits are exactly t_0..t_{j-1} in push order. No
    // loop-carried dependency — j = 0 is peeled off above because a shift
    // by 64 - 0 would be undefined.
    for (j, h) in hists.iter_mut().enumerate().skip(1) {
        *h = ((h0 << j) | (rev >> (LANE_GROUP - j))) & mask;
    }
    if n == LANE_GROUP {
        rev & mask
    } else {
        ((h0 << n) | (rev >> (LANE_GROUP - n))) & mask
    }
}

/// Expands one lane group of the taken bitmap into per-record bools.
pub fn fill_group_takens(taken_word: u64, takens: &mut [bool]) {
    assert!(takens.len() <= LANE_GROUP, "lane group is at most 64 records");
    for (j, t) in takens.iter_mut().enumerate() {
        *t = taken_word >> j & 1 == 1;
    }
}

/// Fills `pcs`, `hists`, and `takens` for the `c` records of `trace`
/// beginning at `start`, given the pre-chunk history `h0` (masked by
/// `mask`). Returns the history after the chunk.
///
/// `start` must be a multiple of 64 so the chunk's taken bits are
/// word-aligned in the bitmap — the chunked replay drivers guarantee this
/// by construction (chunk sizes are multiples of 64 except the last).
///
/// # Panics
///
/// Panics if `start` is not 64-aligned, the output slices are shorter than
/// `c`, or `start + c` exceeds the trace length.
#[allow(clippy::too_many_arguments)] // chunk driver: parallel output slices
pub fn fill_chunk(
    trace: &PackedTrace,
    start: usize,
    c: usize,
    h0: u64,
    mask: u64,
    pcs: &mut [u64],
    hists: &mut [u64],
    takens: &mut [bool],
) -> u64 {
    assert!(
        start.is_multiple_of(LANE_GROUP),
        "chunk start must be 64-aligned"
    );
    assert!(start + c <= trace.len(), "chunk exceeds trace length");
    let site_idx = &trace.site_indices()[start..start + c];
    let site_pcs = trace.site_pc_table();
    let words = trace.taken_words();
    // Gather PCs through the site dictionary in one tight pass.
    for (pc, &idx) in pcs[..c].iter_mut().zip(site_idx) {
        *pc = site_pcs[idx as usize];
    }
    let mut h = h0;
    let mut base = 0;
    while base < c {
        let ng = LANE_GROUP.min(c - base);
        let word = words[(start + base) / LANE_GROUP];
        h = fill_group_histories(h, word, mask, &mut hists[base..base + ng]);
        fill_group_takens(word, &mut takens[base..base + ng]);
        base += ng;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_predictor::HistoryRegister;
    use cira_trace::BranchRecord;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed.max(1);
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    #[test]
    fn group_histories_match_push_loop() {
        let mut rng = xorshift(42);
        for width in [1u32, 7, 16, 63, 64] {
            let mut reg = HistoryRegister::new(width);
            reg.set(rng());
            for n in [0usize, 1, 2, 63, 64] {
                let word = rng();
                let mut hists = vec![0u64; n];
                let after =
                    fill_group_histories(reg.value(), word, reg.mask(), &mut hists);
                for (j, &h) in hists.iter().enumerate() {
                    assert_eq!(h, reg.value(), "lane {j} width {width} n {n}");
                    reg.push(word >> j & 1 == 1);
                }
                assert_eq!(after, reg.value(), "post-group width {width} n {n}");
            }
        }
    }

    #[test]
    fn group_takens_expand_bitmap() {
        let mut takens = [false; 64];
        fill_group_takens(0b1011, &mut takens);
        assert_eq!(&takens[..5], &[true, true, false, true, false]);
        let mut partial = [false; 3];
        fill_group_takens(u64::MAX, &mut partial);
        assert_eq!(partial, [true; 3]);
    }

    #[test]
    fn chunk_fill_matches_scalar_walk() {
        let mut rng = xorshift(7);
        let n = 777; // non-multiple of 64
        let trace: PackedTrace = (0..n)
            .map(|_| BranchRecord::new((rng() % 50) << 2, rng() & 1 == 1))
            .collect();
        let mut reg = HistoryRegister::new(64);
        let mut pcs = vec![0u64; 512];
        let mut hists = vec![0u64; 512];
        let mut takens = vec![false; 512];
        let mut h = reg.value();
        let mut start = 0;
        while start < n {
            let c = 512.min(n - start);
            h = fill_chunk(
                &trace, start, c, h, reg.mask(), &mut pcs, &mut hists, &mut takens,
            );
            for j in 0..c {
                let r = trace.get(start + j).unwrap();
                assert_eq!(pcs[j], r.pc, "pc at {}", start + j);
                assert_eq!(takens[j], r.taken, "taken at {}", start + j);
                assert_eq!(hists[j], reg.value(), "history at {}", start + j);
                reg.push(r.taken);
            }
            assert_eq!(h, reg.value());
            start += c;
        }
    }

    #[test]
    #[should_panic(expected = "64-aligned")]
    fn unaligned_chunk_start_rejected() {
        let trace: PackedTrace = (0..100u64)
            .map(|i| BranchRecord::new(0x40, i % 2 == 0))
            .collect();
        let mut pcs = [0u64; 8];
        let mut hists = [0u64; 8];
        let mut takens = [false; 8];
        fill_chunk(&trace, 1, 4, 0, u64::MAX, &mut pcs, &mut hists, &mut takens);
    }
}
