//! The shared execution engine: one substrate for every suite experiment.
//!
//! Every figure, ablation, and sweep in this reproduction runs the same
//! §1.2 loop — walk a benchmark trace, query predictor + confidence
//! structure, update — over the configuration × benchmark grid. The engine
//! factors that shape into three shared pieces:
//!
//! 1. a [`TraceCache`]: each benchmark is walked **once** into a compact
//!    [`PackedTrace`] buffer shared by every configuration (the old path
//!    regenerated the synthetic trace per configuration);
//! 2. a persistent work-stealing [`WorkerPool`] that schedules the full
//!    config × benchmark grid as independent tasks (the old path spawned
//!    one thread per benchmark per call, capping parallelism at the suite
//!    size); sized by `CIRA_JOBS` or the available parallelism;
//! 3. the batched [`replay`] kernel: a chunked inner loop, monomorphized
//!    over the predictor, with the `dyn ConfidenceMechanism` dispatch
//!    hoisted out of the per-record interleave.
//!
//! Determinism: tasks share nothing (fresh predictor/mechanism tables per
//! (config, benchmark), exactly like simulating each trace separately),
//! results are keyed by grid position, and per-benchmark statistics are
//! folded in suite order — so results are bit-identical to the sequential
//! [`crate::runner`] drivers and independent of the worker count.
//!
//! The `run_suite_*` methods on [`Engine`] are the **canonical suite
//! API**: one predictor/mechanism/estimator factory pair per experiment,
//! fresh tables per benchmark, combined with the paper's
//! equal-dynamic-branch weighting (§1.2) into a [`SuiteBuckets`].
//! Experiments call them on [`Engine::global`] (the free-function shims
//! that predated this API were removed after a deprecation cycle).
//!
//! # Examples
//!
//! ```
//! use cira_analysis::engine::Engine;
//! use cira_core::one_level::ResettingConfidence;
//! use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
//! use cira_predictor::Gshare;
//! use cira_trace::suite::ibs_like_suite;
//!
//! let suite: Vec<_> = ibs_like_suite().into_iter().take(2).collect();
//! let thresholds = [8u32, 16, 32];
//! let grid = Engine::global().run_grid(
//!     &suite,
//!     5_000,
//!     &thresholds,
//!     |_| Gshare::new(10, 10),
//!     |&max| {
//!         vec![Box::new(ResettingConfidence::new(
//!             IndexSpec::pc_xor_bhr(10),
//!             max,
//!             InitPolicy::AllOnes,
//!         )) as Box<dyn ConfidenceMechanism>]
//!     },
//! );
//! assert_eq!(grid.len(), 3); // one row per configuration
//! assert_eq!(grid[0][0].per_benchmark.len(), 2);
//! ```

pub mod cache;
pub mod pool;
pub mod replay;
pub mod simd;

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cira_obs::{Counter, Histogram, Registry};

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::BranchPredictor;
use cira_trace::codec::PackedTrace;
use cira_trace::suite::Benchmark;

use crate::buckets::BucketStats;
use crate::curve::CoverageCurve;
use crate::metrics::ConfusionCounts;
use crate::runner::PredictorRun;

pub use cache::TraceCache;
pub use pool::{PoolMetrics, WorkerPool};

/// Per-benchmark and combined bucket statistics for one mechanism
/// configuration.
///
/// The paper reports composite results over the IBS suite, weighting each
/// benchmark to contribute the same number of dynamic branches (§1.2);
/// `combined` is that equal-weight combination
/// ([`BucketStats::combine_equal_weight`]) of the `per_benchmark` runs.
#[derive(Debug, Clone)]
pub struct SuiteBuckets {
    /// `(benchmark name, stats)` in suite order.
    pub per_benchmark: Vec<(String, BucketStats)>,
    /// Equal-dynamic-branch-weighted combination.
    pub combined: BucketStats,
}

impl SuiteBuckets {
    /// The coverage curve of the combined statistics.
    pub fn curve(&self) -> CoverageCurve {
        CoverageCurve::from_buckets(&self.combined)
    }

    /// The coverage curve of one benchmark by name.
    pub fn benchmark_curve(&self, name: &str) -> Option<CoverageCurve> {
        self.per_benchmark
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| CoverageCurve::from_buckets(s))
    }
}

/// Suite-runner instrumentation: how many per-benchmark replays ran and
/// how long each took end to end (materialized trace → folded stats).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Per-(config, benchmark) replay tasks completed.
    pub replays: Counter,
    /// Wall-clock time of one replay task, in microseconds.
    pub replay_us: Histogram,
}

/// Shared simulation engine: trace cache + worker pool + replay kernel.
#[derive(Debug)]
pub struct Engine {
    pool: WorkerPool,
    cache: TraceCache,
    metrics: EngineMetrics,
}

impl Engine {
    /// An engine with its own pool of `jobs` workers and an empty cache
    /// (tests use this to pin the worker count; experiments should share
    /// [`Engine::global`]).
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            pool: WorkerPool::new(jobs),
            cache: TraceCache::new(),
            metrics: EngineMetrics::default(),
        }
    }

    /// The process-wide engine (workers sized from `CIRA_JOBS` or the
    /// available parallelism; traces cached for the process lifetime).
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(|| Self {
            pool: WorkerPool::new(pool::default_jobs()),
            cache: TraceCache::new(),
            metrics: EngineMetrics::default(),
        })
    }

    /// The engine's worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The engine's trace cache.
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// Replay counters and the per-benchmark replay time histogram.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Registers engine and pool metrics on `reg` (`engine_*`, `pool_*`).
    pub fn register_metrics(&'static self, reg: &Registry) {
        let m = self.metrics();
        reg.counter(
            "engine_replays_total",
            "Per-(config, benchmark) replay tasks completed",
            move || m.replays.get(),
        );
        reg.histogram(
            "engine_replay_us",
            "Wall-clock time of one replay task in microseconds",
            move || m.replay_us.snapshot(),
        );
        let cache = self.cache();
        reg.gauge(
            "engine_trace_cache_entries",
            "Materialized benchmark traces held by the cache",
            move || cache.entries() as i64,
        );
        self.pool.register_metrics(reg);
    }

    /// Times `f` as one replay task, folding the result into
    /// [`EngineMetrics`].
    fn timed_replay<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.metrics
            .replay_us
            .record(t0.elapsed().as_micros() as u64);
        self.metrics.replays.inc();
        out
    }

    /// Materializes `trace_len` records for every benchmark (in parallel,
    /// through the cache), returning the buffers in suite order.
    pub fn materialize(&self, suite: &[Benchmark], trace_len: u64) -> Vec<Arc<PackedTrace>> {
        self.pool
            .scope_map(suite, |_, bench| self.cache.get(bench, trace_len))
    }

    /// Runs the full configuration × benchmark grid: for each `config`,
    /// a fresh predictor plus mechanism set per benchmark, replayed over
    /// the shared materialized traces. Returns `[config][series]`
    /// suite results, where *series* indexes the mechanisms returned by
    /// `make_mechanisms` (same convention as
    /// [`run_suite_mechanisms`](Self::run_suite_mechanisms)).
    pub fn run_grid<P, C>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        configs: &[C],
        make_predictor: impl Fn(&C) -> P + Sync,
        make_mechanisms: impl Fn(&C) -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
    ) -> Vec<Vec<SuiteBuckets>>
    where
        P: BranchPredictor + Send,
        C: Sync,
    {
        let traces = self.materialize(suite, trace_len);
        let tasks: Vec<(usize, usize)> = (0..configs.len())
            .flat_map(|ci| (0..suite.len()).map(move |bi| (ci, bi)))
            .collect();
        let per_task: Vec<Vec<BucketStats>> = self.pool.scope_map(&tasks, |_, &(ci, bi)| {
            self.timed_replay(|| {
                let mut predictor = make_predictor(&configs[ci]);
                let mut mechanisms = make_mechanisms(&configs[ci]);
                let mut refs: Vec<&mut dyn ConfidenceMechanism> = mechanisms
                    .iter_mut()
                    .map(|m| m.as_mut() as &mut dyn ConfidenceMechanism)
                    .collect();
                replay::replay_mechanisms(
                    &traces[bi],
                    trace_len as usize,
                    &mut predictor,
                    &mut refs,
                )
            })
        });
        (0..configs.len())
            .map(|ci| {
                let n_series = per_task[ci * suite.len()].len();
                (0..n_series)
                    .map(|si| {
                        let per_benchmark: Vec<(String, BucketStats)> = suite
                            .iter()
                            .enumerate()
                            .map(|(bi, bench)| {
                                (
                                    bench.name().to_owned(),
                                    per_task[ci * suite.len() + bi][si].clone(),
                                )
                            })
                            .collect();
                        let combined = BucketStats::combine_equal_weight(
                            per_benchmark.iter().map(|(_, s)| s),
                        );
                        SuiteBuckets {
                            per_benchmark,
                            combined,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs `make_predictor()` + `make_mechanism()` over every benchmark
    /// (`trace_len` dynamic branches each): fresh tables per benchmark,
    /// exactly like simulating each trace separately, combined with the
    /// paper's equal-dynamic-branch weighting.
    pub fn run_suite_mechanism<P, M>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        make_predictor: impl Fn() -> P + Sync,
        make_mechanism: impl Fn() -> M + Sync,
    ) -> SuiteBuckets
    where
        P: BranchPredictor + Send,
        M: ConfidenceMechanism + Send + 'static,
    {
        self.run_suite_mechanisms(suite, trace_len, make_predictor, || {
            vec![Box::new(make_mechanism()) as Box<dyn ConfidenceMechanism>]
        })
        .pop()
        .expect("one mechanism, one result")
    }

    /// Runs several mechanism configurations over the suite, driving the
    /// predictor once per benchmark (not once per mechanism). Returns one
    /// [`SuiteBuckets`] per factory, in order — a one-configuration
    /// convenience over [`run_grid`](Self::run_grid).
    pub fn run_suite_mechanisms<P>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        make_predictor: impl Fn() -> P + Sync,
        make_mechanisms: impl Fn() -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
    ) -> Vec<SuiteBuckets>
    where
        P: BranchPredictor + Send,
    {
        self.run_grid(
            suite,
            trace_len,
            &[()],
            |_| make_predictor(),
            |_| make_mechanisms(),
        )
        .pop()
        .expect("one config in, one config out")
    }

    /// Runs the §2 static analysis (bucket = static PC) over the suite on
    /// cached traces.
    pub fn run_suite_static<P>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        make_predictor: impl Fn() -> P + Sync,
    ) -> SuiteBuckets
    where
        P: BranchPredictor + Send,
    {
        let per_benchmark = self.map_suite(suite, trace_len, |bench, trace| {
            let mut predictor = make_predictor();
            (
                bench.name().to_owned(),
                replay::replay_static(trace, trace_len as usize, &mut predictor),
            )
        });
        let combined = BucketStats::combine_equal_weight(per_benchmark.iter().map(|(_, s)| s));
        SuiteBuckets {
            per_benchmark,
            combined,
        }
    }

    /// Runs an online estimator over the suite, returning per-benchmark
    /// counts and their sum (benchmarks use equal trace lengths, so
    /// summing preserves the equal-weight convention).
    pub fn run_suite_estimator<P, E>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        make_predictor: impl Fn() -> P + Sync,
        make_estimator: impl Fn() -> E + Sync,
    ) -> (Vec<(String, ConfusionCounts)>, ConfusionCounts)
    where
        P: BranchPredictor + Send,
        E: ConfidenceEstimator + Send,
    {
        let per = self.map_suite(suite, trace_len, |bench, trace| {
            let mut predictor = make_predictor();
            let mut estimator = make_estimator();
            (
                bench.name().to_owned(),
                replay::replay_estimator(
                    trace,
                    trace_len as usize,
                    &mut predictor,
                    &mut estimator,
                ),
            )
        });
        let mut total = ConfusionCounts::new();
        for (_, c) in &per {
            total.merge(c);
        }
        (per, total)
    }

    /// Per-benchmark predictor accuracy (no confidence structures) — used
    /// by the calibration harness to report the §1.2 / §5.3 operating
    /// points.
    pub fn run_suite_predictor<P>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        make_predictor: impl Fn() -> P + Sync,
    ) -> Vec<(String, PredictorRun)>
    where
        P: BranchPredictor + Send,
    {
        self.map_suite(suite, trace_len, |bench, trace| {
            let mut predictor = make_predictor();
            (
                bench.name().to_owned(),
                replay::replay_predictor(trace, trace_len as usize, &mut predictor),
            )
        })
    }

    /// Maps an arbitrary per-benchmark simulation over the suite on the
    /// shared pool, handing each invocation the benchmark and its cached
    /// materialized trace (at least `trace_len` records; replay a prefix
    /// if longer). This is the escape hatch for experiments with bespoke
    /// inner loops (flush ablations, pipeline models) so they stop rolling
    /// their own `std::thread` fan-out and oversubscribing cores.
    pub fn map_suite<R: Send>(
        &self,
        suite: &[Benchmark],
        trace_len: u64,
        f: impl Fn(&Benchmark, &PackedTrace) -> R + Sync,
    ) -> Vec<R> {
        let traces = self.materialize(suite, trace_len);
        self.pool
            .scope_map(suite, |i, bench| {
                self.timed_replay(|| f(bench, &traces[i]))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn mini_suite() -> Vec<Benchmark> {
        ibs_like_suite().into_iter().take(3).collect()
    }

    #[test]
    fn suite_mechanism_combines_benchmarks() {
        let suite = mini_suite();
        let out = Engine::global().run_suite_mechanism(
            &suite,
            20_000,
            || Gshare::new(12, 12),
            || ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes),
        );
        assert_eq!(out.per_benchmark.len(), 3);
        // Equal weighting: combined refs = number of benchmarks.
        assert!((out.combined.total_refs() - 3.0).abs() < 1e-9);
        let curve = out.curve();
        assert!(curve.coverage_at(100.0) > 99.9);
        assert!(out.benchmark_curve(suite[0].name()).is_some());
        assert!(out.benchmark_curve("nope").is_none());
    }

    #[test]
    fn multi_mechanism_run_matches_single_runs() {
        let suite = mini_suite();
        let engine = Engine::global();
        let single = engine.run_suite_mechanism(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes),
        );
        let multi = engine.run_suite_mechanisms(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || {
                vec![Box::new(ResettingConfidence::new(
                    IndexSpec::pc(10),
                    16,
                    InitPolicy::AllOnes,
                )) as Box<dyn ConfidenceMechanism>]
            },
        );
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].combined, single.combined);
    }

    #[test]
    fn static_run_produces_pc_buckets() {
        let suite = mini_suite();
        let out = Engine::global().run_suite_static(&suite, 10_000, || Gshare::new(10, 10));
        assert!(out.combined.distinct_keys() > 50);
    }

    #[test]
    fn estimator_run_totals() {
        let suite = mini_suite();
        let (per, total) = Engine::global().run_suite_estimator(
            &suite,
            5_000,
            || Gshare::new(10, 10),
            || {
                ThresholdEstimator::new(
                    ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes),
                    LowRule::KeyBelow(16),
                )
            },
        );
        assert_eq!(per.len(), 3);
        assert_eq!(total.total(), 15_000);
    }

    #[test]
    fn predictor_run_reports_each_benchmark() {
        let suite = mini_suite();
        let runs = Engine::global().run_suite_predictor(&suite, 5_000, || Gshare::new(10, 10));
        assert_eq!(runs.len(), 3);
        for (name, run) in &runs {
            assert_eq!(run.branches, 5_000, "{name}");
            assert!(run.miss_rate() < 0.5, "{name}: {}", run.miss_rate());
        }
    }

    #[test]
    fn grid_shape_and_sharing() {
        let engine = Engine::with_jobs(4);
        let suite = mini_suite();
        let maxes = [8u32, 16];
        let grid = engine.run_grid(
            &suite,
            8_000,
            &maxes,
            |_| Gshare::new(10, 10),
            |&max| {
                vec![Box::new(ResettingConfidence::new(
                    IndexSpec::pc_xor_bhr(10),
                    max,
                    InitPolicy::AllOnes,
                )) as Box<dyn ConfidenceMechanism>]
            },
        );
        assert_eq!(grid.len(), 2);
        for row in &grid {
            assert_eq!(row.len(), 1);
            assert_eq!(row[0].per_benchmark.len(), 3);
            assert!((row[0].combined.total_refs() - 3.0).abs() < 1e-9);
        }
        // All configurations shared one materialization per benchmark.
        assert_eq!(engine.cache().entries(), 3);
        // Every (config, benchmark) task was counted and timed.
        assert_eq!(engine.metrics().replays.get(), 2 * 3);
        assert_eq!(engine.metrics().replay_us.snapshot().count, 2 * 3);
    }

    #[test]
    fn map_suite_hands_out_cached_traces() {
        let engine = Engine::with_jobs(2);
        let suite = mini_suite();
        let lens = engine.map_suite(&suite, 2_000, |_, trace| trace.len());
        assert_eq!(lens, vec![2_000, 2_000, 2_000]);
        let again = engine.map_suite(&suite, 1_000, |_, trace| trace.len());
        // Cached buffers are reused (longer is fine; callers replay a prefix).
        assert_eq!(again, vec![2_000, 2_000, 2_000]);
        assert_eq!(engine.cache().entries(), 3);
    }
}
