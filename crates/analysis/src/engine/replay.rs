//! Batched replay kernel over materialized traces.
//!
//! The §1.2 loop shape is preserved exactly — predict, score, update, push
//! history, with every component seeing the pre-branch BHR — but the loop
//! is restructured for throughput:
//!
//! * the trace comes from a [`PackedTrace`] (no regeneration, no iterator
//!   plumbing in the hot path);
//! * records are processed in chunks: the [`super::simd`] fill pass expands
//!   each chunk's `(pc, history, taken)` lanes from the SoA trace with no
//!   loop-carried history dependency, one
//!   [`predict_train_batch`](BranchPredictor::predict_train_batch) call
//!   drives the predictor's branchless kernel over the whole chunk, then
//!   each mechanism consumes the chunk in its own tight loop — hoisting the
//!   `&mut dyn ConfidenceMechanism` dispatch pattern out of the per-record
//!   interleave (mechanisms are independent observers, so per-mechanism
//!   chunk loops produce bit-identical statistics to the per-record
//!   interleave of [`crate::runner`]);
//! * per-key counts accumulate in dense integer arrays when the mechanism
//!   exposes a small [`key_space`](cira_core::ConfidenceMechanism::key_space),
//!   instead of a hash-map probe per record, and are folded into
//!   [`BucketStats`] once at the end (exact: integer counts in `f64`).

use std::collections::HashMap;

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::codec::PackedTrace;

use crate::buckets::BucketStats;
use crate::metrics::ConfusionCounts;
use crate::runner::{PredictorRun, DRIVER_BHR_WIDTH};

/// Records per chunk: large enough to amortize the per-mechanism loop
/// switch, small enough that the chunk buffers stay cache-resident.
const CHUNK: usize = 4096;

/// Largest `key_space` accumulated in a dense array (16 MiB of counters);
/// anything larger (or unbounded) falls back to a hash map.
const DENSE_MAX: u64 = 1 << 20;

/// Per-key `(refs, mispredicts)` accumulator, dense when the key space is
/// small and enumerable.
enum KeyCounts {
    /// `(refs, mispredicts)` per key — one indexed access per record.
    /// Keys at or beyond the declared `key_space` indicate a buggy
    /// mechanism; they spill into `overflow` (with a one-shot warning)
    /// rather than aborting a whole suite run mid-grid.
    Dense {
        cells: Vec<(u64, u64)>,
        overflow: HashMap<u64, (u64, u64)>,
        warned: bool,
    },
    Sparse(HashMap<u64, (u64, u64)>),
}

impl KeyCounts {
    fn for_key_space(key_space: Option<u64>) -> Self {
        match key_space {
            Some(n) if n <= DENSE_MAX => KeyCounts::Dense {
                cells: vec![(0, 0); n as usize],
                overflow: HashMap::new(),
                warned: false,
            },
            _ => KeyCounts::Sparse(HashMap::new()),
        }
    }

    #[inline]
    fn observe(&mut self, key: u64, mispredicted: bool) {
        match self {
            KeyCounts::Dense {
                cells,
                overflow,
                warned,
            } => match cells.get_mut(key as usize) {
                Some(cell) => {
                    cell.0 += 1;
                    cell.1 += mispredicted as u64;
                }
                // A mechanism whose keys exceed its declared key_space is a
                // bug upstream, but neither losing the sample nor panicking
                // mid-grid would serve the caller: count it sparsely.
                None => {
                    if !*warned {
                        *warned = true;
                        cira_obs::warn!(
                            "confidence key outside declared key_space",
                            key = key,
                            key_space = cells.len() as u64
                        );
                    }
                    let e = overflow.entry(key).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += mispredicted as u64;
                }
            },
            KeyCounts::Sparse(map) => {
                let e = map.entry(key).or_insert((0, 0));
                e.0 += 1;
                e.1 += mispredicted as u64;
            }
        }
    }

    /// Folds the counts into `BucketStats` in ascending key order.
    fn into_stats(self) -> BucketStats {
        let mut stats = BucketStats::new();
        match self {
            KeyCounts::Dense {
                cells, overflow, ..
            } => {
                for (key, (r, m)) in cells.into_iter().enumerate() {
                    stats.record_batch(key as u64, r, m);
                }
                // Overflow keys all exceed the dense range, so appending
                // them sorted preserves ascending key order overall.
                let mut spill: Vec<(u64, (u64, u64))> = overflow.into_iter().collect();
                spill.sort_unstable_by_key(|&(k, _)| k);
                for (k, (r, m)) in spill {
                    stats.record_batch(k, r, m);
                }
            }
            KeyCounts::Sparse(map) => {
                let mut keys: Vec<(u64, (u64, u64))> = map.into_iter().collect();
                keys.sort_unstable_by_key(|&(k, _)| k);
                for (k, (r, m)) in keys {
                    stats.record_batch(k, r, m);
                }
            }
        }
        stats
    }
}

/// Reusable chunk buffers for the predictor pass.
struct ChunkBufs {
    pcs: Vec<u64>,
    hists: Vec<u64>,
    takens: Vec<bool>,
    correct: Vec<bool>,
}

impl ChunkBufs {
    fn new() -> Self {
        Self {
            pcs: vec![0; CHUNK],
            hists: vec![0; CHUNK],
            takens: vec![false; CHUNK],
            correct: vec![false; CHUNK],
        }
    }
}

/// Drives `predictor` over the first `len` records of `trace`, filling the
/// chunk buffers and invoking `consume(chunk_len, bufs)` after each chunk.
///
/// Per chunk: the [`super::simd`] pass expands `(pc, history, taken)` lanes
/// straight from the SoA trace (no serial BHR pushes), then one
/// `predict_train_batch` call runs the predictor's branchless kernel — or
/// the trait's scalar default for predictors without an override.
/// Bit-identical to the per-record §1.2 loop by the kernel contracts.
fn drive_chunks<P: BranchPredictor>(
    trace: &PackedTrace,
    len: usize,
    predictor: &mut P,
    mut consume: impl FnMut(usize, &ChunkBufs),
) -> PredictorRun {
    let n = trace.len().min(len);
    let bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mask = bhr.mask();
    let mut h = bhr.value();
    let mut bufs = ChunkBufs::new();
    let mut run = PredictorRun::default();
    let mut start = 0;
    while start < n {
        // CHUNK is a multiple of 64, so every chunk start is word-aligned
        // in the taken bitmap, as the simd fill requires.
        let c = CHUNK.min(n - start);
        h = super::simd::fill_chunk(
            trace,
            start,
            c,
            h,
            mask,
            &mut bufs.pcs,
            &mut bufs.hists,
            &mut bufs.takens,
        );
        predictor.predict_train_batch(
            &bufs.pcs[..c],
            &bufs.hists[..c],
            &bufs.takens[..c],
            &mut bufs.correct[..c],
        );
        run.mispredicts += bufs.correct[..c].iter().filter(|&&ok| !ok).count() as u64;
        run.branches += c as u64;
        consume(c, &bufs);
        start += c;
    }
    run
}

/// Replays the first `len` records for one predictor plus several
/// confidence mechanisms, returning one [`BucketStats`] per mechanism —
/// bit-identical to [`crate::runner::collect_many_buckets`] over the same
/// records.
pub fn replay_mechanisms<P: BranchPredictor>(
    trace: &PackedTrace,
    len: usize,
    predictor: &mut P,
    mechanisms: &mut [&mut dyn ConfidenceMechanism],
) -> Vec<BucketStats> {
    let mut counts: Vec<KeyCounts> = mechanisms
        .iter()
        .map(|m| KeyCounts::for_key_space(m.key_space()))
        .collect();
    let mut keys = vec![0u64; CHUNK];
    drive_chunks(trace, len, predictor, |c, bufs| {
        for (m, acc) in mechanisms.iter_mut().zip(counts.iter_mut()) {
            // One virtual call per chunk; the mechanism's batch loop
            // computes each record's table slot once for read + update.
            m.observe_batch(
                &bufs.pcs[..c],
                &bufs.hists[..c],
                &bufs.correct[..c],
                &mut keys[..c],
            );
            for (key, correct) in keys[..c].iter().zip(&bufs.correct[..c]) {
                acc.observe(*key, !correct);
            }
        }
    });
    counts.into_iter().map(KeyCounts::into_stats).collect()
}

/// Replays the first `len` records bucketing by static PC — bit-identical
/// to [`crate::runner::collect_static_buckets`]. Counts accumulate densely
/// by packed site index and are keyed back to PCs at the end.
pub fn replay_static<P: BranchPredictor>(
    trace: &PackedTrace,
    len: usize,
    predictor: &mut P,
) -> BucketStats {
    let n = trace.len().min(len);
    let mut refs = vec![0u64; trace.sites()];
    let mut miss = vec![0u64; trace.sites()];
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    for i in 0..n {
        let site = trace.site_index_at(i);
        let pc = trace.site_pc(site);
        let taken = trace.taken_at(i);
        let h = bhr.value();
        let predicted = predictor.predict_train(pc, h, taken);
        refs[site as usize] += 1;
        if predicted != taken {
            miss[site as usize] += 1;
        }
        bhr.push(taken);
    }
    let mut stats = BucketStats::new();
    for site in 0..trace.sites() {
        stats.record_batch(trace.site_pc(site as u32), refs[site], miss[site]);
    }
    stats
}

/// Replays the first `len` records through an online estimator —
/// bit-identical to [`crate::runner::run_estimator`].
pub fn replay_estimator<P: BranchPredictor, E: ConfidenceEstimator>(
    trace: &PackedTrace,
    len: usize,
    predictor: &mut P,
    estimator: &mut E,
) -> ConfusionCounts {
    let n = trace.len().min(len);
    let mut bhr = HistoryRegister::new(DRIVER_BHR_WIDTH);
    let mut counts = ConfusionCounts::new();
    for i in 0..n {
        let pc = trace.site_pc(trace.site_index_at(i));
        let taken = trace.taken_at(i);
        let h = bhr.value();
        let predicted = predictor.predict(pc, h);
        let correct = predicted == taken;
        let confidence = estimator.estimate(pc, h);
        counts.observe(confidence, correct);
        estimator.update(pc, h, correct);
        predictor.update(pc, h, taken);
        bhr.push(taken);
    }
    counts
}

/// Replays the first `len` records through a bare predictor —
/// bit-identical to [`crate::runner::run_predictor`].
pub fn replay_predictor<P: BranchPredictor>(
    trace: &PackedTrace,
    len: usize,
    predictor: &mut P,
) -> PredictorRun {
    drive_chunks(trace, len, predictor, |_, _| {})
}

/// Incremental online replay for streaming consumers.
///
/// The batch kernels above take a whole materialized trace and return; a
/// `StreamingReplay` instead keeps the §1.2 loop's state — predictor
/// tables, confidence tables, the global history register, and accumulated
/// [`BucketStats`] — alive across [`feed`](Self::feed) calls, so a trace
/// can arrive in arbitrary batch splits (e.g. `cira-serve` wire `BATCH`
/// frames) and still produce **bit-identical** statistics to a single
/// [`replay_mechanisms`] pass over the concatenated records. That
/// invariance is what makes the serving path checkable against the offline
/// engine, and `streaming_matches_batched_any_split` asserts it.
///
/// # Examples
///
/// ```
/// use cira_analysis::engine::replay::StreamingReplay;
/// use cira_core::one_level::ResettingConfidence;
/// use cira_core::{IndexSpec, InitPolicy};
/// use cira_predictor::Gshare;
/// use cira_trace::codec::PackedTrace;
/// use cira_trace::BranchRecord;
///
/// let mut replay = StreamingReplay::new(
///     Box::new(Gshare::new(10, 10)),
///     Box::new(ResettingConfidence::new(
///         IndexSpec::pc_xor_bhr(10),
///         16,
///         InitPolicy::AllOnes,
///     )),
/// );
/// let batch: PackedTrace = (0..100u64)
///     .map(|i| BranchRecord::new(0x40, i % 2 == 0))
///     .collect();
/// let fed = replay.feed(&batch);
/// assert_eq!(fed.keys.len(), 100);
/// assert_eq!(replay.run().branches, 100);
/// ```
pub struct StreamingReplay {
    predictor: Box<dyn BranchPredictor + Send>,
    mechanism: Box<dyn ConfidenceMechanism + Send>,
    bhr: HistoryRegister,
    stats: BucketStats,
    run: PredictorRun,
    pcs: Vec<u64>,
    hists: Vec<u64>,
    takens: Vec<bool>,
    correct: Vec<bool>,
    keys: Vec<u64>,
}

impl std::fmt::Debug for StreamingReplay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingReplay")
            .field("predictor", &self.predictor.describe())
            .field("mechanism", &self.mechanism.describe())
            .field("branches", &self.run.branches)
            .finish()
    }
}

/// Per-record results of one [`StreamingReplay::feed`] call, borrowed from
/// the replayer's scratch buffers (valid until the next `feed`).
#[derive(Debug)]
pub struct FedBatch<'a> {
    /// Whether each record's prediction was correct.
    pub correct: &'a [bool],
    /// The confidence key each record read (pre-update).
    pub keys: &'a [u64],
    /// Mispredictions in this batch.
    pub mispredicts: u64,
}

impl StreamingReplay {
    /// A fresh replayer: empty tables, empty history, empty statistics.
    pub fn new(
        predictor: Box<dyn BranchPredictor + Send>,
        mechanism: Box<dyn ConfidenceMechanism + Send>,
    ) -> Self {
        Self {
            predictor,
            mechanism,
            bhr: HistoryRegister::new(DRIVER_BHR_WIDTH),
            stats: BucketStats::new(),
            run: PredictorRun::default(),
            pcs: Vec::new(),
            hists: Vec::new(),
            takens: Vec::new(),
            correct: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// Applies one batch of records, advancing all state, and returns the
    /// per-record outcomes. Splitting a trace differently across `feed`
    /// calls never changes any result.
    pub fn feed(&mut self, batch: &PackedTrace) -> FedBatch<'_> {
        let n = batch.len();
        self.pcs.clear();
        self.pcs.resize(n, 0);
        self.hists.clear();
        self.hists.resize(n, 0);
        self.takens.clear();
        self.takens.resize(n, false);
        self.correct.clear();
        self.correct.resize(n, false);
        self.keys.clear();
        self.keys.resize(n, 0);
        let mask = self.bhr.mask();
        let mut h = self.bhr.value();
        let mut mispredicts = 0u64;
        // Same vectorized kernel and chunk discipline as the offline
        // drivers, so cira-serve sessions inherit the speedup; the chunk's
        // predictor, mechanism, and stats passes touch independent state,
        // so interleaving them per chunk is bit-identical to whole-batch
        // passes. A batch's bitmap starts at its own bit 0, so chunk
        // starts stay word-aligned regardless of how the stream is split.
        let mut start = 0;
        while start < n {
            let c = CHUNK.min(n - start);
            // Chunk-level flight-recorder span; ambient context set by the
            // worker that checked this batch out (a no-op when disabled).
            let span = cira_obs::trace::enabled()
                .then(|| cira_obs::trace::Span::begin_ctx(cira_obs::trace::Stage::Chunk));
            h = super::simd::fill_chunk(
                batch,
                start,
                c,
                h,
                mask,
                &mut self.pcs[start..start + c],
                &mut self.hists[start..start + c],
                &mut self.takens[start..start + c],
            );
            self.predictor.predict_train_batch(
                &self.pcs[start..start + c],
                &self.hists[start..start + c],
                &self.takens[start..start + c],
                &mut self.correct[start..start + c],
            );
            self.mechanism.observe_batch(
                &self.pcs[start..start + c],
                &self.hists[start..start + c],
                &self.correct[start..start + c],
                &mut self.keys[start..start + c],
            );
            for (key, correct) in self.keys[start..start + c]
                .iter()
                .zip(&self.correct[start..start + c])
            {
                // Unit-weight integer accumulation is exact in f64, so this
                // equals the engine's fold-at-the-end in every bit.
                self.stats.observe(*key, !correct);
                mispredicts += !correct as u64;
            }
            if let Some(span) = span {
                span.end_with(c as u64);
            }
            start += c;
        }
        self.bhr.set(h);
        self.run.branches += n as u64;
        self.run.mispredicts += mispredicts;
        FedBatch {
            correct: &self.correct,
            keys: &self.keys,
            mispredicts,
        }
    }

    /// Accumulated per-key statistics over everything fed so far.
    pub fn stats(&self) -> &BucketStats {
        &self.stats
    }

    /// Accumulated branch/mispredict totals.
    pub fn run(&self) -> PredictorRun {
        self.run
    }

    /// The predictor's description string.
    pub fn predictor_describe(&self) -> String {
        self.predictor.describe()
    }

    /// The confidence mechanism's description string.
    pub fn mechanism_describe(&self) -> String {
        self.mechanism.describe()
    }

    /// The current global history register value — part of the replayer's
    /// checkpointable state.
    pub fn bhr_value(&self) -> u64 {
        self.bhr.value()
    }

    /// Restores the global history register (masked to the driver width).
    pub fn set_bhr(&mut self, value: u64) {
        self.bhr.set(value);
    }

    /// Serializes the predictor's mutable table state
    /// (see [`BranchPredictor::state_save`]).
    pub fn predictor_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.predictor.state_save(&mut out);
        out
    }

    /// Restores predictor state saved from an identically configured
    /// replayer.
    ///
    /// # Errors
    ///
    /// Returns a message if the blob does not match the predictor's
    /// configuration.
    pub fn load_predictor_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.predictor.state_load(bytes)
    }

    /// Serializes the confidence mechanism's mutable table state
    /// (see [`ConfidenceMechanism::state_save`]).
    pub fn mechanism_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.mechanism.state_save(&mut out);
        out
    }

    /// Restores mechanism state saved from an identically configured
    /// replayer.
    ///
    /// # Errors
    ///
    /// Returns a message if the blob does not match the mechanism's
    /// configuration.
    pub fn load_mechanism_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.mechanism.state_load(bytes)
    }

    /// Replaces the accumulated per-key statistics (checkpoint restore).
    pub fn restore_stats(&mut self, stats: BucketStats) {
        self.stats = stats;
    }

    /// Replaces the accumulated branch/mispredict totals (checkpoint
    /// restore).
    pub fn restore_run(&mut self, run: PredictorRun) {
        self.run = run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use cira_core::one_level::{OneLevelCir, ResettingConfidence};
    use cira_core::{IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn packed(bench_idx: usize, len: usize) -> PackedTrace {
        ibs_like_suite()[bench_idx].walker().take(len).collect()
    }

    #[test]
    fn mechanisms_match_sequential_runner() {
        let trace = packed(0, 30_000);
        let records: Vec<_> = trace.iter().collect();

        let mut p = Gshare::new(12, 12);
        let mut a = ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes);
        let mut b = OneLevelCir::new(IndexSpec::pc(12), 16, InitPolicy::AllOnes);
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut a, &mut b];
        let legacy = runner::collect_many_buckets(records.iter().copied(), &mut p, &mut refs);

        let mut p2 = Gshare::new(12, 12);
        let mut a2 = ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes);
        let mut b2 = OneLevelCir::new(IndexSpec::pc(12), 16, InitPolicy::AllOnes);
        let mut refs2: Vec<&mut dyn ConfidenceMechanism> = vec![&mut a2, &mut b2];
        let batched = replay_mechanisms(&trace, 30_000, &mut p2, &mut refs2);

        assert_eq!(legacy, batched);
    }

    #[test]
    fn static_matches_sequential_runner() {
        let trace = packed(1, 20_000);
        let legacy = runner::collect_static_buckets(trace.iter(), &mut Gshare::new(10, 10));
        let batched = replay_static(&trace, 20_000, &mut Gshare::new(10, 10));
        assert_eq!(legacy, batched);
    }

    #[test]
    fn estimator_matches_sequential_runner() {
        let trace = packed(2, 20_000);
        let mk_est = || {
            ThresholdEstimator::new(
                ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes),
                LowRule::KeyBelow(8),
            )
        };
        let legacy =
            runner::run_estimator(trace.iter(), &mut Gshare::new(10, 10), &mut mk_est());
        let batched = replay_estimator(&trace, 20_000, &mut Gshare::new(10, 10), &mut mk_est());
        assert_eq!(legacy, batched);
    }

    #[test]
    fn predictor_matches_sequential_runner() {
        let trace = packed(3, 25_000);
        let legacy = runner::run_predictor(trace.iter(), &mut Gshare::new(12, 12));
        let batched = replay_predictor(&trace, 25_000, &mut Gshare::new(12, 12));
        assert_eq!(legacy, batched);
    }

    #[test]
    fn shorter_len_replays_prefix() {
        let trace = packed(0, 10_000);
        let prefix: Vec<_> = trace.iter().take(4_000).collect();
        let legacy = runner::run_predictor(prefix, &mut Gshare::new(10, 10));
        let batched = replay_predictor(&trace, 4_000, &mut Gshare::new(10, 10));
        assert_eq!(legacy, batched);
    }

    #[test]
    fn streaming_matches_batched_any_split() {
        let trace = packed(2, 25_000);
        let mut p = Gshare::new(11, 11);
        let mut m = ResettingConfidence::new(IndexSpec::pc_xor_bhr(11), 16, InitPolicy::AllOnes);
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut m];
        let reference = replay_mechanisms(&trace, 25_000, &mut p, &mut refs).remove(0);
        let ref_run = replay_predictor(&trace, 25_000, &mut Gshare::new(11, 11));

        // Feed the same records in awkward uneven splits, including a
        // zero-length batch; state must carry across batch boundaries.
        for splits in [
            vec![25_000usize],
            vec![1, 0, 4095, 4096, 4097, 12_711],
            vec![100; 250],
        ] {
            let mut streaming = StreamingReplay::new(
                Box::new(Gshare::new(11, 11)),
                Box::new(ResettingConfidence::new(
                    IndexSpec::pc_xor_bhr(11),
                    16,
                    InitPolicy::AllOnes,
                )),
            );
            let mut at = 0;
            let mut fed_miss = 0;
            for len in splits {
                let batch: PackedTrace =
                    (at..at + len).map(|i| trace.get(i).unwrap()).collect();
                fed_miss += streaming.feed(&batch).mispredicts;
                at += len;
            }
            assert_eq!(at, 25_000);
            assert_eq!(streaming.stats(), &reference);
            assert_eq!(streaming.run(), ref_run);
            assert_eq!(fed_miss, ref_run.mispredicts);
        }
    }

    #[test]
    fn checkpoint_restore_is_bit_identical_mid_stream() {
        // Save every piece of streaming state mid-trace, rebuild a fresh
        // replayer, restore, and finish: stats and totals must match an
        // uninterrupted replay in every bit.
        let trace = packed(1, 20_000);
        let build = || {
            StreamingReplay::new(
                Box::new(Gshare::new(11, 11)) as Box<dyn cira_predictor::BranchPredictor + Send>,
                Box::new(ResettingConfidence::new(
                    IndexSpec::pc_xor_bhr(11),
                    16,
                    InitPolicy::AllOnes,
                )) as Box<dyn ConfidenceMechanism + Send>,
            )
        };
        let mut uninterrupted = build();
        uninterrupted.feed(&trace.iter().collect());

        let first: PackedTrace = trace.iter().take(9_000).collect();
        let rest: PackedTrace = trace.iter().skip(9_000).collect();
        let mut before = build();
        before.feed(&first);
        let predictor_blob = before.predictor_state();
        let mechanism_blob = before.mechanism_state();
        let bhr = before.bhr_value();
        let stats = before.stats().clone();
        let run = before.run();
        drop(before);

        let mut after = build();
        after.load_predictor_state(&predictor_blob).unwrap();
        after.load_mechanism_state(&mechanism_blob).unwrap();
        after.set_bhr(bhr);
        after.restore_stats(stats);
        after.restore_run(run);
        after.feed(&rest);

        assert_eq!(after.stats(), uninterrupted.stats());
        assert_eq!(after.run(), uninterrupted.run());
    }

    #[test]
    fn key_counts_spill_out_of_range_keys() {
        // Dense accumulator declared for keys 0..4; keys beyond that must
        // accumulate (not panic) and fold back with exact counts.
        let mut counts = KeyCounts::for_key_space(Some(4));
        counts.observe(1, false);
        counts.observe(10, true);
        counts.observe(10, false);
        counts.observe(7, true);
        let stats = counts.into_stats();
        assert_eq!(stats.cell(1).map(|c| c.refs), Some(1.0));
        assert_eq!(stats.cell(7).map(|c| (c.refs, c.mispredicts)), Some((1.0, 1.0)));
        assert_eq!(stats.cell(10).map(|c| (c.refs, c.mispredicts)), Some((2.0, 1.0)));
        assert_eq!(stats.total_refs(), 4.0);
        assert_eq!(stats.total_mispredicts(), 2.0);
    }

    /// A buggy mechanism that declares `key_space() == Some(4)` but emits
    /// key 10 for every branch.
    struct LyingMechanism;

    impl ConfidenceMechanism for LyingMechanism {
        fn read_key(&self, _pc: u64, _bhr: u64) -> u64 {
            10
        }
        fn update(&mut self, _pc: u64, _bhr: u64, _correct: bool) {}
        fn key_space(&self) -> Option<u64> {
            Some(4)
        }
        fn describe(&self) -> String {
            "lying".into()
        }
        fn flush(&mut self) {}
    }

    #[test]
    fn out_of_range_keys_do_not_panic_replay() {
        let trace = packed(0, 2_000);
        let mut lying = LyingMechanism;
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut lying];
        let stats = replay_mechanisms(&trace, 2_000, &mut Gshare::new(8, 8), &mut refs).remove(0);
        assert_eq!(stats.total_refs(), 2_000.0);
        assert!(stats.cell(10).is_some(), "spilled key is still reported");
    }

    #[test]
    fn empty_trace_is_empty_stats() {
        let trace = PackedTrace::new();
        let mut mech =
            ResettingConfidence::new(IndexSpec::pc(8), 16, InitPolicy::AllOnes);
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = vec![&mut mech];
        let out = replay_mechanisms(&trace, 1_000, &mut Gshare::new(8, 8), &mut refs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].total_refs(), 0.0);
    }
}
