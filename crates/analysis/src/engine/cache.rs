//! Materialized trace cache.
//!
//! Every suite experiment walks the same synthetic benchmarks. Generation
//! is the expensive part — the behaviour models sample an RNG per branch —
//! and the old path regenerated each trace once *per configuration*. The
//! cache walks each benchmark once into a shared [`PackedTrace`]
//! (~4.1 bytes/record) keyed by `(name, run seed)`; N configurations then
//! replay the same buffer.
//!
//! Entries are keyed without the length: a request for a longer trace
//! replaces the entry (walkers are deterministic, so a longer walk's
//! prefix equals the shorter walk), and shorter requests replay a prefix
//! of the cached buffer.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use cira_trace::codec::PackedTrace;
use cira_trace::suite::Benchmark;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    run_seed: u64,
}

fn key(bench: &Benchmark) -> Key {
    Key {
        name: bench.name().to_owned(),
        run_seed: bench.run_seed(),
    }
}

/// Shared store of materialized benchmark traces; see the module docs.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<Key, Arc<PackedTrace>>>,
}

fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a materialized trace of at least `len` records for `bench`
    /// (exactly `len` unless a longer walk is already cached), walking the
    /// benchmark only on a miss.
    pub fn get(&self, bench: &Benchmark, len: u64) -> Arc<PackedTrace> {
        let k = key(bench);
        if let Some(t) = lock_clean(&self.entries).get(&k) {
            if t.len() as u64 >= len {
                return Arc::clone(t);
            }
        }
        // Materialize outside the lock; a concurrent duplicate walk is
        // wasted work but not an error (grid runs pre-materialize one
        // task per benchmark, so duplicates do not occur in practice).
        cira_obs::debug!(
            "materializing trace",
            benchmark = k.name,
            records = len
        );
        let trace: PackedTrace = bench.walker().take(len as usize).collect();
        let trace = Arc::new(trace);
        let mut g = lock_clean(&self.entries);
        let slot = g.entry(k).or_insert_with(|| Arc::clone(&trace));
        if slot.len() < trace.len() {
            *slot = Arc::clone(&trace);
        }
        Arc::clone(slot)
    }

    /// Number of cached benchmark traces.
    pub fn entries(&self) -> usize {
        lock_clean(&self.entries).len()
    }

    /// Approximate bytes held by cached traces.
    pub fn approx_bytes(&self) -> usize {
        lock_clean(&self.entries)
            .values()
            .map(|t| t.approx_bytes())
            .sum()
    }

    /// Drops all cached traces (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        lock_clean(&self.entries).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_trace::suite::ibs_like_suite;

    #[test]
    fn caches_and_reuses() {
        let cache = TraceCache::new();
        let suite = ibs_like_suite();
        let a = cache.get(&suite[0], 5_000);
        let b = cache.get(&suite[0], 5_000);
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        assert_eq!(cache.entries(), 1);
        assert_eq!(a.len(), 5_000);
        assert!(cache.approx_bytes() > 0);
    }

    #[test]
    fn longer_request_replaces_shorter_prefix_matches() {
        let cache = TraceCache::new();
        let suite = ibs_like_suite();
        let short = cache.get(&suite[1], 2_000);
        let long = cache.get(&suite[1], 6_000);
        assert_eq!(long.len(), 6_000);
        // Deterministic walkers: the longer trace starts with the shorter.
        let prefix: Vec<_> = long.iter().take(2_000).collect();
        assert_eq!(prefix, short.iter().collect::<Vec<_>>());
        // Shorter requests now serve from the longer buffer.
        let again = cache.get(&suite[1], 2_000);
        assert!(Arc::ptr_eq(&again, &long));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn distinct_benchmarks_get_distinct_entries() {
        let cache = TraceCache::new();
        let suite = ibs_like_suite();
        cache.get(&suite[0], 1_000);
        cache.get(&suite[1], 1_000);
        assert_eq!(cache.entries(), 2);
        cache.clear();
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn matches_direct_walk() {
        let cache = TraceCache::new();
        let suite = ibs_like_suite();
        let t = cache.get(&suite[3], 3_000);
        let direct: Vec<_> = suite[3].walker().take(3_000).collect();
        assert_eq!(t.iter().collect::<Vec<_>>(), direct);
    }
}
