//! Counter-value statistics tables — the format of the paper's Table 1.
//!
//! For a counter-compressed confidence mechanism (resetting or saturating)
//! the bucket keys are the counter values `0..=max`; sorting by key
//! ascending is sorting by "time since last misprediction", which is also
//! (to excellent approximation) worst-bucket-first. The table reports, per
//! counter value, its misprediction rate, its share of references, and the
//! cumulative shares — exactly Table 1's columns.

use std::fmt;

use crate::buckets::BucketStats;

/// One row of a counter statistics table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterRow {
    /// Counter value.
    pub count: u32,
    /// Misprediction rate of branches seen at this counter value.
    pub miss_rate: f64,
    /// Percent of all references at this counter value.
    pub pct_refs: f64,
    /// Cumulative percent of mispredictions for counts `0..=count`.
    pub cum_pct_mispredicts: f64,
    /// Cumulative percent of references for counts `0..=count`.
    pub cum_pct_refs: f64,
}

/// Table 1: per-counter-value statistics, counts ascending.
///
/// # Examples
///
/// ```
/// use cira_analysis::{BucketStats, CounterTable};
///
/// let mut s = BucketStats::new();
/// s.observe(0, true);
/// s.observe(2, false);
/// let t = CounterTable::from_buckets(&s, 2);
/// assert_eq!(t.rows().len(), 3);
/// assert_eq!(t.rows()[0].miss_rate, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTable {
    rows: Vec<CounterRow>,
    total_refs: f64,
    total_miss: f64,
}

impl CounterTable {
    /// Builds the table from bucket statistics whose keys are counter
    /// values `0..=max` (keys above `max` are ignored; missing keys yield
    /// all-zero rows).
    pub fn from_buckets(stats: &BucketStats, max: u32) -> Self {
        let total_refs = stats.total_refs();
        let total_miss = stats.total_mispredicts();
        let mut rows = Vec::with_capacity(max as usize + 1);
        let mut cum_refs = 0.0;
        let mut cum_miss = 0.0;
        for count in 0..=max {
            let (refs, miss) = stats
                .cell(count as u64)
                .map(|c| (c.refs, c.mispredicts))
                .unwrap_or((0.0, 0.0));
            cum_refs += refs;
            cum_miss += miss;
            rows.push(CounterRow {
                count,
                miss_rate: if refs > 0.0 { miss / refs } else { 0.0 },
                pct_refs: pct(refs, total_refs),
                cum_pct_mispredicts: pct(cum_miss, total_miss),
                cum_pct_refs: pct(cum_refs, total_refs),
            });
        }
        Self {
            rows,
            total_refs,
            total_miss,
        }
    }

    /// The rows, counter value ascending.
    pub fn rows(&self) -> &[CounterRow] {
        &self.rows
    }

    /// The row for a specific counter value, if within range.
    pub fn row(&self, count: u32) -> Option<&CounterRow> {
        self.rows.get(count as usize)
    }

    /// Overall misprediction rate.
    pub fn miss_rate(&self) -> f64 {
        if self.total_refs > 0.0 {
            self.total_miss / self.total_refs
        } else {
            0.0
        }
    }

    /// Serializes as CSV (`count,miss_rate,pct_refs,cum_pct_mispredicts,
    /// cum_pct_refs`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("count,miss_rate,pct_refs,cum_pct_mispredicts,cum_pct_refs\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.4},{:.2},{:.2}\n",
                r.count, r.miss_rate, r.pct_refs, r.cum_pct_mispredicts, r.cum_pct_refs
            ));
        }
        out
    }
}

fn pct(x: f64, total: f64) -> f64 {
    if total > 0.0 {
        100.0 * x / total
    } else {
        0.0
    }
}

impl fmt::Display for CounterTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>8}  {:>7}  {:>9}  {:>9}",
            "Count", "Mispred.", "% Refs.", "Cum.%Mis.", "Cum.%Refs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>5}  {:>8.4}  {:>7.3}  {:>9.1}  {:>9.1}",
                r.count, r.miss_rate, r.pct_refs, r.cum_pct_mispredicts, r.cum_pct_refs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> BucketStats {
        let mut s = BucketStats::new();
        // count 0: 10 refs, 5 miss; count 1: 20 refs, 2 miss;
        // count 2: 70 refs, 1 miss.
        for i in 0..10 {
            s.observe(0, i < 5);
        }
        for i in 0..20 {
            s.observe(1, i < 2);
        }
        for i in 0..70 {
            s.observe(2, i < 1);
        }
        s
    }

    #[test]
    fn rows_cover_all_counts() {
        let t = CounterTable::from_buckets(&stats(), 2);
        assert_eq!(t.rows().len(), 3);
        let r0 = t.row(0).unwrap();
        assert!((r0.miss_rate - 0.5).abs() < 1e-12);
        assert!((r0.pct_refs - 10.0).abs() < 1e-9);
        assert!((r0.cum_pct_mispredicts - 62.5).abs() < 1e-9);
        assert!((r0.cum_pct_refs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn last_row_reaches_100() {
        let t = CounterTable::from_buckets(&stats(), 2);
        let last = t.rows().last().unwrap();
        assert!((last.cum_pct_mispredicts - 100.0).abs() < 1e-9);
        assert!((last.cum_pct_refs - 100.0).abs() < 1e-9);
    }

    #[test]
    fn missing_counts_yield_zero_rows() {
        let mut s = BucketStats::new();
        s.observe(3, true);
        let t = CounterTable::from_buckets(&s, 4);
        assert_eq!(t.row(1).unwrap().pct_refs, 0.0);
        assert_eq!(t.row(1).unwrap().miss_rate, 0.0);
        assert_eq!(t.row(3).unwrap().pct_refs, 100.0);
    }

    #[test]
    fn keys_above_max_ignored() {
        let mut s = BucketStats::new();
        s.observe(0, false);
        s.observe(99, true);
        let t = CounterTable::from_buckets(&s, 1);
        // cum refs only reaches 50% because key 99 is outside the table.
        assert!((t.rows().last().unwrap().cum_pct_refs - 50.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = CounterTable::from_buckets(&stats(), 2).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("count,"));
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn display_renders_all_rows() {
        let text = CounterTable::from_buckets(&stats(), 2).to_string();
        assert!(text.contains("Count"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_stats_table() {
        let t = CounterTable::from_buckets(&BucketStats::new(), 16);
        assert_eq!(t.rows().len(), 17);
        assert_eq!(t.miss_rate(), 0.0);
    }
}
