//! Deprecated shims over the canonical suite API.
//!
//! The suite-level drivers live on [`Engine`](crate::engine::Engine) —
//! see [`crate::engine`] for the execution model (trace cache, work-
//! stealing pool, batched replay kernel) and the paper's equal-dynamic-
//! branch weighting. The free functions here survive one release as
//! one-line delegations to [`Engine::global`](crate::engine::Engine::global)
//! so out-of-tree callers get a deprecation warning instead of a break;
//! in-tree code calls the engine methods directly.

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::BranchPredictor;
use cira_trace::suite::Benchmark;

use crate::engine::Engine;
use crate::metrics::ConfusionCounts;
use crate::runner;

pub use crate::engine::SuiteBuckets;

/// Runs one predictor + mechanism pair over every benchmark.
#[deprecated(note = "use Engine::global().run_suite_mechanism")]
pub fn run_suite_mechanism<P, M>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanism: impl Fn() -> M + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
    M: ConfidenceMechanism + Send + 'static,
{
    Engine::global().run_suite_mechanism(suite, trace_len, make_predictor, make_mechanism)
}

/// Runs several mechanism configurations over the suite.
#[deprecated(note = "use Engine::global().run_suite_mechanisms")]
pub fn run_suite_mechanisms<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanisms: impl Fn() -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
) -> Vec<SuiteBuckets>
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_mechanisms(suite, trace_len, make_predictor, make_mechanisms)
}

/// Runs the §2 static analysis (bucket = static PC) over the suite.
#[deprecated(note = "use Engine::global().run_suite_static")]
pub fn run_suite_static<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_static(suite, trace_len, make_predictor)
}

/// Runs an online estimator over the suite.
#[deprecated(note = "use Engine::global().run_suite_estimator")]
pub fn run_suite_estimator<P, E>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_estimator: impl Fn() -> E + Sync,
) -> (Vec<(String, ConfusionCounts)>, ConfusionCounts)
where
    P: BranchPredictor + Send,
    E: ConfidenceEstimator + Send,
{
    Engine::global().run_suite_estimator(suite, trace_len, make_predictor, make_estimator)
}

/// Per-benchmark predictor accuracy (no confidence structures).
#[deprecated(note = "use Engine::global().run_suite_predictor")]
pub fn run_suite_predictor<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> Vec<(String, runner::PredictorRun)>
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_predictor(suite, trace_len, make_predictor)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, InitPolicy};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    /// The shims are pure delegation: identical output to the engine
    /// method they point at (behavioral coverage lives in
    /// `crate::engine::tests`).
    #[test]
    fn shims_delegate_to_the_engine() {
        let suite: Vec<Benchmark> = ibs_like_suite().into_iter().take(2).collect();
        let via_shim = run_suite_mechanism(
            &suite,
            5_000,
            || Gshare::new(10, 10),
            || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes),
        );
        let via_engine = Engine::global().run_suite_mechanism(
            &suite,
            5_000,
            || Gshare::new(10, 10),
            || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes),
        );
        assert_eq!(via_shim.combined, via_engine.combined);
        let s = run_suite_static(&suite, 2_000, || Gshare::new(10, 10));
        assert_eq!(
            s.combined,
            Engine::global()
                .run_suite_static(&suite, 2_000, || Gshare::new(10, 10))
                .combined
        );
    }
}
