//! Suite-level experiment drivers.
//!
//! The paper reports composite results over the IBS suite, weighting each
//! benchmark to contribute the same number of dynamic branches (§1.2).
//! These helpers run a factory-constructed predictor + mechanism pair per
//! benchmark (fresh tables per benchmark, exactly like simulating each
//! trace separately), then combine with
//! [`BucketStats::combine_equal_weight`].
//!
//! Execution goes through the shared [`Engine`]:
//! benchmark traces are materialized once into packed buffers and replayed
//! by the batched kernel on the process-wide work-stealing pool. Results
//! are bit-identical to driving [`crate::runner`] sequentially per
//! benchmark (the engine's golden-equivalence tests assert this) and
//! independent of the worker count.

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::BranchPredictor;
use cira_trace::suite::Benchmark;

use crate::buckets::BucketStats;
use crate::curve::CoverageCurve;
use crate::engine::Engine;
use crate::metrics::ConfusionCounts;
use crate::runner;

/// Per-benchmark and combined bucket statistics for one mechanism
/// configuration.
#[derive(Debug, Clone)]
pub struct SuiteBuckets {
    /// `(benchmark name, stats)` in suite order.
    pub per_benchmark: Vec<(String, BucketStats)>,
    /// Equal-dynamic-branch-weighted combination.
    pub combined: BucketStats,
}

impl SuiteBuckets {
    /// The coverage curve of the combined statistics.
    pub fn curve(&self) -> CoverageCurve {
        CoverageCurve::from_buckets(&self.combined)
    }

    /// The coverage curve of one benchmark by name.
    pub fn benchmark_curve(&self, name: &str) -> Option<CoverageCurve> {
        self.per_benchmark
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| CoverageCurve::from_buckets(s))
    }
}

/// Runs `make_predictor()` + `make_mechanism()` over every benchmark
/// (`trace_len` dynamic branches each) on the shared engine.
pub fn run_suite_mechanism<P, M>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanism: impl Fn() -> M + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
    M: ConfidenceMechanism + Send + 'static,
{
    run_suite_mechanisms(suite, trace_len, make_predictor, || {
        vec![Box::new(make_mechanism()) as Box<dyn ConfidenceMechanism>]
    })
    .pop()
    .expect("one mechanism, one result")
}

/// Runs several mechanism configurations over the suite, driving the
/// predictor once per benchmark (not once per mechanism). Returns one
/// [`SuiteBuckets`] per factory, in order.
pub fn run_suite_mechanisms<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanisms: impl Fn() -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
) -> Vec<SuiteBuckets>
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_mechanisms(suite, trace_len, make_predictor, make_mechanisms)
}

/// Runs the §2 static analysis (bucket = static PC) over the suite.
pub fn run_suite_static<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_static(suite, trace_len, make_predictor)
}

/// Runs an online estimator over the suite, returning per-benchmark counts
/// and their sum (benchmarks use equal trace lengths, so summing preserves
/// the equal-weight convention).
pub fn run_suite_estimator<P, E>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_estimator: impl Fn() -> E + Sync,
) -> (Vec<(String, ConfusionCounts)>, ConfusionCounts)
where
    P: BranchPredictor + Send,
    E: ConfidenceEstimator + Send,
{
    Engine::global().run_suite_estimator(suite, trace_len, make_predictor, make_estimator)
}

/// Per-benchmark predictor accuracy (no confidence structures) — used by
/// the calibration harness to report the §1.2 / §5.3 operating points.
pub fn run_suite_predictor<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> Vec<(String, runner::PredictorRun)>
where
    P: BranchPredictor + Send,
{
    Engine::global().run_suite_predictor(suite, trace_len, make_predictor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn mini_suite() -> Vec<Benchmark> {
        ibs_like_suite().into_iter().take(3).collect()
    }

    #[test]
    fn suite_mechanism_combines_benchmarks() {
        let suite = mini_suite();
        let out = run_suite_mechanism(
            &suite,
            20_000,
            || Gshare::new(12, 12),
            || ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes),
        );
        assert_eq!(out.per_benchmark.len(), 3);
        // Equal weighting: combined refs = number of benchmarks.
        assert!((out.combined.total_refs() - 3.0).abs() < 1e-9);
        let curve = out.curve();
        assert!(curve.coverage_at(100.0) > 99.9);
        assert!(out.benchmark_curve(suite[0].name()).is_some());
        assert!(out.benchmark_curve("nope").is_none());
    }

    #[test]
    fn multi_mechanism_run_matches_single_runs() {
        let suite = mini_suite();
        let single = run_suite_mechanism(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes),
        );
        let multi = run_suite_mechanisms(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || {
                vec![Box::new(ResettingConfidence::new(
                    IndexSpec::pc(10),
                    16,
                    InitPolicy::AllOnes,
                )) as Box<dyn ConfidenceMechanism>]
            },
        );
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].combined, single.combined);
    }

    #[test]
    fn static_run_produces_pc_buckets() {
        let suite = mini_suite();
        let out = run_suite_static(&suite, 10_000, || Gshare::new(10, 10));
        assert!(out.combined.distinct_keys() > 50);
    }

    #[test]
    fn estimator_run_totals() {
        let suite = mini_suite();
        let (per, total) = run_suite_estimator(
            &suite,
            5_000,
            || Gshare::new(10, 10),
            || {
                ThresholdEstimator::new(
                    ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes),
                    LowRule::KeyBelow(16),
                )
            },
        );
        assert_eq!(per.len(), 3);
        assert_eq!(total.total(), 15_000);
    }

    #[test]
    fn predictor_run_reports_each_benchmark() {
        let suite = mini_suite();
        let runs = run_suite_predictor(&suite, 5_000, || Gshare::new(10, 10));
        assert_eq!(runs.len(), 3);
        for (name, run) in &runs {
            assert_eq!(run.branches, 5_000, "{name}");
            assert!(run.miss_rate() < 0.5, "{name}: {}", run.miss_rate());
        }
    }
}
