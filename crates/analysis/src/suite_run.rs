//! Suite-level experiment drivers.
//!
//! The paper reports composite results over the IBS suite, weighting each
//! benchmark to contribute the same number of dynamic branches (§1.2).
//! These helpers run a factory-constructed predictor + mechanism pair per
//! benchmark (fresh tables per benchmark, exactly like simulating each
//! trace separately), in parallel across benchmarks, then combine with
//! [`BucketStats::combine_equal_weight`].

use cira_core::{ConfidenceEstimator, ConfidenceMechanism};
use cira_predictor::BranchPredictor;
use cira_trace::suite::Benchmark;

use crate::buckets::BucketStats;
use crate::curve::CoverageCurve;
use crate::metrics::ConfusionCounts;
use crate::runner;

/// Per-benchmark and combined bucket statistics for one mechanism
/// configuration.
#[derive(Debug, Clone)]
pub struct SuiteBuckets {
    /// `(benchmark name, stats)` in suite order.
    pub per_benchmark: Vec<(String, BucketStats)>,
    /// Equal-dynamic-branch-weighted combination.
    pub combined: BucketStats,
}

impl SuiteBuckets {
    /// The coverage curve of the combined statistics.
    pub fn curve(&self) -> CoverageCurve {
        CoverageCurve::from_buckets(&self.combined)
    }

    /// The coverage curve of one benchmark by name.
    pub fn benchmark_curve(&self, name: &str) -> Option<CoverageCurve> {
        self.per_benchmark
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| CoverageCurve::from_buckets(s))
    }
}

/// Runs `make_predictor()` + `make_mechanism()` over every benchmark
/// (`trace_len` dynamic branches each), in parallel across benchmarks.
pub fn run_suite_mechanism<P, M>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanism: impl Fn() -> M + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
    M: ConfidenceMechanism + Send,
{
    let per_benchmark = parallel_map(suite, |bench| {
        let mut predictor = make_predictor();
        let mut mechanism = make_mechanism();
        let stats = runner::collect_mechanism_buckets(
            bench.walker().take(trace_len as usize),
            &mut predictor,
            &mut mechanism,
        );
        (bench.name().to_owned(), stats)
    });
    let combined = BucketStats::combine_equal_weight(per_benchmark.iter().map(|(_, s)| s));
    SuiteBuckets {
        per_benchmark,
        combined,
    }
}

/// Runs several mechanism configurations over the suite, driving the
/// predictor once per benchmark (not once per mechanism). Returns one
/// [`SuiteBuckets`] per factory, in order.
pub fn run_suite_mechanisms<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_mechanisms: impl Fn() -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
) -> Vec<SuiteBuckets>
where
    P: BranchPredictor + Send,
{
    let per_bench: Vec<(String, Vec<BucketStats>)> = parallel_map(suite, |bench| {
        let mut predictor = make_predictor();
        let mut mechanisms = make_mechanisms();
        let mut refs: Vec<&mut dyn ConfidenceMechanism> = mechanisms
            .iter_mut()
            .map(|m| m.as_mut() as &mut dyn ConfidenceMechanism)
            .collect();
        let stats = runner::collect_many_buckets(
            bench.walker().take(trace_len as usize),
            &mut predictor,
            &mut refs,
        );
        (bench.name().to_owned(), stats)
    });
    let n_mechs = per_bench.first().map(|(_, v)| v.len()).unwrap_or(0);
    (0..n_mechs)
        .map(|i| {
            let per_benchmark: Vec<(String, BucketStats)> = per_bench
                .iter()
                .map(|(name, v)| (name.clone(), v[i].clone()))
                .collect();
            let combined = BucketStats::combine_equal_weight(per_benchmark.iter().map(|(_, s)| s));
            SuiteBuckets {
                per_benchmark,
                combined,
            }
        })
        .collect()
}

/// Runs the §2 static analysis (bucket = static PC) over the suite.
pub fn run_suite_static<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> SuiteBuckets
where
    P: BranchPredictor + Send,
{
    let per_benchmark = parallel_map(suite, |bench| {
        let mut predictor = make_predictor();
        let stats =
            runner::collect_static_buckets(bench.walker().take(trace_len as usize), &mut predictor);
        (bench.name().to_owned(), stats)
    });
    let combined = BucketStats::combine_equal_weight(per_benchmark.iter().map(|(_, s)| s));
    SuiteBuckets {
        per_benchmark,
        combined,
    }
}

/// Runs an online estimator over the suite, returning per-benchmark counts
/// and their sum (benchmarks use equal trace lengths, so summing preserves
/// the equal-weight convention).
pub fn run_suite_estimator<P, E>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
    make_estimator: impl Fn() -> E + Sync,
) -> (Vec<(String, ConfusionCounts)>, ConfusionCounts)
where
    P: BranchPredictor + Send,
    E: ConfidenceEstimator + Send,
{
    let per = parallel_map(suite, |bench| {
        let mut predictor = make_predictor();
        let mut estimator = make_estimator();
        let counts = runner::run_estimator(
            bench.walker().take(trace_len as usize),
            &mut predictor,
            &mut estimator,
        );
        (bench.name().to_owned(), counts)
    });
    let mut total = ConfusionCounts::new();
    for (_, c) in &per {
        total.merge(c);
    }
    (per, total)
}

/// Per-benchmark predictor accuracy (no confidence structures) — used by
/// the calibration harness to report the §1.2 / §5.3 operating points.
pub fn run_suite_predictor<P>(
    suite: &[Benchmark],
    trace_len: u64,
    make_predictor: impl Fn() -> P + Sync,
) -> Vec<(String, runner::PredictorRun)>
where
    P: BranchPredictor + Send,
{
    parallel_map(suite, |bench| {
        let mut predictor = make_predictor();
        let run = runner::run_predictor(bench.walker().take(trace_len as usize), &mut predictor);
        (bench.name().to_owned(), run)
    })
}

/// Maps `f` over the benchmarks on scoped threads, preserving order.
fn parallel_map<R: Send>(suite: &[Benchmark], f: impl Fn(&Benchmark) -> R + Sync) -> Vec<R> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = suite.iter().map(|bench| scope.spawn(|| f(bench))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("suite worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, InitPolicy, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn mini_suite() -> Vec<Benchmark> {
        ibs_like_suite().into_iter().take(3).collect()
    }

    #[test]
    fn suite_mechanism_combines_benchmarks() {
        let suite = mini_suite();
        let out = run_suite_mechanism(
            &suite,
            20_000,
            || Gshare::new(12, 12),
            || ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes),
        );
        assert_eq!(out.per_benchmark.len(), 3);
        // Equal weighting: combined refs = number of benchmarks.
        assert!((out.combined.total_refs() - 3.0).abs() < 1e-9);
        let curve = out.curve();
        assert!(curve.coverage_at(100.0) > 99.9);
        assert!(out.benchmark_curve(suite[0].name()).is_some());
        assert!(out.benchmark_curve("nope").is_none());
    }

    #[test]
    fn multi_mechanism_run_matches_single_runs() {
        let suite = mini_suite();
        let single = run_suite_mechanism(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || ResettingConfidence::new(IndexSpec::pc(10), 16, InitPolicy::AllOnes),
        );
        let multi = run_suite_mechanisms(
            &suite,
            10_000,
            || Gshare::new(10, 10),
            || {
                vec![Box::new(ResettingConfidence::new(
                    IndexSpec::pc(10),
                    16,
                    InitPolicy::AllOnes,
                )) as Box<dyn ConfidenceMechanism>]
            },
        );
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].combined, single.combined);
    }

    #[test]
    fn static_run_produces_pc_buckets() {
        let suite = mini_suite();
        let out = run_suite_static(&suite, 10_000, || Gshare::new(10, 10));
        assert!(out.combined.distinct_keys() > 50);
    }

    #[test]
    fn estimator_run_totals() {
        let suite = mini_suite();
        let (per, total) = run_suite_estimator(
            &suite,
            5_000,
            || Gshare::new(10, 10),
            || {
                ThresholdEstimator::new(
                    ResettingConfidence::new(IndexSpec::pc_xor_bhr(10), 16, InitPolicy::AllOnes),
                    LowRule::KeyBelow(16),
                )
            },
        );
        assert_eq!(per.len(), 3);
        assert_eq!(total.total(), 15_000);
    }

    #[test]
    fn predictor_run_reports_each_benchmark() {
        let suite = mini_suite();
        let runs = run_suite_predictor(&suite, 5_000, || Gshare::new(10, 10));
        assert_eq!(runs.len(), 3);
        for (name, run) in &runs {
            assert_eq!(run.branches, 5_000, "{name}");
            assert!(run.miss_rate() < 0.5, "{name}: {}", run.miss_rate());
        }
    }
}
