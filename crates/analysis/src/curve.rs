//! Cumulative-misprediction coverage curves — the paper's central figure
//! format (Figs. 2, 5–11).
//!
//! Buckets are sorted by misprediction rate, worst first, and accumulated:
//! each point says "the worst buckets covering X% of dynamic branches
//! contain Y% of all mispredictions". Every point simultaneously defines a
//! candidate low-confidence set (the buckets at or above it in the sorted
//! order), which is how the *ideal reduction function* of §4 is obtained.

use crate::buckets::BucketStats;

/// One point of a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cumulative percentage of dynamic branches (0–100).
    pub pct_branches: f64,
    /// Cumulative percentage of mispredictions (0–100).
    pub pct_mispredicts: f64,
    /// The bucket key whose inclusion produced this point.
    pub key: u64,
    /// Misprediction rate of this bucket alone.
    pub bucket_miss_rate: f64,
}

/// A monotone coverage curve over sorted buckets.
///
/// # Examples
///
/// ```
/// use cira_analysis::{BucketStats, CoverageCurve};
///
/// let mut stats = BucketStats::new();
/// for _ in 0..80 {
///     stats.observe(0, false); // easy bucket: no misses
/// }
/// for i in 0..20 {
///     stats.observe(1, i % 2 == 0); // hard bucket: 50% miss
/// }
/// let curve = CoverageCurve::from_buckets(&stats);
/// // The hard bucket is 20% of branches and 100% of mispredictions.
/// assert!((curve.coverage_at(20.0) - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    points: Vec<CurvePoint>,
    total_refs: f64,
    total_miss: f64,
}

impl CoverageCurve {
    /// Builds the curve by sorting buckets worst-first.
    ///
    /// Ties in misprediction rate are broken by key (descending) so the
    /// construction is deterministic.
    pub fn from_buckets(stats: &BucketStats) -> Self {
        let mut buckets: Vec<(u64, f64, f64)> = stats
            .iter()
            .map(|(k, c)| (k, c.refs, c.mispredicts))
            .collect();
        buckets.sort_by(|a, b| {
            let ra = if a.1 > 0.0 { a.2 / a.1 } else { 0.0 };
            let rb = if b.1 > 0.0 { b.2 / b.1 } else { 0.0 };
            rb.partial_cmp(&ra)
                .expect("miss rates are finite")
                .then_with(|| b.0.cmp(&a.0))
        });
        let total_refs = stats.total_refs();
        let total_miss = stats.total_mispredicts();
        let mut points = Vec::with_capacity(buckets.len());
        let mut cum_refs = 0.0;
        let mut cum_miss = 0.0;
        for (key, refs, miss) in buckets {
            cum_refs += refs;
            cum_miss += miss;
            points.push(CurvePoint {
                pct_branches: if total_refs > 0.0 {
                    100.0 * cum_refs / total_refs
                } else {
                    0.0
                },
                pct_mispredicts: if total_miss > 0.0 {
                    100.0 * cum_miss / total_miss
                } else {
                    0.0
                },
                key,
                bucket_miss_rate: if refs > 0.0 { miss / refs } else { 0.0 },
            });
        }
        Self {
            points,
            total_refs,
            total_miss,
        }
    }

    /// All points, worst bucket first.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Total weighted dynamic branches behind the curve.
    pub fn total_refs(&self) -> f64 {
        self.total_refs
    }

    /// Total weighted mispredictions behind the curve.
    pub fn total_mispredicts(&self) -> f64 {
        self.total_miss
    }

    /// Overall misprediction rate.
    pub fn miss_rate(&self) -> f64 {
        if self.total_refs > 0.0 {
            self.total_miss / self.total_refs
        } else {
            0.0
        }
    }

    /// The percentage of mispredictions captured by a low-confidence set
    /// containing `pct_branches` percent of dynamic branches, linearly
    /// interpolating between bucket boundaries (matching how the paper
    /// reads values like "89% at 20%" off its plots).
    ///
    /// Clamped: 0 below the first point's reach, 100 above the last.
    pub fn coverage_at(&self, pct_branches: f64) -> f64 {
        if self.points.is_empty() || self.total_miss == 0.0 {
            return 0.0;
        }
        let mut prev = (0.0f64, 0.0f64);
        for p in &self.points {
            if p.pct_branches >= pct_branches {
                let (x0, y0) = prev;
                let (x1, y1) = (p.pct_branches, p.pct_mispredicts);
                if (x1 - x0).abs() < 1e-12 {
                    return y1;
                }
                let t = ((pct_branches - x0) / (x1 - x0)).clamp(0.0, 1.0);
                return y0 + t * (y1 - y0);
            }
            prev = (p.pct_branches, p.pct_mispredicts);
        }
        100.0
    }

    /// The set of bucket keys forming the smallest low-confidence set that
    /// captures at least `pct_mispredicts` percent of mispredictions,
    /// together with the achieved point.
    ///
    /// Returns `None` if the curve is empty.
    pub fn low_set_for_mispredict_target(
        &self,
        pct_mispredicts: f64,
    ) -> Option<(Vec<u64>, CurvePoint)> {
        let idx = self
            .points
            .iter()
            .position(|p| p.pct_mispredicts >= pct_mispredicts)?;
        let keys = self.points[..=idx].iter().map(|p| p.key).collect();
        Some((keys, self.points[idx]))
    }

    /// The set of bucket keys forming the largest low-confidence set whose
    /// dynamic-branch share does not exceed `pct_branches` percent,
    /// together with the achieved point. Returns `None` if even the first
    /// bucket exceeds the budget (or the curve is empty).
    pub fn low_set_for_branch_budget(&self, pct_branches: f64) -> Option<(Vec<u64>, CurvePoint)> {
        let mut last = None;
        for (i, p) in self.points.iter().enumerate() {
            if p.pct_branches <= pct_branches + 1e-9 {
                last = Some(i);
            } else {
                break;
            }
        }
        let idx = last?;
        let keys = self.points[..=idx].iter().map(|p| p.key).collect();
        Some((keys, self.points[idx]))
    }

    /// Thins the curve for plotting: keeps points whose x or y advanced by
    /// at least `min_delta` percentage points since the last kept point
    /// (the paper plots Fig. 5 onward with a 2.5-point filter), always
    /// keeping the final point.
    pub fn thinned(&self, min_delta: f64) -> Vec<CurvePoint> {
        let mut out: Vec<CurvePoint> = Vec::new();
        for p in &self.points {
            match out.last() {
                None => out.push(*p),
                Some(last) => {
                    if p.pct_branches - last.pct_branches >= min_delta
                        || p.pct_mispredicts - last.pct_mispredicts >= min_delta
                    {
                        out.push(*p);
                    }
                }
            }
        }
        if let (Some(last_kept), Some(last)) = (out.last().copied(), self.points.last()) {
            if last_kept != *last {
                out.push(*last);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bucket_stats() -> BucketStats {
        let mut s = BucketStats::new();
        for _ in 0..80 {
            s.observe(0, false);
        }
        for i in 0..20 {
            s.observe(1, i % 2 == 0);
        }
        s
    }

    #[test]
    fn sorts_worst_first() {
        let c = CoverageCurve::from_buckets(&two_bucket_stats());
        assert_eq!(c.points()[0].key, 1);
        assert!((c.points()[0].bucket_miss_rate - 0.5).abs() < 1e-12);
        assert_eq!(c.points()[1].key, 0);
    }

    #[test]
    fn cumulative_percentages_are_monotone_and_complete() {
        let mut s = BucketStats::new();
        for i in 0..100u64 {
            s.observe(i % 7, i % 3 == 0);
        }
        let c = CoverageCurve::from_buckets(&s);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[1].pct_branches >= w[0].pct_branches);
            assert!(w[1].pct_mispredicts >= w[0].pct_mispredicts - 1e-12);
        }
        let last = pts.last().unwrap();
        assert!((last.pct_branches - 100.0).abs() < 1e-9);
        assert!((last.pct_mispredicts - 100.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_interpolates() {
        let c = CoverageCurve::from_buckets(&two_bucket_stats());
        // Bucket 1: (20, 100). Bucket 0: (100, 100).
        assert!((c.coverage_at(20.0) - 100.0).abs() < 1e-9);
        // Halfway into the first bucket.
        assert!((c.coverage_at(10.0) - 50.0).abs() < 1e-9);
        assert_eq!(c.coverage_at(0.0), 0.0);
        assert!((c.coverage_at(100.0) - 100.0).abs() < 1e-9);
        assert!((c.coverage_at(150.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_curve_is_safe() {
        let c = CoverageCurve::from_buckets(&BucketStats::new());
        assert!(c.points().is_empty());
        assert_eq!(c.coverage_at(50.0), 0.0);
        assert!(c.low_set_for_mispredict_target(50.0).is_none());
        assert!(c.low_set_for_branch_budget(50.0).is_none());
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn low_set_for_target() {
        let c = CoverageCurve::from_buckets(&two_bucket_stats());
        let (keys, pt) = c.low_set_for_mispredict_target(90.0).unwrap();
        assert_eq!(keys, vec![1]);
        assert!((pt.pct_mispredicts - 100.0).abs() < 1e-9);
    }

    #[test]
    fn low_set_for_budget() {
        let c = CoverageCurve::from_buckets(&two_bucket_stats());
        let (keys, pt) = c.low_set_for_branch_budget(25.0).unwrap();
        assert_eq!(keys, vec![1]);
        assert!((pt.pct_branches - 20.0).abs() < 1e-9);
        // A budget smaller than the first bucket yields nothing.
        assert!(c.low_set_for_branch_budget(5.0).is_none());
    }

    #[test]
    fn thinning_keeps_endpoints() {
        let mut s = BucketStats::new();
        for i in 0..1000u64 {
            s.observe(i, i % 11 == 0); // many tiny buckets
        }
        let c = CoverageCurve::from_buckets(&s);
        let thin = c.thinned(2.5);
        assert!(thin.len() < c.points().len());
        assert_eq!(thin.last().unwrap(), c.points().last().unwrap());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut s = BucketStats::new();
        s.observe(10, true);
        s.observe(20, true); // same rate
        let a = CoverageCurve::from_buckets(&s);
        let b = CoverageCurve::from_buckets(&s);
        assert_eq!(a.points()[0].key, b.points()[0].key);
        assert_eq!(a.points()[0].key, 20, "ties break by descending key");
    }

    #[test]
    fn zero_mispredictions_curve() {
        let mut s = BucketStats::new();
        s.observe(0, false);
        let c = CoverageCurve::from_buckets(&s);
        assert_eq!(c.coverage_at(50.0), 0.0);
        assert_eq!(c.points()[0].pct_mispredicts, 0.0);
    }
}
