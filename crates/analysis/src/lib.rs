//! # cira-analysis
//!
//! Experiment machinery for the `cira` reproduction of Jacobsen, Rotenberg
//! & Smith (MICRO-29, 1996): trace-driven simulation drivers, bucketed
//! prediction statistics, the paper's cumulative-misprediction coverage
//! curves, confusion-matrix metrics, Table-1-style counter tables, and
//! CSV/ASCII export.
//!
//! The analysis pipeline:
//!
//! 1. [`runner`] drives a trace through a predictor and confidence
//!    mechanism(s), producing [`BucketStats`] keyed by whatever the
//!    mechanism reads (CIR pattern, counter value, or static PC).
//! 2. the [`Engine`] suite methods repeat that per benchmark and combine
//!    with the paper's equal-dynamic-branch weighting.
//! 3. [`CoverageCurve`] sorts buckets worst-first into the cumulative
//!    curves of Figs. 2 & 5–11; [`CounterTable`] renders Table 1.
//! 4. [`export`] writes CSVs and ASCII charts.
//!
//! # Examples
//!
//! ```
//! use cira_analysis::{runner, CoverageCurve};
//! use cira_core::one_level::ResettingConfidence;
//! use cira_core::{IndexSpec, InitPolicy};
//! use cira_predictor::Gshare;
//! use cira_trace::suite::ibs_like_suite;
//!
//! let bench = &ibs_like_suite()[3]; // jpeg
//! let mut predictor = Gshare::new(12, 12);
//! let mut mech = ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes);
//! let stats = runner::collect_mechanism_buckets(
//!     bench.walker().take(20_000),
//!     &mut predictor,
//!     &mut mech,
//! );
//! let curve = CoverageCurve::from_buckets(&stats);
//! assert!(curve.coverage_at(100.0) > 99.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buckets;
pub mod curve;
pub mod engine;
pub mod export;
pub mod metrics;
pub mod runner;
pub mod spec;
pub mod sweep;
pub mod table;

pub use buckets::{BucketCell, BucketStats};
pub use curve::{CoverageCurve, CurvePoint};
pub use engine::{Engine, SuiteBuckets};
pub use metrics::ConfusionCounts;
pub use runner::PredictorRun;
pub use sweep::{sweep_to_csv, threshold_sweep, ThresholdPoint};
pub use table::{CounterRow, CounterTable};
