//! Threshold sweeps: the full operating-point space of a counter-keyed
//! estimator, derived from bucket statistics.
//!
//! A `key < t` reduction has one operating point per threshold `t`; the
//! paper reads these off Table 1 (§5.2 "threshold granularity"). This
//! module computes all of them at once — an ROC-style view pairing the
//! low-set size against misprediction coverage and the Grunwald-style
//! predictive values.

use crate::buckets::BucketStats;

/// One operating point of a `key < threshold` estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// The threshold (keys strictly below it are low confidence).
    pub threshold: u64,
    /// Fraction of predictions flagged low.
    pub low_fraction: f64,
    /// Fraction of mispredictions captured by the low set (SENS).
    pub coverage: f64,
    /// Probability a low-confidence prediction is wrong (PVN).
    pub pvn: f64,
    /// Probability a high-confidence prediction is right (PVP).
    pub pvp: f64,
    /// Fraction of correct predictions flagged high (SPEC).
    pub specificity: f64,
}

/// Computes the operating point for every threshold `0..=max_key + 1`
/// over counter-keyed bucket statistics.
///
/// Keys above `max_key` are treated as part of the high-confidence set at
/// every threshold. The first point (threshold 0) flags nothing; the last
/// (threshold `max_key + 1`) flags every in-range key.
///
/// # Examples
///
/// ```
/// use cira_analysis::{threshold_sweep, BucketStats};
///
/// let mut stats = BucketStats::new();
/// stats.observe(0, true);
/// stats.observe(1, false);
/// stats.observe(2, false);
/// let sweep = threshold_sweep(&stats, 2);
/// assert_eq!(sweep.len(), 4);
/// assert_eq!(sweep[0].low_fraction, 0.0);
/// assert_eq!(sweep[1].coverage, 1.0); // key 0 holds the only miss
/// ```
pub fn threshold_sweep(stats: &BucketStats, max_key: u64) -> Vec<ThresholdPoint> {
    let total_refs = stats.total_refs();
    let total_miss = stats.total_mispredicts();
    let total_correct = total_refs - total_miss;

    let mut points = Vec::with_capacity(max_key as usize + 2);
    let mut low_refs = 0.0;
    let mut low_miss = 0.0;
    for threshold in 0..=(max_key + 1) {
        if threshold > 0 {
            if let Some(cell) = stats.cell(threshold - 1) {
                low_refs += cell.refs;
                low_miss += cell.mispredicts;
            }
        }
        let low_correct = low_refs - low_miss;
        let high_refs = total_refs - low_refs;
        let high_miss = total_miss - low_miss;
        points.push(ThresholdPoint {
            threshold,
            low_fraction: ratio(low_refs, total_refs),
            coverage: ratio(low_miss, total_miss),
            pvn: ratio(low_miss, low_refs),
            pvp: ratio(high_refs - high_miss, high_refs),
            specificity: ratio(total_correct - low_correct, total_correct),
        });
    }
    points
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

/// Serializes a sweep as CSV.
pub fn sweep_to_csv(points: &[ThresholdPoint]) -> String {
    let mut out = String::from("threshold,low_fraction,coverage,pvn,pvp,specificity\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            p.threshold, p.low_fraction, p.coverage, p.pvn, p.pvp, p.specificity
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> BucketStats {
        let mut s = BucketStats::new();
        // key 0: 10 refs, 6 miss; key 1: 30 refs, 3 miss; key 2: 60, 1.
        for i in 0..10 {
            s.observe(0, i < 6);
        }
        for i in 0..30 {
            s.observe(1, i < 3);
        }
        for i in 0..60 {
            s.observe(2, i < 1);
        }
        s
    }

    #[test]
    fn endpoints() {
        let sweep = threshold_sweep(&stats(), 2);
        assert_eq!(sweep.len(), 4);
        let first = &sweep[0];
        assert_eq!(first.low_fraction, 0.0);
        assert_eq!(first.coverage, 0.0);
        let last = &sweep[3];
        assert!((last.low_fraction - 1.0).abs() < 1e-12);
        assert!((last.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_threshold() {
        let sweep = threshold_sweep(&stats(), 2);
        for w in sweep.windows(2) {
            assert!(w[1].low_fraction >= w[0].low_fraction);
            assert!(w[1].coverage >= w[0].coverage);
        }
    }

    #[test]
    fn values_match_hand_computation() {
        let sweep = threshold_sweep(&stats(), 2);
        let t1 = &sweep[1]; // low set = key 0
        assert!((t1.low_fraction - 0.1).abs() < 1e-12);
        assert!((t1.coverage - 0.6).abs() < 1e-12);
        assert!((t1.pvn - 0.6).abs() < 1e-12);
        // high set: 90 refs, 4 miss -> pvp = 86/90
        assert!((t1.pvp - 86.0 / 90.0).abs() < 1e-12);
        // correct total = 90; low_correct = 4 -> spec = 86/90
        assert!((t1.specificity - 86.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn keys_above_max_stay_high() {
        let mut s = stats();
        for _ in 0..100 {
            s.observe(50, false);
        }
        let sweep = threshold_sweep(&s, 2);
        let last = sweep.last().unwrap();
        assert!(
            last.low_fraction < 1.0,
            "key 50 must remain high-confidence"
        );
        assert!((last.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_sweep() {
        let sweep = threshold_sweep(&BucketStats::new(), 4);
        assert_eq!(sweep.len(), 6);
        assert!(sweep
            .iter()
            .all(|p| p.low_fraction == 0.0 && p.coverage == 0.0));
    }

    #[test]
    fn csv_format() {
        let csv = sweep_to_csv(&threshold_sweep(&stats(), 2));
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("threshold,"));
    }
}
