//! One-level dynamic confidence mechanisms (§3.1, §5.1).
//!
//! All three storage organizations share the same shape — an indexed table
//! updated with prediction correctness — and differ in what each entry
//! holds:
//!
//! * [`OneLevelCir`] — full `n`-bit CIRs (Fig. 3). The *key* it exposes is
//!   the raw CIR pattern, which supports the ideal reduction of §4 and,
//!   through [`MappedKey`], the ones-count reduction of §5.1.
//! * [`SaturatingConfidence`] — entries compressed to saturating up/down
//!   counters (up on correct): a logarithmic cost saving, at the price of a
//!   swollen maximum-count bucket (§5.1).
//! * [`ResettingConfidence`] — entries compressed to resetting counters
//!   (increment on correct, clear on a misprediction): tracks the ideal
//!   reduction closely and is the paper's recommended practical design.

use crate::cir::Cir;
use crate::index::{IndexInputs, IndexSpec, PcBhrXor};
use crate::init::InitPolicy;
use crate::table::CirTable;
use crate::ConfidenceMechanism;

/// Width of the global CIR maintained for `GlobalCir`-indexed mechanisms.
const GLOBAL_CIR_WIDTH: u32 = 32;

fn check_not_second_level(index: &IndexSpec) {
    assert!(
        !index.uses_cir(),
        "one-level mechanisms cannot index with the level-one CIR source"
    );
}

/// Sub-chunk size of the two-phase batch fast path (matches the replay
/// kernel's lane-group width).
const FAST_BLOCK: usize = 64;

/// Two-phase gather driver for the compiled PC⊕BHR fast path shared by the
/// one-level mechanisms: slots for the *next* 64-record sub-chunk are
/// computed (a tight vectorizable loop) and prefetched while the current
/// sub-chunk is applied serially. The apply pass must stay serial and in
/// order — aliasing records in one batch must observe each other's updates.
///
/// `rmw(storage, slot, correct)` performs one read-modify-write and
/// returns the pre-update key.
#[allow(clippy::too_many_arguments)] // internal kernel driver: parallel record slices
fn fast_batch<S>(
    storage: &mut S,
    fast: PcBhrXor,
    pcs: &[u64],
    bhrs: &[u64],
    correct: &[bool],
    keys: &mut [u64],
    prefetch: impl Fn(&S, usize),
    rmw: impl Fn(&mut S, usize, bool) -> u64,
) {
    let n = pcs.len();
    let mut cur = [0u32; FAST_BLOCK];
    let mut nxt = [0u32; FAST_BLOCK];
    let fill = |out: &mut [u32], pcs: &[u64], bhrs: &[u64]| {
        for (slot, (&pc, &h)) in out.iter_mut().zip(pcs.iter().zip(bhrs)) {
            *slot = fast.index(pc, h) as u32;
        }
    };
    let mut start = 0;
    let mut c = FAST_BLOCK.min(n);
    fill(&mut cur[..c], &pcs[..c], &bhrs[..c]);
    for &s in &cur[..c] {
        prefetch(storage, s as usize);
    }
    while start < n {
        let next_start = start + c;
        let nc = FAST_BLOCK.min(n - next_start);
        if nc > 0 {
            fill(
                &mut nxt[..nc],
                &pcs[next_start..next_start + nc],
                &bhrs[next_start..next_start + nc],
            );
            for &s in &nxt[..nc] {
                prefetch(storage, s as usize);
            }
        }
        let out = &mut keys[start..start + c];
        for ((&slot, &ok), key) in cur[..c].iter().zip(&correct[start..start + c]).zip(out) {
            *key = rmw(storage, slot as usize, ok);
        }
        std::mem::swap(&mut cur, &mut nxt);
        start = next_start;
        c = nc;
    }
}

/// Validates and installs restored counter values: the count must match the
/// table and every value must be within `0..=max`.
fn load_counters(into: &mut [u32], values: &[u32], max: u32, what: &str) -> Result<(), String> {
    if values.len() != into.len() {
        return Err(format!(
            "{what} restore: {} counters, table needs {}",
            values.len(),
            into.len()
        ));
    }
    if let Some(v) = values.iter().find(|&&v| v > max) {
        return Err(format!("{what} restore: counter {v} exceeds max {max}"));
    }
    into.copy_from_slice(values);
    Ok(())
}

/// Prefetches (x86_64) or touches (elsewhere) the slice element at `i`.
/// Out-of-range indices are ignored.
#[inline]
fn touch<T: Copy>(values: &[T], i: usize) {
    if let Some(v) = values.get(i) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `v` is a live reference, so the pointer is valid;
        // prefetch has no architectural side effects.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                (v as *const T).cast::<i8>(),
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            std::hint::black_box(*v);
        }
    }
}

/// One-level CIR table: the generic mechanism of Fig. 3.
///
/// # Examples
///
/// ```
/// use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
/// use cira_core::one_level::OneLevelCir;
///
/// let mut m = OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16));
/// assert_eq!(m.read_key(0x4000, 0), 0xffff); // all-ones init
/// m.update(0x4000, 0, true);
/// assert_eq!(m.read_key(0x4000, 0), 0xfffe);
/// ```
#[derive(Debug, Clone)]
pub struct OneLevelCir {
    table: CirTable,
    index: IndexSpec,
    global_cir: Cir,
}

impl OneLevelCir {
    /// Creates a one-level mechanism with `width`-bit CIRs.
    ///
    /// # Panics
    ///
    /// Panics if the index spec uses the level-one CIR source, or on
    /// invalid widths (propagated from [`CirTable`]).
    pub fn new(index: IndexSpec, width: u32, init: InitPolicy) -> Self {
        check_not_second_level(&index);
        Self {
            table: CirTable::new(index.bits(), width, init),
            index,
            global_cir: Cir::zeroed(GLOBAL_CIR_WIDTH),
        }
    }

    /// The paper's configuration: 16-bit CIRs, all-ones initialization.
    pub fn paper_default(index: IndexSpec) -> Self {
        Self::new(index, 16, InitPolicy::AllOnes)
    }

    /// The index spec in use.
    pub fn index_spec(&self) -> &IndexSpec {
        &self.index
    }

    /// CIR width.
    pub fn width(&self) -> u32 {
        self.table.width()
    }

    /// Borrows the underlying table.
    pub fn table(&self) -> &CirTable {
        &self.table
    }

    /// Reads the full CIR for a branch (not just its key).
    pub fn read_cir(&self, pc: u64, bhr: u64) -> Cir {
        self.table.get(self.slot(pc, bhr))
    }

    fn slot(&self, pc: u64, bhr: u64) -> usize {
        self.index.index(IndexInputs {
            pc,
            bhr,
            cir: 0,
            global_cir: self.global_cir.value() as u64,
        })
    }
}

impl ConfidenceMechanism for OneLevelCir {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        self.read_cir(pc, bhr).value() as u64
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        let slot = self.slot(pc, bhr);
        self.table.record(slot, correct);
        self.global_cir.push(correct);
    }

    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        assert!(
            pcs.len() == bhrs.len() && pcs.len() == correct.len() && pcs.len() == keys.len(),
            "observe_batch slices must have equal lengths"
        );
        // One slot computation serves both halves: `read_key` and `update`
        // see the same pre-update global CIR, so the slot is the same.
        if let Some(fast) = self.index.compile_pc_bhr_xor() {
            // Fast-path slots do not read the global CIR, so its pushes can
            // be replayed after the table pass with identical final state.
            fast_batch(
                &mut self.table,
                fast,
                pcs,
                bhrs,
                correct,
                keys,
                CirTable::prefetch,
                |t, slot, ok| {
                    let key = t.get(slot).value() as u64;
                    t.record(slot, ok);
                    key
                },
            );
            for &ok in correct {
                self.global_cir.push(ok);
            }
        } else {
            for i in 0..pcs.len() {
                let slot = self.slot(pcs[i], bhrs[i]);
                keys[i] = self.table.get(slot).value() as u64;
                self.table.record(slot, correct[i]);
                self.global_cir.push(correct[i]);
            }
        }
    }

    fn key_space(&self) -> Option<u64> {
        Some(1u64 << self.table.width())
    }

    fn describe(&self) -> String {
        format!(
            "one-level CIR[{}] idx {} init {}",
            self.table.width(),
            self.index,
            self.table.init_policy()
        )
    }

    fn flush(&mut self) {
        self.table.reinitialize();
        self.global_cir = Cir::zeroed(GLOBAL_CIR_WIDTH);
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        cira_predictor::state::put_u32_slice(out, &self.table.entry_bits());
        cira_predictor::state::put_u32(out, self.global_cir.value());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = cira_predictor::state::StateReader::new(bytes);
        let bits = r.u32_vec()?;
        let global = r.u32()?;
        self.table.load_entry_bits(&bits)?;
        self.global_cir = Cir::from_bits(global, GLOBAL_CIR_WIDTH);
        r.finish()
    }
}

/// Wraps a mechanism, exposing `map(key)` as the key — e.g. a ones count
/// over a CIR mechanism.
///
/// # Examples
///
/// ```
/// use cira_core::{ConfidenceMechanism, IndexSpec};
/// use cira_core::one_level::{MappedKey, OneLevelCir};
///
/// let cir = OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(10));
/// let ones = MappedKey::ones_count(cir);
/// assert_eq!(ones.read_key(0x40, 0), 16); // all-ones init has 16 ones
/// ```
#[derive(Debug, Clone)]
pub struct MappedKey<M> {
    inner: M,
    map: fn(u64) -> u64,
    label: &'static str,
    key_space: Option<u64>,
}

impl<M: ConfidenceMechanism> MappedKey<M> {
    /// Wraps `inner`, exposing `map(key)` with a display label and an
    /// optional key-space bound for the mapped key.
    pub fn new(inner: M, map: fn(u64) -> u64, label: &'static str, key_space: Option<u64>) -> Self {
        Self {
            inner,
            map,
            label,
            key_space,
        }
    }

    /// The ones-count reduction of §5.1: key = popcount(CIR).
    pub fn ones_count(inner: M) -> Self {
        let space = inner
            .key_space()
            .map(|s| 64 - (s.saturating_sub(1)).leading_zeros() as u64 + 1);
        Self::new(inner, |k| k.count_ones() as u64, "ones-count", space)
    }

    /// Borrows the wrapped mechanism.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: ConfidenceMechanism> ConfidenceMechanism for MappedKey<M> {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        (self.map)(self.inner.read_key(pc, bhr))
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        self.inner.update(pc, bhr, correct);
    }

    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        self.inner.observe_batch(pcs, bhrs, correct, keys);
        for k in keys.iter_mut() {
            *k = (self.map)(*k);
        }
    }

    fn key_space(&self) -> Option<u64> {
        self.key_space
    }

    fn describe(&self) -> String {
        format!("{} of {}", self.label, self.inner.describe())
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        self.inner.state_save(out)
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.inner.state_load(bytes)
    }
}

/// Saturating-counter confidence table (§5.1).
///
/// Each entry counts up on a correct prediction and down on a
/// misprediction, saturating at `0` and `max`. The key is the counter
/// value: `max` plays the role of the zero bucket.
#[derive(Debug, Clone)]
pub struct SaturatingConfidence {
    /// Raw counter values (≤ `max`); packing the value alone — rather than
    /// a `SaturatingCounter` with its embedded max — halves the entry size
    /// and lets the batch fast path update without branches.
    counters: Vec<u32>,
    index: IndexSpec,
    max: u32,
    init: InitPolicy,
    global_cir: Cir,
}

impl SaturatingConfidence {
    /// Creates a table of counters saturating at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or the index spec uses the level-one CIR.
    pub fn new(index: IndexSpec, max: u32, init: InitPolicy) -> Self {
        check_not_second_level(&index);
        assert!(max > 0, "counter max must be positive");
        let counters = (0..index.table_len())
            .map(|i| init.initial_count(max, i))
            .collect();
        Self {
            counters,
            index,
            max,
            init,
            global_cir: Cir::zeroed(GLOBAL_CIR_WIDTH),
        }
    }

    /// The paper's configuration: counters 0..=16 (comparable to 16-bit
    /// CIRs), all-ones-equivalent initialization (count 0).
    pub fn paper_default(index: IndexSpec) -> Self {
        Self::new(index, 16, InitPolicy::AllOnes)
    }

    /// Counter saturation maximum.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// The index spec in use.
    pub fn index_spec(&self) -> &IndexSpec {
        &self.index
    }

    fn slot(&self, pc: u64, bhr: u64) -> usize {
        self.index.index(IndexInputs {
            pc,
            bhr,
            cir: 0,
            global_cir: self.global_cir.value() as u64,
        })
    }
}

impl ConfidenceMechanism for SaturatingConfidence {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        self.counters[self.slot(pc, bhr)] as u64
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        let slot = self.slot(pc, bhr);
        let max = self.max;
        let v = &mut self.counters[slot];
        // Branchless saturating ±1: the inc term vanishes at max, the dec
        // term at zero, and `correct` selects between them.
        let c = correct as u32;
        *v = *v + (c & (*v < max) as u32) - ((1 - c) & (*v > 0) as u32);
        self.global_cir.push(correct);
    }

    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        assert!(
            pcs.len() == bhrs.len() && pcs.len() == correct.len() && pcs.len() == keys.len(),
            "observe_batch slices must have equal lengths"
        );
        if let Some(fast) = self.index.compile_pc_bhr_xor() {
            let max = self.max;
            fast_batch(
                &mut self.counters,
                fast,
                pcs,
                bhrs,
                correct,
                keys,
                |values, i| touch(values, i),
                |values, slot, ok| {
                    let v = values[slot];
                    let c = ok as u32;
                    values[slot] = v + (c & (v < max) as u32) - ((1 - c) & (v > 0) as u32);
                    v as u64
                },
            );
            for &ok in correct {
                self.global_cir.push(ok);
            }
        } else {
            for i in 0..pcs.len() {
                let slot = self.slot(pcs[i], bhrs[i]);
                let v = &mut self.counters[slot];
                keys[i] = *v as u64;
                let c = correct[i] as u32;
                *v = *v + (c & (*v < self.max) as u32) - ((1 - c) & (*v > 0) as u32);
                self.global_cir.push(correct[i]);
            }
        }
    }

    fn key_space(&self) -> Option<u64> {
        Some(self.max as u64 + 1)
    }

    fn describe(&self) -> String {
        format!(
            "saturating[0..={}] idx {} init {}",
            self.max, self.index, self.init
        )
    }

    fn flush(&mut self) {
        for (i, v) in self.counters.iter_mut().enumerate() {
            *v = self.init.initial_count(self.max, i);
        }
        self.global_cir = Cir::zeroed(GLOBAL_CIR_WIDTH);
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        cira_predictor::state::put_u32_slice(out, &self.counters);
        cira_predictor::state::put_u32(out, self.global_cir.value());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = cira_predictor::state::StateReader::new(bytes);
        let counters = r.u32_vec()?;
        let global = r.u32()?;
        load_counters(&mut self.counters, &counters, self.max, "saturating")?;
        self.global_cir = Cir::from_bits(global, GLOBAL_CIR_WIDTH);
        r.finish()
    }
}

/// Resetting-counter confidence table (§5.1) — the paper's recommended
/// practical mechanism.
///
/// Each entry counts correct predictions and clears to zero on any
/// misprediction; the counter therefore holds the distance since the most
/// recent misprediction, i.e. exactly [`Cir::distance_since_misprediction`]
/// of the full-length CIR it replaces — at log cost.
///
/// # Examples
///
/// ```
/// use cira_core::{ConfidenceMechanism, IndexSpec};
/// use cira_core::one_level::ResettingConfidence;
///
/// let mut m = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
/// for _ in 0..20 {
///     m.update(0x40, 0, true);
/// }
/// assert_eq!(m.read_key(0x40, 0), 16); // saturated: the zero bucket
/// m.update(0x40, 0, false);
/// assert_eq!(m.read_key(0x40, 0), 0);  // reset by the misprediction
/// ```
#[derive(Debug, Clone)]
pub struct ResettingConfidence {
    /// Raw counter values (≤ `max`); see [`SaturatingConfidence::counters`].
    counters: Vec<u32>,
    index: IndexSpec,
    max: u32,
    init: InitPolicy,
    global_cir: Cir,
}

impl ResettingConfidence {
    /// Creates a table of resetting counters saturating at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or the index spec uses the level-one CIR.
    pub fn new(index: IndexSpec, max: u32, init: InitPolicy) -> Self {
        check_not_second_level(&index);
        assert!(max > 0, "counter max must be positive");
        let counters = (0..index.table_len())
            .map(|i| init.initial_count(max, i))
            .collect();
        Self {
            counters,
            index,
            max,
            init,
            global_cir: Cir::zeroed(GLOBAL_CIR_WIDTH),
        }
    }

    /// The paper's configuration: counters 0..=16, initialized to 0 (the
    /// all-ones-CIR equivalent).
    pub fn paper_default(index: IndexSpec) -> Self {
        Self::new(index, 16, InitPolicy::AllOnes)
    }

    /// Counter saturation maximum.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// The index spec in use.
    pub fn index_spec(&self) -> &IndexSpec {
        &self.index
    }

    fn slot(&self, pc: u64, bhr: u64) -> usize {
        self.index.index(IndexInputs {
            pc,
            bhr,
            cir: 0,
            global_cir: self.global_cir.value() as u64,
        })
    }
}

impl ConfidenceMechanism for ResettingConfidence {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        self.counters[self.slot(pc, bhr)] as u64
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        let slot = self.slot(pc, bhr);
        let max = self.max;
        let v = &mut self.counters[slot];
        // Branchless increment-or-clear: `correct` zeroes the whole result
        // on a misprediction, the saturation term vanishes at max.
        *v = (correct as u32) * (*v + (*v < max) as u32);
        self.global_cir.push(correct);
    }

    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        assert!(
            pcs.len() == bhrs.len() && pcs.len() == correct.len() && pcs.len() == keys.len(),
            "observe_batch slices must have equal lengths"
        );
        if let Some(fast) = self.index.compile_pc_bhr_xor() {
            let max = self.max;
            fast_batch(
                &mut self.counters,
                fast,
                pcs,
                bhrs,
                correct,
                keys,
                |values, i| touch(values, i),
                |values, slot, ok| {
                    let v = values[slot];
                    values[slot] = (ok as u32) * (v + (v < max) as u32);
                    v as u64
                },
            );
            for &ok in correct {
                self.global_cir.push(ok);
            }
        } else {
            for i in 0..pcs.len() {
                let slot = self.slot(pcs[i], bhrs[i]);
                let v = &mut self.counters[slot];
                keys[i] = *v as u64;
                *v = (correct[i] as u32) * (*v + (*v < self.max) as u32);
                self.global_cir.push(correct[i]);
            }
        }
    }

    fn key_space(&self) -> Option<u64> {
        Some(self.max as u64 + 1)
    }

    fn describe(&self) -> String {
        format!(
            "resetting[0..={}] idx {} init {}",
            self.max, self.index, self.init
        )
    }

    fn flush(&mut self) {
        for (i, v) in self.counters.iter_mut().enumerate() {
            *v = self.init.initial_count(self.max, i);
        }
        self.global_cir = Cir::zeroed(GLOBAL_CIR_WIDTH);
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        cira_predictor::state::put_u32_slice(out, &self.counters);
        cira_predictor::state::put_u32(out, self.global_cir.value());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = cira_predictor::state::StateReader::new(bytes);
        let counters = r.u32_vec()?;
        let global = r.u32()?;
        load_counters(&mut self.counters, &counters, self.max, "resetting")?;
        self.global_cir = Cir::from_bits(global, GLOBAL_CIR_WIDTH);
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexSpec;

    #[test]
    fn one_level_tracks_per_entry_history() {
        let mut m = OneLevelCir::new(IndexSpec::pc(8), 4, InitPolicy::AllZeros);
        m.update(0x40, 0, false);
        m.update(0x40, 0, true);
        assert_eq!(m.read_key(0x40, 0), 0b10);
        // A different pc maps elsewhere.
        assert_eq!(m.read_key(0x80, 0), 0);
    }

    #[test]
    fn one_level_respects_bhr_in_index() {
        let mut m = OneLevelCir::new(IndexSpec::pc_xor_bhr(8), 4, InitPolicy::AllZeros);
        m.update(0x40, 0b0001, false);
        assert_eq!(m.read_key(0x40, 0b0001), 1);
        assert_eq!(
            m.read_key(0x40, 0b0010),
            0,
            "different history, different entry"
        );
    }

    #[test]
    #[should_panic(expected = "level-one CIR")]
    fn one_level_rejects_cir_index() {
        OneLevelCir::paper_default(IndexSpec::cir(8));
    }

    #[test]
    fn global_cir_index_changes_with_outcomes() {
        let mut m = OneLevelCir::new(IndexSpec::global_cir(4), 4, InitPolicy::AllZeros);
        // Record a misprediction at global state 0, then a correct
        // prediction; the global CIR is now 0b01 so reads go elsewhere.
        m.update(0x40, 0, false);
        assert_eq!(m.read_key(0x40, 0), 0, "global CIR moved to a new entry");
    }

    #[test]
    fn mapped_ones_count() {
        let mut m =
            MappedKey::ones_count(OneLevelCir::new(IndexSpec::pc(6), 16, InitPolicy::AllZeros));
        m.update(0x10, 0, false);
        m.update(0x10, 0, false);
        m.update(0x10, 0, true);
        assert_eq!(m.read_key(0x10, 0), 2);
        assert_eq!(m.key_space(), Some(17));
        assert!(m.describe().contains("ones-count"));
    }

    #[test]
    fn saturating_counts_up_and_down() {
        let mut m = SaturatingConfidence::new(IndexSpec::pc(6), 4, InitPolicy::AllOnes);
        assert_eq!(m.read_key(0x10, 0), 0);
        for _ in 0..10 {
            m.update(0x10, 0, true);
        }
        assert_eq!(m.read_key(0x10, 0), 4); // saturated at max
        m.update(0x10, 0, false);
        assert_eq!(m.read_key(0x10, 0), 3); // down by one, not reset
    }

    #[test]
    fn resetting_clears_on_misprediction() {
        let mut m = ResettingConfidence::new(IndexSpec::pc(6), 8, InitPolicy::AllOnes);
        for _ in 0..5 {
            m.update(0x10, 0, true);
        }
        assert_eq!(m.read_key(0x10, 0), 5);
        m.update(0x10, 0, false);
        assert_eq!(m.read_key(0x10, 0), 0);
    }

    #[test]
    fn resetting_matches_full_cir_distance() {
        // Resetting counter ≡ distance-since-misprediction of the full CIR
        // (both saturated at width/max) for any outcome sequence.
        let index = IndexSpec::pc(4);
        let mut counter = ResettingConfidence::new(index.clone(), 16, InitPolicy::AllOnes);
        let mut full = OneLevelCir::new(index, 16, InitPolicy::AllOnes);
        let outcomes = [
            true, true, false, true, true, true, false, false, true, true, true, true, true, true,
            true, true, true, true, true, true, false, true,
        ];
        for (i, &ok) in outcomes.iter().enumerate() {
            counter.update(0x20, 0, ok);
            full.update(0x20, 0, ok);
            let cir = full.read_cir(0x20, 0);
            // The all-ones initial CIR never records distance > the number
            // of updates, so both saturate identically once warmed up.
            assert_eq!(
                counter.read_key(0x20, 0),
                cir.distance_since_misprediction() as u64,
                "diverged after {} outcomes",
                i + 1
            );
        }
    }

    #[test]
    fn key_spaces() {
        assert_eq!(
            OneLevelCir::paper_default(IndexSpec::pc(4)).key_space(),
            Some(65536)
        );
        assert_eq!(
            SaturatingConfidence::paper_default(IndexSpec::pc(4)).key_space(),
            Some(17)
        );
        assert_eq!(
            ResettingConfidence::paper_default(IndexSpec::pc(4)).key_space(),
            Some(17)
        );
    }

    #[test]
    fn describe_mentions_organization() {
        assert!(ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(4))
            .describe()
            .contains("resetting"));
        assert!(SaturatingConfidence::paper_default(IndexSpec::pc(4))
            .describe()
            .contains("saturating"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_rejected() {
        ResettingConfidence::new(IndexSpec::pc(4), 0, InitPolicy::AllOnes);
    }

    #[test]
    fn flush_restores_initial_state() {
        let mut cir = OneLevelCir::new(IndexSpec::pc(4), 8, InitPolicy::LastBit);
        let mut sat = SaturatingConfidence::new(IndexSpec::pc(4), 16, InitPolicy::AllZeros);
        let mut reset = ResettingConfidence::new(IndexSpec::pc(4), 16, InitPolicy::AllOnes);
        for _ in 0..5 {
            cir.update(0x10, 0, true);
            sat.update(0x10, 0, false);
            reset.update(0x10, 0, true);
        }
        cir.flush();
        sat.flush();
        reset.flush();
        assert_eq!(cir.read_key(0x10, 0), 0b1000_0000);
        assert_eq!(sat.read_key(0x10, 0), 16, "all-zeros equivalent count");
        assert_eq!(reset.read_key(0x10, 0), 0);
    }

    #[test]
    fn mapped_flush_delegates() {
        let mut m =
            MappedKey::ones_count(OneLevelCir::new(IndexSpec::pc(4), 8, InitPolicy::AllOnes));
        for _ in 0..8 {
            m.update(0x10, 0, true);
        }
        assert_eq!(m.read_key(0x10, 0), 0);
        m.flush();
        assert_eq!(m.read_key(0x10, 0), 8);
    }

    #[test]
    fn init_policies_shape_initial_counts() {
        let zeros = ResettingConfidence::new(IndexSpec::pc(4), 16, InitPolicy::AllZeros);
        assert_eq!(
            zeros.read_key(0, 0),
            16,
            "all-zeros CIR ≡ saturated counter"
        );
        let last = ResettingConfidence::new(IndexSpec::pc(4), 16, InitPolicy::LastBit);
        assert_eq!(last.read_key(0, 0), 15);
    }
}
