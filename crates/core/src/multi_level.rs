//! Multi-level confidence — the generalization the paper names but defers.
//!
//! §1: *"Note that in general, one could divide the branches into multiple
//! sets with a range of confidence levels. To date, we have not pursued
//! this generalization and consider only two confidence sets in this
//! paper."* This module pursues it: a [`MultiLevelEstimator`] partitions
//! predictions into `N + 1` ordered confidence classes using `N` key
//! thresholds over any counter-keyed mechanism.
//!
//! Class 0 is the *least* confident (smallest keys — most recent
//! mispredictions under counter semantics); class `N` the most confident.
//! A two-threshold resetting-counter instance gives the classic
//! low/medium/high split used by e.g. graduated fetch-gating policies.

use std::fmt;

use crate::ConfidenceMechanism;

/// A confidence class: `0` = least confident.
pub type ConfidenceClass = usize;

/// Partitions predictions into ordered confidence classes by key
/// thresholds.
///
/// With thresholds `[t0, t1, …]` (strictly increasing), a key `k` belongs
/// to class `i` = the number of thresholds ≤ `k`; i.e. class 0 holds
/// `k < t0`, class 1 holds `t0 <= k < t1`, and so on.
///
/// # Examples
///
/// ```
/// use cira_core::multi_level::MultiLevelEstimator;
/// use cira_core::one_level::ResettingConfidence;
/// use cira_core::IndexSpec;
///
/// let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
/// let mut est = MultiLevelEstimator::new(mech, vec![2, 8, 16]).unwrap();
/// assert_eq!(est.classes(), 4);
/// assert_eq!(est.classify(0x40, 0), 0); // cold entry: counter 0 => lowest
/// for _ in 0..20 {
///     est.update(0x40, 0, true);
/// }
/// assert_eq!(est.classify(0x40, 0), 3); // saturated: highest class
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevelEstimator<M> {
    mechanism: M,
    thresholds: Vec<u64>,
}

/// Error returned when the threshold list is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidThresholds {
    /// Explanation of the violation.
    reason: &'static str,
}

impl fmt::Display for InvalidThresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid thresholds: {}", self.reason)
    }
}

impl std::error::Error for InvalidThresholds {}

impl<M: ConfidenceMechanism> MultiLevelEstimator<M> {
    /// Creates a multi-level estimator over strictly increasing thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidThresholds`] if the list is empty or not strictly
    /// increasing.
    pub fn new(mechanism: M, thresholds: Vec<u64>) -> Result<Self, InvalidThresholds> {
        if thresholds.is_empty() {
            return Err(InvalidThresholds {
                reason: "at least one threshold required",
            });
        }
        if thresholds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(InvalidThresholds {
                reason: "thresholds must be strictly increasing",
            });
        }
        Ok(Self {
            mechanism,
            thresholds,
        })
    }

    /// Number of confidence classes (`thresholds.len() + 1`).
    pub fn classes(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// The thresholds in use.
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }

    /// Borrows the underlying mechanism.
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The confidence class of the current prediction for this branch.
    pub fn classify(&self, pc: u64, bhr: u64) -> ConfidenceClass {
        let key = self.mechanism.read_key(pc, bhr);
        self.thresholds.iter().take_while(|&&t| t <= key).count()
    }

    /// Records prediction correctness (forwards to the mechanism).
    pub fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        self.mechanism.update(pc, bhr, correct);
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        format!(
            "{} | {} classes at {:?}",
            self.mechanism.describe(),
            self.classes(),
            self.thresholds
        )
    }
}

/// Per-class statistics collected by multi-level simulation drivers
/// (`cira-analysis::runner::run_multi_level`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    refs: Vec<u64>,
    mispredicts: Vec<u64>,
}

impl ClassStats {
    /// Creates statistics for `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            refs: vec![0; classes],
            mispredicts: vec![0; classes],
        }
    }

    /// Records one prediction in `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn observe(&mut self, class: ConfidenceClass, correct: bool) {
        self.refs[class] += 1;
        if !correct {
            self.mispredicts[class] += 1;
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.refs.len()
    }

    /// References in `class`.
    pub fn refs(&self, class: ConfidenceClass) -> u64 {
        self.refs[class]
    }

    /// Mispredictions in `class`.
    pub fn mispredicts(&self, class: ConfidenceClass) -> u64 {
        self.mispredicts[class]
    }

    /// Misprediction rate of `class` (0 when empty).
    pub fn miss_rate(&self, class: ConfidenceClass) -> f64 {
        if self.refs[class] == 0 {
            0.0
        } else {
            self.mispredicts[class] as f64 / self.refs[class] as f64
        }
    }

    /// Total references across classes.
    pub fn total_refs(&self) -> u64 {
        self.refs.iter().sum()
    }

    /// Total mispredictions across classes.
    pub fn total_mispredicts(&self) -> u64 {
        self.mispredicts.iter().sum()
    }

    /// Whether miss rates decrease (weakly) with increasing class — the
    /// defining property of a useful multi-level partition.
    pub fn rates_are_monotone(&self) -> bool {
        (1..self.classes()).all(|c| {
            self.refs[c] == 0
                || self.refs[c - 1] == 0
                || self.miss_rate(c) <= self.miss_rate(c - 1) + 1e-12
        })
    }
}

impl fmt::Display for ClassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6}  {:>12} {:>12} {:>9}",
            "class", "refs", "mispredicts", "rate"
        )?;
        for c in 0..self.classes() {
            writeln!(
                f,
                "{:>6}  {:>12} {:>12} {:>9.4}",
                c,
                self.refs[c],
                self.mispredicts[c],
                self.miss_rate(c)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_level::ResettingConfidence;
    use crate::IndexSpec;

    fn mech() -> ResettingConfidence {
        ResettingConfidence::paper_default(IndexSpec::pc(6))
    }

    #[test]
    fn rejects_bad_thresholds() {
        assert!(MultiLevelEstimator::new(mech(), vec![]).is_err());
        assert!(MultiLevelEstimator::new(mech(), vec![3, 3]).is_err());
        assert!(MultiLevelEstimator::new(mech(), vec![5, 2]).is_err());
        let err = MultiLevelEstimator::new(mech(), vec![]).unwrap_err();
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn class_boundaries() {
        let est = MultiLevelEstimator::new(mech(), vec![2, 8]).unwrap();
        assert_eq!(est.classes(), 3);
        // counter 0 and 1 -> class 0; 2..=7 -> class 1; 8.. -> class 2
        let mut e = est;
        assert_eq!(e.classify(0, 0), 0);
        e.update(0, 0, true);
        e.update(0, 0, true); // counter 2
        assert_eq!(e.classify(0, 0), 1);
        for _ in 0..6 {
            e.update(0, 0, true); // counter 8
        }
        assert_eq!(e.classify(0, 0), 2);
    }

    #[test]
    fn misprediction_resets_to_lowest_class() {
        let mut e = MultiLevelEstimator::new(mech(), vec![1, 4, 12]).unwrap();
        for _ in 0..16 {
            e.update(0x10, 0, true);
        }
        assert_eq!(e.classify(0x10, 0), 3);
        e.update(0x10, 0, false);
        assert_eq!(e.classify(0x10, 0), 0);
    }

    #[test]
    fn two_level_split_matches_threshold_estimator() {
        use crate::{ConfidenceEstimator, LowRule, ThresholdEstimator};
        let mut multi = MultiLevelEstimator::new(mech(), vec![8]).unwrap();
        let mut binary = ThresholdEstimator::new(mech(), LowRule::KeyBelow(8));
        let outcomes = [
            true, true, false, true, true, true, true, true, true, false, true,
        ];
        for &ok in &outcomes {
            let m = multi.classify(0x20, 0);
            let b = binary.estimate(0x20, 0);
            assert_eq!(m == 0, b.is_low());
            multi.update(0x20, 0, ok);
            binary.update(0x20, 0, ok);
        }
    }

    #[test]
    fn class_stats_accounting() {
        let mut s = ClassStats::new(3);
        s.observe(0, false);
        s.observe(0, false);
        s.observe(1, true);
        s.observe(2, true);
        s.observe(2, true);
        assert_eq!(s.total_refs(), 5);
        assert_eq!(s.total_mispredicts(), 2);
        assert_eq!(s.miss_rate(0), 1.0);
        assert_eq!(s.miss_rate(2), 0.0);
        assert!(s.rates_are_monotone());
        let text = s.to_string();
        assert!(text.contains("class"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn monotonicity_detects_inversion() {
        let mut s = ClassStats::new(2);
        s.observe(0, true); // class 0: rate 0
        s.observe(1, false); // class 1: rate 1
        assert!(!s.rates_are_monotone());
    }

    #[test]
    fn describe_mentions_classes() {
        let e = MultiLevelEstimator::new(mech(), vec![2, 8]).unwrap();
        assert!(e.describe().contains("3 classes"));
        assert_eq!(e.thresholds(), &[2, 8]);
        assert_eq!(e.mechanism().max(), 16);
    }
}
