//! Online high/low confidence estimators.
//!
//! A [`ConfidenceMechanism`] exposes a raw
//! *key* (CIR pattern or counter value); an estimator reduces that key to
//! the binary high/low signal of Fig. 1 via a [`LowRule`]. The estimator is
//! what the paper's applications consume (dual-path forking, SMT fetch
//! gating, prediction reversal, hybrid selection).

use std::collections::HashSet;
use std::fmt;

use crate::ConfidenceMechanism;

/// The binary confidence signal emitted alongside each prediction (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// The prediction is expected to be correct.
    High,
    /// The prediction belongs to the low-confidence set.
    Low,
}

impl Confidence {
    /// `true` for [`Confidence::Low`].
    pub fn is_low(self) -> bool {
        matches!(self, Confidence::Low)
    }

    /// `true` for [`Confidence::High`].
    pub fn is_high(self) -> bool {
        matches!(self, Confidence::High)
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::High => write!(f, "high"),
            Confidence::Low => write!(f, "low"),
        }
    }
}

/// An online estimator pairing each branch prediction with a
/// high/low-confidence signal.
pub trait ConfidenceEstimator {
    /// The confidence of the current prediction for the branch at `pc`
    /// under global history `bhr`.
    fn estimate(&self, pc: u64, bhr: u64) -> Confidence;

    /// Records whether the prediction turned out correct.
    fn update(&mut self, pc: u64, bhr: u64, correct: bool);

    /// Short human-readable description.
    fn describe(&self) -> String;
}

/// The combinational "reduction function" (Fig. 3) in rule form: which keys
/// constitute the low-confidence set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowRule {
    /// Low when `key < threshold` — the natural rule for counter-compressed
    /// tables (small count ⇒ recent misprediction). A threshold of
    /// `max + 1` makes every non-saturated *and* saturated key low; a
    /// threshold of 0 makes nothing low.
    KeyBelow(u64),
    /// Low when `popcount(key) >= threshold` — the ones-count rule for
    /// full-CIR tables (§5.1).
    OnesAtLeast(u32),
    /// Low when the key is a member of an explicit set — the ideal
    /// reduction of §4, whose minterms come from offline bucket analysis.
    KeyIn(HashSet<u64>),
}

impl LowRule {
    /// Whether `key` falls in the low-confidence set.
    pub fn is_low(&self, key: u64) -> bool {
        match self {
            LowRule::KeyBelow(t) => key < *t,
            LowRule::OnesAtLeast(t) => key.count_ones() >= *t,
            LowRule::KeyIn(set) => set.contains(&key),
        }
    }
}

impl fmt::Display for LowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowRule::KeyBelow(t) => write!(f, "key<{t}"),
            LowRule::OnesAtLeast(t) => write!(f, "ones>={t}"),
            LowRule::KeyIn(set) => write!(f, "key in {{{} minterms}}", set.len()),
        }
    }
}

/// A mechanism plus a [`LowRule`]: the complete hardware box of Fig. 3.
///
/// # Examples
///
/// ```
/// use cira_core::{Confidence, ConfidenceEstimator, IndexSpec, LowRule, ThresholdEstimator};
/// use cira_core::one_level::ResettingConfidence;
///
/// let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
/// let mut est = ThresholdEstimator::new(mech, LowRule::KeyBelow(2));
/// // Fresh entries read 0 (all-ones init): low confidence.
/// assert_eq!(est.estimate(0x40, 0), Confidence::Low);
/// for _ in 0..4 {
///     est.update(0x40, 0, true);
/// }
/// assert_eq!(est.estimate(0x40, 0), Confidence::High);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdEstimator<M> {
    mechanism: M,
    rule: LowRule,
}

impl<M: ConfidenceMechanism> ThresholdEstimator<M> {
    /// Pairs a mechanism with a reduction rule.
    pub fn new(mechanism: M, rule: LowRule) -> Self {
        Self { mechanism, rule }
    }

    /// Borrows the underlying mechanism.
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The reduction rule.
    pub fn rule(&self) -> &LowRule {
        &self.rule
    }
}

impl<M: ConfidenceMechanism> ConfidenceEstimator for ThresholdEstimator<M> {
    fn estimate(&self, pc: u64, bhr: u64) -> Confidence {
        if self.rule.is_low(self.mechanism.read_key(pc, bhr)) {
            Confidence::Low
        } else {
            Confidence::High
        }
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        self.mechanism.update(pc, bhr, correct);
    }

    fn describe(&self) -> String {
        format!("{} | low if {}", self.mechanism.describe(), self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_level::{OneLevelCir, ResettingConfidence};
    use crate::{IndexSpec, InitPolicy};

    #[test]
    fn confidence_helpers() {
        assert!(Confidence::Low.is_low());
        assert!(!Confidence::Low.is_high());
        assert!(Confidence::High.is_high());
        assert_eq!(Confidence::High.to_string(), "high");
        assert_eq!(Confidence::Low.to_string(), "low");
    }

    #[test]
    fn key_below_rule() {
        let r = LowRule::KeyBelow(3);
        assert!(r.is_low(0));
        assert!(r.is_low(2));
        assert!(!r.is_low(3));
        assert!(!r.is_low(100));
    }

    #[test]
    fn ones_at_least_rule() {
        let r = LowRule::OnesAtLeast(2);
        assert!(!r.is_low(0b0001));
        assert!(r.is_low(0b0011));
        assert!(r.is_low(0b1110001));
    }

    #[test]
    fn key_in_rule() {
        let r = LowRule::KeyIn([1u64, 5, 9].into_iter().collect());
        assert!(r.is_low(5));
        assert!(!r.is_low(4));
    }

    #[test]
    fn resetting_estimator_end_to_end() {
        let mech = ResettingConfidence::new(IndexSpec::pc(8), 16, InitPolicy::AllOnes);
        let mut est = ThresholdEstimator::new(mech, LowRule::KeyBelow(1));
        // Counter starts at 0 => low.
        assert!(est.estimate(0x40, 0).is_low());
        est.update(0x40, 0, true);
        assert!(est.estimate(0x40, 0).is_high());
        est.update(0x40, 0, false);
        assert!(est.estimate(0x40, 0).is_low(), "reset on misprediction");
    }

    #[test]
    fn ones_count_estimator_on_full_cir() {
        let mech = OneLevelCir::new(IndexSpec::pc(8), 8, InitPolicy::AllZeros);
        let mut est = ThresholdEstimator::new(mech, LowRule::OnesAtLeast(2));
        assert!(est.estimate(0x10, 0).is_high());
        est.update(0x10, 0, false);
        assert!(
            est.estimate(0x10, 0).is_high(),
            "one misprediction is below threshold"
        );
        est.update(0x10, 0, false);
        assert!(est.estimate(0x10, 0).is_low());
    }

    #[test]
    fn describe_combines_parts() {
        let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(8));
        let est = ThresholdEstimator::new(mech, LowRule::KeyBelow(16));
        let d = est.describe();
        assert!(d.contains("resetting") && d.contains("key<16"), "{d}");
    }
}
