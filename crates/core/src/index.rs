//! Confidence-table index functions.
//!
//! §3.1 of the paper enumerates the ways a CIR table can be indexed: the
//! branch PC, the global branch history register (BHR), a global CIR, and
//! combinations of these formed by exclusive-OR or by concatenating
//! sub-fields. [`IndexSpec`] captures that whole family; the paper's three
//! reported one-level variants are [`IndexSpec::pc`], [`IndexSpec::bhr`],
//! and [`IndexSpec::pc_xor_bhr`], and the two-level variants add the
//! level-one CIR as a source.

use std::fmt;

/// The values available to an index function at lookup time.
///
/// `cir` is the level-one CIR value (meaningful only when indexing a
/// second-level table); `global_cir` is the process-wide
/// correct/incorrect history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct IndexInputs {
    /// Branch program counter.
    pub pc: u64,
    /// Global branch history register value.
    pub bhr: u64,
    /// Level-one CIR value (two-level mechanisms only).
    pub cir: u64,
    /// Global correct/incorrect register value.
    pub global_cir: u64,
}

/// One component of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexSource {
    /// The branch PC (shifted right by 2: 4-byte aligned instructions).
    Pc,
    /// The global branch history register.
    Bhr,
    /// The CIR read from the first-level table (two-level methods).
    Cir,
    /// The global correct/incorrect register.
    GlobalCir,
}

impl IndexSource {
    fn extract(self, inputs: IndexInputs) -> u64 {
        match self {
            IndexSource::Pc => inputs.pc >> 2,
            IndexSource::Bhr => inputs.bhr,
            IndexSource::Cir => inputs.cir,
            IndexSource::GlobalCir => inputs.global_cir,
        }
    }

    fn label(self) -> &'static str {
        match self {
            IndexSource::Pc => "PC",
            IndexSource::Bhr => "BHR",
            IndexSource::Cir => "CIR",
            IndexSource::GlobalCir => "GCIR",
        }
    }
}

/// How multiple sources are combined into one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combine {
    /// Exclusive-OR all sources (each masked to the full index width).
    Xor,
    /// Concatenate sub-fields: the index width is split evenly across the
    /// sources (the first source receives any remainder and occupies the
    /// most-significant field).
    Concat,
}

/// A complete index function: sources, combination, and output width.
///
/// # Examples
///
/// ```
/// use cira_core::index::{IndexInputs, IndexSpec};
///
/// let spec = IndexSpec::pc_xor_bhr(16);
/// let idx = spec.index(IndexInputs { pc: 0x4000, bhr: 0xff, ..Default::default() });
/// assert_eq!(idx, ((0x4000u64 >> 2) ^ 0xff) as usize & 0xffff);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    sources: Vec<IndexSource>,
    combine: Combine,
    bits: u32,
}

impl IndexSpec {
    /// Creates an index spec.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty, `bits` is outside `1..=28`, or a
    /// `Concat` split would leave a source with zero bits.
    pub fn new(sources: Vec<IndexSource>, combine: Combine, bits: u32) -> Self {
        assert!(!sources.is_empty(), "index spec needs at least one source");
        assert!((1..=28).contains(&bits), "index width must be 1..=28 bits");
        if combine == Combine::Concat {
            assert!(
                bits as usize >= sources.len(),
                "concat of {} sources cannot fit in {bits} bits",
                sources.len()
            );
        }
        Self {
            sources,
            combine,
            bits,
        }
    }

    /// Index by PC alone.
    pub fn pc(bits: u32) -> Self {
        Self::new(vec![IndexSource::Pc], Combine::Xor, bits)
    }

    /// Index by the global BHR alone.
    pub fn bhr(bits: u32) -> Self {
        Self::new(vec![IndexSource::Bhr], Combine::Xor, bits)
    }

    /// Index by `PC ⊕ BHR` — the paper's best one-level method.
    pub fn pc_xor_bhr(bits: u32) -> Self {
        Self::new(vec![IndexSource::Pc, IndexSource::Bhr], Combine::Xor, bits)
    }

    /// Index by the level-one CIR alone (second-level tables).
    pub fn cir(bits: u32) -> Self {
        Self::new(vec![IndexSource::Cir], Combine::Xor, bits)
    }

    /// Index by `CIR ⊕ PC ⊕ BHR` (the paper's third two-level variant).
    pub fn cir_xor_pc_xor_bhr(bits: u32) -> Self {
        Self::new(
            vec![IndexSource::Cir, IndexSource::Pc, IndexSource::Bhr],
            Combine::Xor,
            bits,
        )
    }

    /// Index by the global CIR alone (§3.1 reports this performs poorly;
    /// provided for the ablation).
    pub fn global_cir(bits: u32) -> Self {
        Self::new(vec![IndexSource::GlobalCir], Combine::Xor, bits)
    }

    /// Concatenation of PC and BHR sub-fields (the paper's "concatenating
    /// sub-fields" alternative; the index-hash ablation compares this
    /// against XOR).
    pub fn pc_concat_bhr(bits: u32) -> Self {
        Self::new(
            vec![IndexSource::Pc, IndexSource::Bhr],
            Combine::Concat,
            bits,
        )
    }

    /// Output width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of table entries this spec addresses.
    pub fn table_len(&self) -> usize {
        1usize << self.bits
    }

    /// The sources feeding the index.
    pub fn sources(&self) -> &[IndexSource] {
        &self.sources
    }

    /// Whether the spec reads the level-one CIR (i.e. is a second-level
    /// index).
    pub fn uses_cir(&self) -> bool {
        self.sources.contains(&IndexSource::Cir)
    }

    /// Whether the spec reads the global CIR.
    pub fn uses_global_cir(&self) -> bool {
        self.sources.contains(&IndexSource::GlobalCir)
    }

    /// Precompiles the spec for hot loops: specs that combine only PC
    /// and/or BHR by XOR reduce to two masked XOR terms, letting batch
    /// kernels skip the per-record source interpreter. Returns `None` for
    /// everything else (CIR/global-CIR sources, concatenation).
    pub fn compile_pc_bhr_xor(&self) -> Option<PcBhrXor> {
        if self.combine != Combine::Xor {
            return None;
        }
        let mut use_pc = false;
        let mut use_bhr = false;
        for s in &self.sources {
            match s {
                // XOR semantics: repeated sources cancel pairwise.
                IndexSource::Pc => use_pc = !use_pc,
                IndexSource::Bhr => use_bhr = !use_bhr,
                IndexSource::Cir | IndexSource::GlobalCir => return None,
            }
        }
        Some(PcBhrXor {
            use_pc,
            use_bhr,
            mask: (1u64 << self.bits) - 1,
        })
    }

    /// Computes the table index for the given inputs.
    pub fn index(&self, inputs: IndexInputs) -> usize {
        let mask = (1u64 << self.bits) - 1;
        match self.combine {
            Combine::Xor => {
                let mut acc = 0u64;
                for s in &self.sources {
                    acc ^= s.extract(inputs);
                }
                (acc & mask) as usize
            }
            Combine::Concat => {
                let n = self.sources.len() as u32;
                let share = self.bits / n;
                let remainder = self.bits - share * n;
                let mut acc = 0u64;
                for (i, s) in self.sources.iter().enumerate() {
                    let width = if i == 0 { share + remainder } else { share };
                    let field_mask = if width >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << width) - 1
                    };
                    acc = (acc << width) | (s.extract(inputs) & field_mask);
                }
                (acc & mask) as usize
            }
        }
    }
}

/// Precompiled XOR index over PC and/or BHR — see
/// [`IndexSpec::compile_pc_bhr_xor`]. Computes exactly what
/// [`IndexSpec::index`] would for the same spec.
#[derive(Debug, Clone, Copy)]
pub struct PcBhrXor {
    use_pc: bool,
    use_bhr: bool,
    mask: u64,
}

impl PcBhrXor {
    /// The table index for `(pc, bhr)`.
    #[inline]
    pub fn index(self, pc: u64, bhr: u64) -> usize {
        let mut acc = 0u64;
        if self.use_pc {
            acc ^= pc >> 2;
        }
        if self.use_bhr {
            acc ^= bhr;
        }
        (acc & self.mask) as usize
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sep = match self.combine {
            Combine::Xor => "^",
            Combine::Concat => "||",
        };
        let parts: Vec<&str> = self.sources.iter().map(|s| s.label()).collect();
        write!(f, "{}[{}b]", parts.join(sep), self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pc: u64, bhr: u64) -> IndexInputs {
        IndexInputs {
            pc,
            bhr,
            ..Default::default()
        }
    }

    #[test]
    fn pc_index_drops_alignment_bits() {
        let spec = IndexSpec::pc(8);
        assert_eq!(spec.index(inputs(0x404, 0)), 0x101 & 0xff);
    }

    #[test]
    fn bhr_index_masks() {
        let spec = IndexSpec::bhr(4);
        assert_eq!(spec.index(inputs(0, 0xabc)), 0xc);
    }

    #[test]
    fn xor_combination_matches_gshare_style() {
        let spec = IndexSpec::pc_xor_bhr(16);
        let idx = spec.index(inputs(0x1_2344, 0x00ff));
        assert_eq!(idx, (((0x1_2344u64 >> 2) ^ 0xff) & 0xffff) as usize);
    }

    #[test]
    fn concat_splits_fields() {
        // 8 bits over [Pc, Bhr]: PC gets the top 4, BHR the bottom 4.
        let spec = IndexSpec::pc_concat_bhr(8);
        let idx = spec.index(inputs(0b1011 << 2, 0b0110));
        assert_eq!(idx, 0b1011_0110);
    }

    #[test]
    fn concat_remainder_goes_to_first_source() {
        // 9 bits over 2 sources: first gets 5, second 4.
        let spec = IndexSpec::new(vec![IndexSource::Pc, IndexSource::Bhr], Combine::Concat, 9);
        let idx = spec.index(inputs(0b11111 << 2, 0b1111));
        assert_eq!(idx, 0b1_1111_1111);
    }

    #[test]
    fn cir_sources_read_cir_fields() {
        let spec = IndexSpec::cir_xor_pc_xor_bhr(8);
        let idx = spec.index(IndexInputs {
            pc: 0,
            bhr: 0b0011,
            cir: 0b0101,
            global_cir: 0,
        });
        assert_eq!(idx, 0b0110);
        assert!(spec.uses_cir());
        assert!(!spec.uses_global_cir());
    }

    #[test]
    fn global_cir_source() {
        let spec = IndexSpec::global_cir(6);
        let idx = spec.index(IndexInputs {
            global_cir: 0b111000,
            ..Default::default()
        });
        assert_eq!(idx, 0b111000);
        assert!(spec.uses_global_cir());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(IndexSpec::pc_xor_bhr(16).to_string(), "PC^BHR[16b]");
        assert_eq!(IndexSpec::pc_concat_bhr(8).to_string(), "PC||BHR[8b]");
    }

    #[test]
    fn table_len_matches_bits() {
        assert_eq!(IndexSpec::pc(10).table_len(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panics() {
        IndexSpec::new(vec![], Combine::Xor, 8);
    }

    #[test]
    #[should_panic(expected = "1..=28")]
    fn zero_bits_panics() {
        IndexSpec::pc(0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn concat_too_narrow_panics() {
        IndexSpec::new(
            vec![IndexSource::Pc, IndexSource::Bhr, IndexSource::Cir],
            Combine::Concat,
            2,
        );
    }
}
