//! Self-confidence: bucketing on the predictor's *own* strength signal.
//!
//! Every mechanism in the paper is external — a separate table watching
//! the predictor's correctness stream. A TAGE-class predictor, by
//! contrast, knows which component provided each prediction and how
//! saturated its counter was ([`BranchPredictor::predict_full`]). This
//! mechanism turns that self-assessment into a confidence key on the
//! same `0..=7` scale, so it competes head-to-head with CIRs and
//! resetting counters inside the unchanged coverage analysis.
//!
//! ## The shadow predictor
//!
//! [`ConfidenceMechanism`] deliberately never sees predictions or
//! outcomes — only `(pc, bhr, correct)` — and the replay kernels depend
//! on that narrow interface. To read the predictor's strength without
//! widening it, `SelfConfidence` runs its own *shadow* instance of the
//! same predictor configuration: `read_key` asks the shadow for its
//! strength, and `update` reconstructs the resolved direction from
//! `correct` (`taken = correct ? predicted : !predicted` — exact, since
//! an identically configured, identically trained shadow makes
//! bit-identical predictions) and trains the shadow with it. The shadow
//! therefore stays in lock-step with the session predictor forever,
//! without touching the driver, the wire protocol, or the batch kernels.
//!
//! Pairing `self:<spec>` with a *different* session predictor is
//! well-defined and deterministic, but the keys then describe the shadow
//! rather than the real predictor — the CLI defaults the inner spec to
//! the session's predictor for exactly this reason.

use cira_predictor::BranchPredictor;

use crate::ConfidenceMechanism;

/// Boxed factory that rebuilds the shadow predictor from its spec —
/// needed because `flush` must re-initialize a predictor `cira-core`
/// only knows as a trait object.
pub type ShadowFactory = Box<dyn Fn() -> Box<dyn BranchPredictor + Send> + Send>;

/// A confidence mechanism that buckets on the predictor's self-assessed
/// strength, via a shadow instance kept in lock-step with the session
/// predictor (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use cira_core::self_confidence::SelfConfidence;
/// use cira_core::ConfidenceMechanism;
/// use cira_predictor::Gshare;
///
/// let mut m = SelfConfidence::new(Box::new(|| Box::new(Gshare::new(10, 10))));
/// assert_eq!(m.key_space(), Some(8));
/// let key = m.read_key(0x40, 0);
/// m.update(0x40, 0, true);
/// assert!(key <= 7);
/// ```
pub struct SelfConfidence {
    shadow: Box<dyn BranchPredictor + Send>,
    rebuild: ShadowFactory,
}

impl std::fmt::Debug for SelfConfidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfConfidence")
            .field("shadow", &self.shadow.describe())
            .finish_non_exhaustive()
    }
}

impl SelfConfidence {
    /// Creates the mechanism; `rebuild` constructs a fresh shadow (it is
    /// called once now and again on every [`flush`](ConfidenceMechanism::flush)).
    pub fn new(rebuild: ShadowFactory) -> Self {
        Self {
            shadow: rebuild(),
            rebuild,
        }
    }

    /// The shadow predictor's description (for diagnostics).
    pub fn shadow_describe(&self) -> String {
        self.shadow.describe()
    }
}

impl ConfidenceMechanism for SelfConfidence {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        u64::from(self.shadow.predict_full(pc, bhr).strength)
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        // Reconstruct the resolved direction from the correctness bit:
        // the shadow predicts exactly what the session predictor
        // predicted, so `correct` tells us whether that direction was
        // the actual outcome.
        let predicted = self.shadow.predict(pc, bhr);
        let taken = if correct { predicted } else { !predicted };
        self.shadow.update(pc, bhr, taken);
    }

    fn key_space(&self) -> Option<u64> {
        Some(u64::from(cira_predictor::Prediction::MAX_STRENGTH) + 1)
    }

    fn describe(&self) -> String {
        format!("self-confidence({})", self.shadow.describe())
    }

    fn flush(&mut self) {
        self.shadow = (self.rebuild)();
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        self.shadow.state_save(out);
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.shadow.state_load(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_predictor::{Gshare, HistoryRegister, Tage};

    /// Drives a session predictor and the mechanism side by side the way
    /// the replay engine does — the mechanism only ever sees
    /// `(pc, bhr, correct)` — and checks the shadow stays in lock-step:
    /// its strength keys must equal the session predictor's own.
    #[test]
    fn shadow_tracks_the_session_predictor() {
        let mut session = Tage::new(8, 4, 2, 24, 8);
        let mut m = SelfConfidence::new(Box::new(|| Box::new(Tage::new(8, 4, 2, 24, 8))));
        let mut bhr = HistoryRegister::new(64);
        let mut x = 5u64;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x40 + (x % 17) * 4;
            let taken = i % 5 != 4;
            let expected_key = u64::from(session.predict_full(pc, bhr.value()).strength);
            assert_eq!(m.read_key(pc, bhr.value()), expected_key, "record {i}");
            let correct = session.predict_train(pc, bhr.value(), taken) == taken;
            m.update(pc, bhr.value(), correct);
            bhr.push(taken);
        }
    }

    #[test]
    fn flush_resets_the_shadow() {
        let mut m = SelfConfidence::new(Box::new(|| Box::new(Gshare::new(6, 6))));
        for _ in 0..8 {
            m.update(0x40, 0, true); // drive the counter off its init
        }
        let warm = m.read_key(0x40, 0);
        m.flush();
        let mut fresh = SelfConfidence::new(Box::new(|| Box::new(Gshare::new(6, 6))));
        assert_eq!(m.read_key(0x40, 0), fresh.read_key(0x40, 0));
        // Warm state really differed from init (strength saturated).
        assert_ne!(warm, fresh.read_key(0x40, 0));
        let _ = &mut fresh;
    }

    #[test]
    fn state_round_trips_through_the_shadow() {
        let mut a = SelfConfidence::new(Box::new(|| Box::new(Tage::new(8, 4, 2, 24, 8))));
        let mut x = 9u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            a.update(x & 0xfff, x >> 12, x >> 63 == 1);
        }
        let mut blob = Vec::new();
        a.state_save(&mut blob);
        let mut b = SelfConfidence::new(Box::new(|| Box::new(Tage::new(8, 4, 2, 24, 8))));
        b.state_load(&blob).unwrap();
        for pc in (0..256u64).map(|i| i * 4) {
            assert_eq!(a.read_key(pc, 0x3f), b.read_key(pc, 0x3f));
        }
        assert!(b.state_load(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn describe_and_key_space() {
        let m = SelfConfidence::new(Box::new(|| Box::new(Gshare::new(6, 6))));
        assert_eq!(m.describe(), "self-confidence(gshare(6,6))");
        assert_eq!(m.key_space(), Some(8));
    }

    #[test]
    fn boxed_dispatch() {
        let mut m: Box<dyn ConfidenceMechanism + Send> =
            Box::new(SelfConfidence::new(Box::new(|| Box::new(Gshare::new(6, 6)))));
        let k = m.read_key(0, 0);
        m.update(0, 0, true);
        assert!(k <= 7);
        m.flush();
    }
}
