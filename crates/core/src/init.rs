//! Confidence-table initialization policies (§5.4).
//!
//! The paper finds that the initial CIR contents matter because the table's
//! memory is deep: all-ones and random initial values perform similarly and
//! clearly beat all-zeros (which assigns *high* confidence to cold-start
//! branches, exactly when mispredictions are most likely). The "lastbit"
//! policy — only the oldest bit set — performs like the other non-zero
//! policies while simplifying context-switch handling.

use std::fmt;

use crate::cir::Cir;

/// How CIR-table entries are initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitPolicy {
    /// Every bit 1 (all predictions "recently incorrect") — the paper's
    /// default and best performer.
    AllOnes,
    /// Every bit 0; performs noticeably worse (§5.4, Fig. 11).
    AllZeros,
    /// Only the oldest bit 1 — the cheap hardware alternative.
    LastBit,
    /// Pseudo-random contents derived from the given seed and the entry
    /// index (deterministic).
    Random(u64),
}

impl InitPolicy {
    /// The initial CIR for table entry `entry` at the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32` (propagated from [`Cir`]).
    pub fn initial_cir(self, width: u32, entry: usize) -> Cir {
        match self {
            InitPolicy::AllOnes => Cir::all_ones(width),
            InitPolicy::AllZeros => Cir::zeroed(width),
            InitPolicy::LastBit => Cir::from_bits(1 << (width - 1), width),
            InitPolicy::Random(seed) => Cir::from_bits(mix(seed ^ entry as u64) as u32, width),
        }
    }

    /// The equivalent initial value for a *counter-compressed* table entry
    /// counting 0..=`max` (see §5.1): the counter holds the distance since
    /// the last misprediction, so all-ones ⇒ 0, all-zeros ⇒ `max`, lastbit
    /// ⇒ `max - 1` (one misprediction, `width-1` correct outcomes ago), and
    /// random ⇒ a deterministic pseudo-random value in `0..=max`.
    pub fn initial_count(self, max: u32, entry: usize) -> u32 {
        match self {
            InitPolicy::AllOnes => 0,
            InitPolicy::AllZeros => max,
            InitPolicy::LastBit => max.saturating_sub(1),
            InitPolicy::Random(seed) => (mix(seed ^ entry as u64) % (max as u64 + 1)) as u32,
        }
    }
}

impl fmt::Display for InitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitPolicy::AllOnes => write!(f, "ones"),
            InitPolicy::AllZeros => write!(f, "zeros"),
            InitPolicy::LastBit => write!(f, "lastbit"),
            InitPolicy::Random(seed) => write!(f, "random({seed})"),
        }
    }
}

/// SplitMix64 finalizer — a stateless 64-bit mix used to derive per-entry
/// pseudo-random initial values.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ones_fills() {
        let c = InitPolicy::AllOnes.initial_cir(16, 3);
        assert_eq!(c.value(), 0xffff);
    }

    #[test]
    fn all_zeros_clears() {
        assert!(InitPolicy::AllZeros.initial_cir(16, 3).is_zero());
    }

    #[test]
    fn lastbit_sets_only_oldest() {
        let c = InitPolicy::LastBit.initial_cir(8, 0);
        assert_eq!(c.value(), 0b1000_0000);
        assert_eq!(c.ones_count(), 1);
        // The marker occupies the oldest position, so it flags exactly the
        // reads that happen before the entry's first update — the very next
        // push shifts it out.
        let mut c = c;
        c.push(true);
        assert!(c.is_zero());
    }

    #[test]
    fn random_is_deterministic_and_varies_by_entry() {
        let a = InitPolicy::Random(7).initial_cir(16, 0);
        let b = InitPolicy::Random(7).initial_cir(16, 0);
        assert_eq!(a, b);
        let c = InitPolicy::Random(7).initial_cir(16, 1);
        assert_ne!(a, c, "adjacent entries should almost surely differ");
    }

    #[test]
    fn counter_equivalents() {
        assert_eq!(InitPolicy::AllOnes.initial_count(16, 9), 0);
        assert_eq!(InitPolicy::AllZeros.initial_count(16, 9), 16);
        assert_eq!(InitPolicy::LastBit.initial_count(16, 9), 15);
        let r = InitPolicy::Random(3).initial_count(16, 9);
        assert!(r <= 16);
    }

    #[test]
    fn lastbit_counter_on_tiny_max() {
        assert_eq!(InitPolicy::LastBit.initial_count(0, 0), 0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(InitPolicy::AllOnes.to_string(), "ones");
        assert_eq!(InitPolicy::AllZeros.to_string(), "zeros");
        assert_eq!(InitPolicy::LastBit.to_string(), "lastbit");
        assert_eq!(InitPolicy::Random(5).to_string(), "random(5)");
    }
}
