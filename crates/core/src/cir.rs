//! The Correct/Incorrect Register (CIR) — the paper's central structure.
//!
//! A CIR is a shift register holding the `n` most recent correct/incorrect
//! indications for a confidence-table entry. Following the paper's
//! convention, a **1 bit records an incorrect prediction** and a 0 bit a
//! correct one; bit 0 is the most recent outcome. For example, 3 correct
//! predictions, then an incorrect one, then 4 correct predictions leave an
//! 8-bit CIR holding `0001_0000`.

use std::fmt;

/// A fixed-width shift register of prediction-correctness bits
/// (1 = mispredicted).
///
/// # Examples
///
/// ```
/// use cira_core::Cir;
///
/// let mut cir = Cir::zeroed(8);
/// cir.push(true);  // correct
/// cir.push(false); // incorrect
/// cir.push(true);  // correct
/// assert_eq!(cir.value(), 0b010);
/// assert_eq!(cir.ones_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cir {
    bits: u32,
    width: u32,
}

impl Cir {
    /// Maximum supported register width.
    pub const MAX_WIDTH: u32 = 32;

    /// An all-zero (all-correct history) CIR.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`Cir::MAX_WIDTH`].
    pub fn zeroed(width: u32) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "CIR width must be 1..={}, got {width}",
            Self::MAX_WIDTH
        );
        Self { bits: 0, width }
    }

    /// An all-ones (all-incorrect history) CIR — the paper's preferred
    /// initial value (§5.4).
    pub fn all_ones(width: u32) -> Self {
        let mut c = Self::zeroed(width);
        c.bits = c.mask();
        c
    }

    /// A CIR with an explicit bit pattern (masked to `width`).
    pub fn from_bits(bits: u32, width: u32) -> Self {
        let mut c = Self::zeroed(width);
        c.bits = bits & c.mask();
        c
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// All-ones mask of the register's width.
    pub fn mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }

    /// The register contents; bit 0 is the most recent outcome.
    pub fn value(&self) -> u32 {
        self.bits
    }

    /// Shifts in the outcome of a prediction (`correct == true` records a
    /// 0 bit, an incorrect prediction records a 1 bit).
    pub fn push(&mut self, correct: bool) {
        self.bits = ((self.bits << 1) | (!correct) as u32) & self.mask();
    }

    /// Number of mispredictions recorded (population count).
    pub fn ones_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the register records no recent mispredictions — the paper's
    /// "zero bucket".
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Number of predictions since the most recent misprediction, saturated
    /// at `width` when no misprediction is recorded.
    ///
    /// This is exactly the quantity a *resetting counter* (§5.1) tracks, so
    /// it provides the reference semantics for
    /// [`ResettingConfidence`](crate::one_level::ResettingConfidence).
    pub fn distance_since_misprediction(&self) -> u32 {
        if self.bits == 0 {
            self.width
        } else {
            self.bits.trailing_zeros()
        }
    }
}

impl fmt::Display for Cir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_pattern() {
        // 3 correct, 1 incorrect, 4 correct => 00010000 in an 8-bit CIR.
        let mut cir = Cir::zeroed(8);
        for _ in 0..3 {
            cir.push(true);
        }
        cir.push(false);
        for _ in 0..4 {
            cir.push(true);
        }
        assert_eq!(cir.value(), 0b0001_0000);
        assert_eq!(cir.to_string(), "00010000");
    }

    #[test]
    fn push_shifts_out_old_bits() {
        let mut cir = Cir::all_ones(4);
        for _ in 0..4 {
            cir.push(true);
        }
        assert!(cir.is_zero());
    }

    #[test]
    fn all_ones_has_full_count() {
        let cir = Cir::all_ones(16);
        assert_eq!(cir.ones_count(), 16);
        assert_eq!(cir.value(), 0xffff);
    }

    #[test]
    fn from_bits_masks() {
        let cir = Cir::from_bits(0xffff_ffff, 8);
        assert_eq!(cir.value(), 0xff);
    }

    #[test]
    fn width_32_supported() {
        let mut cir = Cir::all_ones(32);
        assert_eq!(cir.value(), u32::MAX);
        cir.push(true);
        assert_eq!(cir.ones_count(), 31);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        Cir::zeroed(0);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn overwide_panics() {
        Cir::zeroed(33);
    }

    #[test]
    fn distance_since_misprediction_semantics() {
        let mut cir = Cir::zeroed(8);
        assert_eq!(cir.distance_since_misprediction(), 8); // saturated
        cir.push(false); // misprediction now
        assert_eq!(cir.distance_since_misprediction(), 0);
        cir.push(true);
        cir.push(true);
        assert_eq!(cir.distance_since_misprediction(), 2);
        for _ in 0..6 {
            cir.push(true);
        }
        // Misprediction has shifted out entirely.
        assert_eq!(cir.distance_since_misprediction(), 8);
    }

    #[test]
    fn ones_count_tracks_pushes() {
        let mut cir = Cir::zeroed(16);
        cir.push(false);
        cir.push(false);
        cir.push(true);
        assert_eq!(cir.ones_count(), 2);
    }
}
