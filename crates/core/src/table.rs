//! The CIR Table (CT): an indexed array of Correct/Incorrect Registers.

use crate::cir::Cir;
use crate::init::InitPolicy;

/// A table of `2^index_bits` CIRs of `width` bits each.
///
/// This is the full-length-CIR organization of Fig. 3; the compressed
/// (counter-embedded) organizations of §5.1 live in
/// [`crate::one_level::SaturatingConfidence`] and
/// [`crate::one_level::ResettingConfidence`].
///
/// # Examples
///
/// ```
/// use cira_core::{table::CirTable, InitPolicy};
///
/// let mut ct = CirTable::new(4, 8, InitPolicy::AllOnes);
/// assert_eq!(ct.get(3).value(), 0xff);
/// ct.record(3, true); // a correct prediction shifts in a 0
/// assert_eq!(ct.get(3).value(), 0xfe);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CirTable {
    entries: Vec<Cir>,
    index_bits: u32,
    width: u32,
    init: InitPolicy,
}

impl CirTable {
    /// Creates a table of `2^index_bits` entries, each a `width`-bit CIR
    /// initialized per `init`.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=28` or `width` outside
    /// `1..=32`.
    pub fn new(index_bits: u32, width: u32, init: InitPolicy) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be 1..=28, got {index_bits}"
        );
        let len = 1usize << index_bits;
        let entries = (0..len).map(|i| init.initial_cir(width, i)).collect();
        cira_obs::debug!("cir table allocated", entries = len, width = width);
        Self {
            entries,
            index_bits,
            width,
            init,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false (tables have at least two entries).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index width in bits.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// CIR width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The initialization policy the table was created with.
    pub fn init_policy(&self) -> InitPolicy {
        self.init
    }

    /// Reads the CIR at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> Cir {
        self.entries[index]
    }

    /// Shifts a prediction outcome into the CIR at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn record(&mut self, index: usize, correct: bool) {
        self.entries[index].push(correct);
    }

    /// Hints that the entry at `index` will be accessed soon (x86_64
    /// prefetch, plain touch elsewhere). Out-of-range indices are ignored.
    #[inline]
    pub fn prefetch(&self, index: usize) {
        if let Some(e) = self.entries.get(index) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `e` is a live reference, so the pointer is valid;
            // prefetch has no architectural side effects.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    (e as *const Cir).cast::<i8>(),
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                std::hint::black_box(*e);
            }
        }
    }

    /// The raw bit pattern of every entry, in index order — the table's
    /// checkpointable state (width and init policy are configuration).
    pub fn entry_bits(&self) -> Vec<u32> {
        self.entries.iter().map(Cir::value).collect()
    }

    /// Restores every entry from raw bit patterns produced by
    /// [`entry_bits`](Self::entry_bits) on an identically configured table.
    ///
    /// # Errors
    ///
    /// Returns a message if the entry count differs or any pattern has bits
    /// above the table's CIR width.
    pub fn load_entry_bits(&mut self, bits: &[u32]) -> Result<(), String> {
        if bits.len() != self.entries.len() {
            return Err(format!(
                "cir table restore: {} entries, table needs {}",
                bits.len(),
                self.entries.len()
            ));
        }
        let mask = Cir::from_bits(0, self.width).mask();
        if let Some(b) = bits.iter().find(|&&b| b & !mask != 0) {
            return Err(format!(
                "cir table restore: pattern {b:#x} exceeds {}-bit CIR width",
                self.width
            ));
        }
        for (e, &b) in self.entries.iter_mut().zip(bits) {
            *e = Cir::from_bits(b, self.width);
        }
        Ok(())
    }

    /// Re-initializes every entry (models a context-switch flush).
    pub fn reinitialize(&mut self) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = self.init.initial_cir(self.width, i);
        }
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Cir> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a CirTable {
    type Item = &'a Cir;
    type IntoIter = std::slice::Iter<'a, Cir>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_all_entries() {
        let ct = CirTable::new(3, 16, InitPolicy::AllOnes);
        assert_eq!(ct.len(), 8);
        assert!(ct.iter().all(|c| c.value() == 0xffff));
    }

    #[test]
    fn record_updates_single_entry() {
        let mut ct = CirTable::new(3, 4, InitPolicy::AllZeros);
        ct.record(2, false);
        assert_eq!(ct.get(2).value(), 1);
        assert!(ct.get(1).is_zero());
    }

    #[test]
    fn reinitialize_restores_policy() {
        let mut ct = CirTable::new(2, 8, InitPolicy::LastBit);
        ct.record(0, true);
        ct.record(0, true);
        ct.reinitialize();
        assert_eq!(ct.get(0).value(), 0b1000_0000);
    }

    #[test]
    fn random_init_varies_across_entries() {
        let ct = CirTable::new(6, 16, InitPolicy::Random(11));
        let distinct: std::collections::BTreeSet<u32> = ct.iter().map(|c| c.value()).collect();
        assert!(distinct.len() > 32, "random init looks degenerate");
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        CirTable::new(2, 8, InitPolicy::AllOnes).get(4);
    }

    #[test]
    fn into_iterator_for_reference() {
        let ct = CirTable::new(2, 8, InitPolicy::AllOnes);
        let n = (&ct).into_iter().count();
        assert_eq!(n, 4);
    }

    #[test]
    #[should_panic(expected = "1..=28")]
    fn index_bits_validated() {
        CirTable::new(0, 8, InitPolicy::AllOnes);
    }
}
