//! # cira-core
//!
//! Branch-prediction **confidence mechanisms** — the primary contribution
//! of Jacobsen, Rotenberg & Smith, *"Assigning Confidence to Conditional
//! Branch Predictions"* (MICRO-29, 1996), reproduced in full.
//!
//! A confidence mechanism runs beside a branch predictor and partitions its
//! predictions into **high** and **low** confidence sets, concentrating as
//! many mispredictions as possible into a small low-confidence set. The
//! paper's taxonomy maps onto this crate as follows:
//!
//! | Paper | Here |
//! |---|---|
//! | Correct/Incorrect Register (CIR) | [`Cir`] |
//! | CIR Table (CT) | [`table::CirTable`] |
//! | Index functions (PC, BHR, PC⊕BHR, global CIR, concat) §3.1 | [`IndexSpec`] |
//! | One-level methods §3.1 | [`one_level::OneLevelCir`] |
//! | Two-level methods §3.2 | [`two_level::TwoLevelCir`] |
//! | Ones-count reduction §5.1 | [`one_level::MappedKey::ones_count`] + [`LowRule::OnesAtLeast`] |
//! | Saturating-counter reduction §5.1 | [`one_level::SaturatingConfidence`] |
//! | Resetting-counter reduction §5.1 | [`one_level::ResettingConfidence`] |
//! | CT initialization §5.4 | [`InitPolicy`] |
//! | Static profile method §2 | [`StaticConfidence`] |
//!
//! Beyond the paper, [`SelfConfidence`] buckets on the *predictor's own*
//! per-prediction strength (TAGE provider counters, gshare saturation) so
//! the external mechanisms above can be compared against a predictor
//! that knows its own confidence.
//!
//! ## Mechanisms vs. estimators
//!
//! A [`ConfidenceMechanism`] maintains the table state and exposes the raw
//! *key* read for each branch (a CIR pattern or a counter value). Offline
//! analyses (`cira-analysis`) aggregate keys into buckets to compute the
//! paper's cumulative-misprediction curves and *ideal* reductions; online
//! consumers wrap a mechanism in a [`ThresholdEstimator`] with a
//! [`LowRule`] to obtain the binary signal of Fig. 1.
//!
//! # Examples
//!
//! ```
//! use cira_core::one_level::ResettingConfidence;
//! use cira_core::{ConfidenceEstimator, IndexSpec, LowRule, ThresholdEstimator};
//!
//! // The paper's recommended practical design: a resetting-counter table
//! // indexed by PC xor BHR, low-confidence while the counter is below 16.
//! let mechanism = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
//! let mut estimator = ThresholdEstimator::new(mechanism, LowRule::KeyBelow(16));
//! let confidence = estimator.estimate(0x4000, 0b1010);
//! estimator.update(0x4000, 0b1010, /* prediction was correct = */ true);
//! assert!(confidence.is_low()); // cold entries start low-confidence
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod cir;
pub mod estimator;
pub mod index;
pub mod init;
pub mod multi_level;
pub mod one_level;
pub mod self_confidence;
pub mod static_profile;
pub mod table;
pub mod two_level;

pub use adaptive::AdaptiveEstimator;
pub use cir::Cir;
pub use estimator::{Confidence, ConfidenceEstimator, LowRule, ThresholdEstimator};
pub use index::{Combine, IndexInputs, IndexSource, IndexSpec, PcBhrXor};
pub use init::InitPolicy;
pub use multi_level::{ClassStats, MultiLevelEstimator};
pub use self_confidence::SelfConfidence;
pub use static_profile::StaticConfidence;

/// A confidence table plus its index function: maintains per-entry
/// correctness state and exposes the raw key read for each branch.
///
/// `read_key` must be pure (no state change); `update` records the
/// correctness of one prediction and must be called exactly once per
/// dynamic branch, after `read_key`, with the same `(pc, bhr)`.
pub trait ConfidenceMechanism {
    /// The key (CIR pattern, counter value, …) currently stored for the
    /// branch at `pc` under global history `bhr`.
    fn read_key(&self, pc: u64, bhr: u64) -> u64;

    /// Records whether the prediction for this branch was correct.
    fn update(&mut self, pc: u64, bhr: u64, correct: bool);

    /// Batched `read_key` + `update` over parallel record slices: for each
    /// `i`, writes `read_key(pcs[i], bhrs[i])` into `keys[i]` and then
    /// applies `update(pcs[i], bhrs[i], correct[i])`, in order.
    ///
    /// Overrides may share work between the two halves (e.g. compute the
    /// table slot once per record) but must remain bit-identical to this
    /// default — the batched replay kernel relies on that.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        assert!(
            pcs.len() == bhrs.len() && pcs.len() == correct.len() && pcs.len() == keys.len(),
            "observe_batch slices must have equal lengths"
        );
        for i in 0..pcs.len() {
            keys[i] = self.read_key(pcs[i], bhrs[i]);
            self.update(pcs[i], bhrs[i], correct[i]);
        }
    }

    /// Upper bound on distinct keys, when small enough to enumerate
    /// (e.g. `17` for 0..=16 counters, `2^16` for 16-bit CIRs).
    fn key_space(&self) -> Option<u64>;

    /// Short human-readable description.
    fn describe(&self) -> String;

    /// Re-initializes all table state to its configured initial values —
    /// models the context-switch flush discussed (but not studied) in
    /// §5.4. Global history is owned by the driver and is *not* affected.
    fn flush(&mut self);

    /// Appends this mechanism's **mutable** state (table entries, counters,
    /// the global CIR) to `out` using the `cira_predictor::state` byte
    /// discipline. Configuration — index spec, widths, init policy — is
    /// *not* serialized: checkpoints carry the spec string separately and
    /// rebuild the mechanism before loading state into it.
    ///
    /// Stateless mechanisms write nothing (the default).
    fn state_save(&self, _out: &mut Vec<u8>) {}

    /// Restores mutable state from bytes produced by
    /// [`state_save`](Self::state_save) on an **identically configured**
    /// instance. After a successful load the mechanism must behave
    /// bit-identically to the instance that was saved.
    ///
    /// # Errors
    ///
    /// Returns a message if the blob is truncated, oversized, or does not
    /// match this mechanism's configuration. The default accepts only an
    /// empty blob (the stateless mechanism's save output).
    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} carries no serializable state but got a {}-byte blob",
                self.describe(),
                bytes.len()
            ))
        }
    }
}

impl<M: ConfidenceMechanism + ?Sized> ConfidenceMechanism for Box<M> {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        (**self).read_key(pc, bhr)
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        (**self).update(pc, bhr, correct)
    }

    fn observe_batch(&mut self, pcs: &[u64], bhrs: &[u64], correct: &[bool], keys: &mut [u64]) {
        (**self).observe_batch(pcs, bhrs, correct, keys)
    }

    fn key_space(&self) -> Option<u64> {
        (**self).key_space()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn flush(&mut self) {
        (**self).flush()
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        (**self).state_save(out)
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).state_load(bytes)
    }
}

/// Pins a mechanism to the scalar per-record observe path.
///
/// Forwards everything *except* [`ConfidenceMechanism::observe_batch`], so
/// the trait's default `read_key`-then-`update` loop runs even when the
/// wrapped mechanism carries a batched fast path. This is the reference
/// side of the scalar-vs-vector differential tests and of the
/// `engine_throughput` kernel comparison; it is not intended for
/// production replays.
#[derive(Debug, Clone)]
pub struct ScalarObserve<M>(pub M);

impl<M: ConfidenceMechanism> ConfidenceMechanism for ScalarObserve<M> {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        self.0.read_key(pc, bhr)
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        self.0.update(pc, bhr, correct)
    }

    // observe_batch deliberately NOT forwarded: the default per-record
    // loop is the scalar reference.

    fn key_space(&self) -> Option<u64> {
        self.0.key_space()
    }

    fn describe(&self) -> String {
        self.0.describe()
    }

    fn flush(&mut self) {
        self.0.flush()
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        self.0.state_save(out)
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.0.state_load(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_level::ResettingConfidence;

    #[test]
    fn scalar_observe_matches_batched_mechanism() {
        // Same record stream through the batched fast path and through the
        // suppressed-override scalar loop: keys and final state must agree.
        let mut fast = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(6));
        let mut scalar = ScalarObserve(ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(6)));
        let n = 300;
        let pcs: Vec<u64> = (0..n as u64).map(|i| (i * 29) << 2).collect();
        let bhrs: Vec<u64> = (0..n as u64).map(|i| i * 13).collect();
        let correct: Vec<bool> = (0..n).map(|i| i % 7 != 0).collect();
        let mut keys_f = vec![0u64; n];
        let mut keys_s = vec![0u64; n];
        fast.observe_batch(&pcs, &bhrs, &correct, &mut keys_f);
        scalar.observe_batch(&pcs, &bhrs, &correct, &mut keys_s);
        assert_eq!(keys_f, keys_s);
        for (&pc, &h) in pcs.iter().zip(&bhrs).take(64) {
            assert_eq!(fast.read_key(pc, h), scalar.read_key(pc, h));
        }
    }

    #[test]
    fn boxed_mechanism_dispatches() {
        let mut m: Box<dyn ConfidenceMechanism> =
            Box::new(ResettingConfidence::paper_default(IndexSpec::pc(4)));
        assert_eq!(m.read_key(0, 0), 0);
        m.update(0, 0, true);
        assert_eq!(m.read_key(0, 0), 1);
        assert_eq!(m.key_space(), Some(17));
        assert!(!m.describe().is_empty());
        m.flush();
        assert_eq!(m.read_key(0, 0), 0, "flush restores the initial count");
    }
}
