//! Static (profile-based) confidence (§2).
//!
//! The paper's baseline: profile each static branch's misprediction rate
//! offline, sort worst-first, and tag a prefix as the low-confidence set.
//! All dynamic executions of a tagged branch are low confidence — no
//! dynamic adaptation. The profiling itself (counting per-PC executions
//! and mispredictions) lives in `cira-analysis`; this type is the runtime
//! artifact: a set of low-confidence PCs.

use std::collections::HashSet;

use crate::estimator::{Confidence, ConfidenceEstimator};

/// Profile-derived static confidence: low-confidence iff the branch PC was
/// tagged at profile time.
///
/// # Examples
///
/// ```
/// use cira_core::{Confidence, ConfidenceEstimator, StaticConfidence};
///
/// let est = StaticConfidence::from_low_pcs([0x400, 0x408]);
/// assert_eq!(est.estimate(0x400, 0), Confidence::Low);
/// assert_eq!(est.estimate(0x404, 0), Confidence::High);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticConfidence {
    low_pcs: HashSet<u64>,
}

impl StaticConfidence {
    /// Creates an estimator from the tagged low-confidence branch PCs.
    pub fn from_low_pcs<I: IntoIterator<Item = u64>>(pcs: I) -> Self {
        Self {
            low_pcs: pcs.into_iter().collect(),
        }
    }

    /// Number of tagged static branches.
    pub fn low_branch_count(&self) -> usize {
        self.low_pcs.len()
    }

    /// Whether a specific PC is tagged low-confidence.
    pub fn is_tagged(&self, pc: u64) -> bool {
        self.low_pcs.contains(&pc)
    }
}

impl ConfidenceEstimator for StaticConfidence {
    fn estimate(&self, pc: u64, _bhr: u64) -> Confidence {
        if self.low_pcs.contains(&pc) {
            Confidence::Low
        } else {
            Confidence::High
        }
    }

    fn update(&mut self, _pc: u64, _bhr: u64, _correct: bool) {}

    fn describe(&self) -> String {
        format!(
            "static profile ({} low-confidence branches)",
            self.low_pcs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_only_listed_pcs() {
        let est = StaticConfidence::from_low_pcs([8, 16]);
        assert!(est.estimate(8, 0).is_low());
        assert!(est.estimate(16, 99).is_low());
        assert!(est.estimate(12, 0).is_high());
        assert_eq!(est.low_branch_count(), 2);
        assert!(est.is_tagged(8));
        assert!(!est.is_tagged(12));
    }

    #[test]
    fn update_is_noop() {
        let mut est = StaticConfidence::from_low_pcs([8]);
        est.update(8, 0, true);
        est.update(8, 0, false);
        assert!(est.estimate(8, 0).is_low());
    }

    #[test]
    fn empty_profile_is_all_high() {
        let est = StaticConfidence::default();
        assert!(est.estimate(0, 0).is_high());
        assert_eq!(est.low_branch_count(), 0);
    }

    #[test]
    fn describe_counts_branches() {
        assert!(StaticConfidence::from_low_pcs([1, 2, 3])
            .describe()
            .contains("3 low-confidence"));
    }
}
