//! Adaptive low-confidence thresholds — relaxing the paper's fixed-logic
//! constraint.
//!
//! §1: *"to simplify the hardware design, we do not dynamically adjust the
//! criteria for determining the high and low confidence sets."* Fig. 9
//! then shows why one might want to: the low-confidence set size varies
//! considerably across programs for a fixed reduction function. This
//! module implements the natural extension — a feedback controller that
//! nudges an integer key threshold so the low-confidence set tracks a
//! target fraction of predictions, whatever the program.

use crate::estimator::{Confidence, ConfidenceEstimator};
use crate::ConfidenceMechanism;

/// A `key < threshold` estimator whose threshold adapts to hold the
/// low-confidence fraction near a target.
///
/// Every `window` predictions the controller compares the observed low
/// fraction with the target: more than `tolerance` above ⇒ tighten
/// (threshold − 1); more than `tolerance` below ⇒ loosen (threshold + 1).
/// The threshold stays in `[0, max_threshold]`.
///
/// # Examples
///
/// ```
/// use cira_core::adaptive::AdaptiveEstimator;
/// use cira_core::one_level::ResettingConfidence;
/// use cira_core::{ConfidenceEstimator, IndexSpec};
///
/// let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
/// let est = AdaptiveEstimator::new(mech, 0.2, 17, 1024);
/// assert_eq!(est.threshold(), 8); // starts mid-range
/// let _ = est.describe();
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveEstimator<M> {
    mechanism: M,
    target_low_fraction: f64,
    threshold: u64,
    max_threshold: u64,
    window: u64,
    tolerance: f64,
    seen: u64,
    low_seen: u64,
    adjustments: u64,
}

impl<M: ConfidenceMechanism> AdaptiveEstimator<M> {
    /// Creates an adaptive estimator.
    ///
    /// * `target_low_fraction` — desired share of predictions flagged low
    ///   (e.g. `0.2` for the paper's illustrative 20% budget).
    /// * `max_threshold` — upper bound for the threshold; use
    ///   `counter_max + 1` so the whole key range stays reachable.
    /// * `window` — predictions between controller steps.
    ///
    /// # Panics
    ///
    /// Panics if the target is outside `(0, 1)`, `window` is zero, or
    /// `max_threshold` is zero.
    pub fn new(mechanism: M, target_low_fraction: f64, max_threshold: u64, window: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&target_low_fraction) && target_low_fraction > 0.0,
            "target fraction must be in (0, 1)"
        );
        assert!(window > 0, "window must be positive");
        assert!(max_threshold > 0, "max_threshold must be positive");
        Self {
            mechanism,
            target_low_fraction,
            threshold: max_threshold / 2,
            max_threshold,
            window,
            tolerance: 0.02,
            seen: 0,
            low_seen: 0,
            adjustments: 0,
        }
    }

    /// The current threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The configured target low fraction.
    pub fn target_low_fraction(&self) -> f64 {
        self.target_low_fraction
    }

    /// Controller steps taken so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Borrows the underlying mechanism.
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    fn is_low(&self, pc: u64, bhr: u64) -> bool {
        self.mechanism.read_key(pc, bhr) < self.threshold
    }
}

impl<M: ConfidenceMechanism> ConfidenceEstimator for AdaptiveEstimator<M> {
    fn estimate(&self, pc: u64, bhr: u64) -> Confidence {
        if self.is_low(pc, bhr) {
            Confidence::Low
        } else {
            Confidence::High
        }
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        // Track the signal that was (or would have been) emitted for this
        // prediction, then train the table.
        if self.is_low(pc, bhr) {
            self.low_seen += 1;
        }
        self.seen += 1;
        self.mechanism.update(pc, bhr, correct);

        if self.seen >= self.window {
            let low_fraction = self.low_seen as f64 / self.seen as f64;
            if low_fraction > self.target_low_fraction + self.tolerance && self.threshold > 0 {
                self.threshold -= 1;
                self.adjustments += 1;
            } else if low_fraction < self.target_low_fraction - self.tolerance
                && self.threshold < self.max_threshold
            {
                self.threshold += 1;
                self.adjustments += 1;
            }
            self.seen = 0;
            self.low_seen = 0;
        }
    }

    fn describe(&self) -> String {
        format!(
            "adaptive(target {:.0}%, threshold {}/{}) over {}",
            100.0 * self.target_low_fraction,
            self.threshold,
            self.max_threshold,
            self.mechanism.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_level::ResettingConfidence;
    use crate::IndexSpec;

    fn mech() -> ResettingConfidence {
        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(10))
    }

    /// A deterministic pseudo-branch stream: pc cycles, correctness comes
    /// from a simple hash so ~`acc` of predictions are correct.
    fn drive(est: &mut AdaptiveEstimator<ResettingConfidence>, n: u64, acc_mod: u64) -> f64 {
        let mut low = 0u64;
        for i in 0..n {
            let pc = (i % 97) * 4;
            let bhr = i % 31;
            if est.estimate(pc, bhr).is_low() {
                low += 1;
            }
            let correct = (i * 2654435761) % acc_mod != 0;
            est.update(pc, bhr, correct);
        }
        low as f64 / n as f64
    }

    #[test]
    #[should_panic(expected = "target fraction")]
    fn rejects_zero_target() {
        AdaptiveEstimator::new(mech(), 0.0, 17, 100);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        AdaptiveEstimator::new(mech(), 0.5, 17, 0);
    }

    #[test]
    fn converges_toward_target_fraction() {
        // ~10% mispredictions: the unclamped low set at threshold 8 would
        // be far from 20%; the controller should steer it close.
        let mut est = AdaptiveEstimator::new(mech(), 0.2, 17, 500);
        drive(&mut est, 60_000, 10); // warm up and adapt
        let frac = drive(&mut est, 30_000, 10);
        assert!(
            (frac - 0.2).abs() < 0.08,
            "low fraction {frac} should approach 0.2 (threshold {})",
            est.threshold()
        );
        assert!(est.adjustments() > 0);
    }

    #[test]
    fn different_targets_give_ordered_thresholds() {
        let mut small = AdaptiveEstimator::new(mech(), 0.05, 17, 500);
        let mut large = AdaptiveEstimator::new(mech(), 0.5, 17, 500);
        drive(&mut small, 60_000, 10);
        drive(&mut large, 60_000, 10);
        assert!(
            small.threshold() < large.threshold(),
            "5% target ({}) should sit below 50% target ({})",
            small.threshold(),
            large.threshold()
        );
    }

    #[test]
    fn threshold_stays_in_bounds() {
        // Perfectly-predicted stream drives the threshold up; it must clamp.
        let mut est = AdaptiveEstimator::new(mech(), 0.9, 17, 50);
        for i in 0..20_000u64 {
            est.update((i % 13) * 4, 0, true);
        }
        assert!(est.threshold() <= 17);
        // All-mispredicted stream drives it down; it must clamp at 0.
        let mut est = AdaptiveEstimator::new(mech(), 0.01, 17, 50);
        for i in 0..20_000u64 {
            est.update((i % 13) * 4, 0, false);
        }
        assert!(est.threshold() > 0 || est.estimate(0, 0).is_high());
    }

    #[test]
    fn describe_reports_state() {
        let est = AdaptiveEstimator::new(mech(), 0.2, 17, 100);
        let d = est.describe();
        assert!(d.contains("target 20%") && d.contains("adaptive"), "{d}");
        assert_eq!(est.target_low_fraction(), 0.2);
        assert_eq!(est.mechanism().max(), 16);
    }
}
