//! Two-level dynamic confidence mechanisms (§3.2).
//!
//! A first-level CIR table is indexed like the one-level methods; the CIR
//! read from it is then combined (optionally with PC and BHR) to index a
//! second-level table whose CIR records the correctness history *of that
//! first-level pattern*. The paper simulates three representative
//! variants and finds them no better than the best one-level method
//! (Fig. 7) — a negative result this type exists to reproduce.

use crate::cir::Cir;
use crate::index::{IndexInputs, IndexSpec};
use crate::init::InitPolicy;
use crate::table::CirTable;
use crate::ConfidenceMechanism;

const GLOBAL_CIR_WIDTH: u32 = 32;

/// Two-level CIR-table confidence mechanism (Fig. 4).
///
/// # Examples
///
/// ```
/// use cira_core::two_level::TwoLevelCir;
/// use cira_core::ConfidenceMechanism;
///
/// let mut m = TwoLevelCir::variant_pcxorbhr_cir();
/// m.update(0x4000, 0b1010, true);
/// let _key = m.read_key(0x4000, 0b1010);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelCir {
    level1: CirTable,
    level2: CirTable,
    index1: IndexSpec,
    index2: IndexSpec,
    global_cir: Cir,
    label: &'static str,
}

impl TwoLevelCir {
    /// Creates a two-level mechanism.
    ///
    /// `index1` addresses the first-level table (whose entries are
    /// `l1_width`-bit CIRs); `index2` addresses the second-level table
    /// (whose entries are `l2_width`-bit CIRs) and may use the
    /// [`Cir`](crate::index::IndexSource::Cir) source to consume the
    /// first-level CIR.
    ///
    /// # Panics
    ///
    /// Panics if `index1` uses the level-one CIR source (it does not exist
    /// yet at level one), or on invalid widths.
    pub fn new(
        index1: IndexSpec,
        l1_width: u32,
        index2: IndexSpec,
        l2_width: u32,
        init: InitPolicy,
    ) -> Self {
        assert!(
            !index1.uses_cir(),
            "the first-level index cannot use the level-one CIR source"
        );
        Self {
            level1: CirTable::new(index1.bits(), l1_width, init),
            level2: CirTable::new(index2.bits(), l2_width, init),
            index1,
            index2,
            global_cir: Cir::zeroed(GLOBAL_CIR_WIDTH),
            label: "two-level",
        }
    }

    /// Paper variant 1: level 1 indexed by PC, level 2 by the CIR alone.
    pub fn variant_pc_cir() -> Self {
        let mut m = Self::new(
            IndexSpec::pc(16),
            16,
            IndexSpec::cir(16),
            16,
            InitPolicy::AllOnes,
        );
        m.label = "PC-CIR";
        m
    }

    /// Paper variant 2 (best): level 1 indexed by PC⊕BHR, level 2 by the
    /// CIR alone.
    pub fn variant_pcxorbhr_cir() -> Self {
        let mut m = Self::new(
            IndexSpec::pc_xor_bhr(16),
            16,
            IndexSpec::cir(16),
            16,
            InitPolicy::AllOnes,
        );
        m.label = "BHRxorPC-CIR";
        m
    }

    /// Paper variant 3: level 1 indexed by PC⊕BHR, level 2 by
    /// CIR⊕PC⊕BHR.
    pub fn variant_pcxorbhr_cirxorpcxorbhr() -> Self {
        let mut m = Self::new(
            IndexSpec::pc_xor_bhr(16),
            16,
            IndexSpec::cir_xor_pc_xor_bhr(16),
            16,
            InitPolicy::AllOnes,
        );
        m.label = "BHRxorPC-BHRxorCIRxorPC";
        m
    }

    /// The first-level index spec.
    pub fn index1(&self) -> &IndexSpec {
        &self.index1
    }

    /// The second-level index spec.
    pub fn index2(&self) -> &IndexSpec {
        &self.index2
    }

    /// The display label of a paper variant (or `"two-level"`).
    pub fn label(&self) -> &'static str {
        self.label
    }

    fn slots(&self, pc: u64, bhr: u64) -> (usize, usize) {
        let gc = self.global_cir.value() as u64;
        let i1 = self.index1.index(IndexInputs {
            pc,
            bhr,
            cir: 0,
            global_cir: gc,
        });
        let cir1 = self.level1.get(i1).value() as u64;
        let i2 = self.index2.index(IndexInputs {
            pc,
            bhr,
            cir: cir1,
            global_cir: gc,
        });
        (i1, i2)
    }
}

impl ConfidenceMechanism for TwoLevelCir {
    fn read_key(&self, pc: u64, bhr: u64) -> u64 {
        let (_, i2) = self.slots(pc, bhr);
        self.level2.get(i2).value() as u64
    }

    fn update(&mut self, pc: u64, bhr: u64, correct: bool) {
        // The second-level slot is computed from the *pre-update* level-one
        // CIR — the value a reader saw at prediction time.
        let (i1, i2) = self.slots(pc, bhr);
        self.level2.record(i2, correct);
        self.level1.record(i1, correct);
        self.global_cir.push(correct);
    }

    fn key_space(&self) -> Option<u64> {
        Some(1u64 << self.level2.width())
    }

    fn describe(&self) -> String {
        format!(
            "two-level [{}] L1 CIR[{}] idx {} -> L2 CIR[{}] idx {}",
            self.label,
            self.level1.width(),
            self.index1,
            self.level2.width(),
            self.index2
        )
    }

    fn flush(&mut self) {
        self.level1.reinitialize();
        self.level2.reinitialize();
        self.global_cir = Cir::zeroed(GLOBAL_CIR_WIDTH);
    }

    fn state_save(&self, out: &mut Vec<u8>) {
        cira_predictor::state::put_u32_slice(out, &self.level1.entry_bits());
        cira_predictor::state::put_u32_slice(out, &self.level2.entry_bits());
        cira_predictor::state::put_u32(out, self.global_cir.value());
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = cira_predictor::state::StateReader::new(bytes);
        let l1 = r.u32_vec()?;
        let l2 = r.u32_vec()?;
        let global = r.u32()?;
        self.level1.load_entry_bits(&l1)?;
        self.level2.load_entry_bits(&l2)?;
        self.global_cir = Cir::from_bits(global, GLOBAL_CIR_WIDTH);
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants_construct() {
        assert_eq!(TwoLevelCir::variant_pc_cir().label(), "PC-CIR");
        assert_eq!(TwoLevelCir::variant_pcxorbhr_cir().label(), "BHRxorPC-CIR");
        assert_eq!(
            TwoLevelCir::variant_pcxorbhr_cirxorpcxorbhr().label(),
            "BHRxorPC-BHRxorCIRxorPC"
        );
    }

    #[test]
    fn small_two_level_updates_both_tables() {
        let mut m = TwoLevelCir::new(
            IndexSpec::pc(4),
            4,
            IndexSpec::cir(4),
            4,
            InitPolicy::AllZeros,
        );
        // With all-zeros init, level-1 CIR starts 0 so level-2 slot 0 is
        // read. A misprediction writes both levels.
        assert_eq!(m.read_key(0x40, 0), 0);
        m.update(0x40, 0, false);
        // Level-1 CIR is now 0b0001, so reads now go to level-2 slot 1,
        // which is still untouched.
        assert_eq!(m.read_key(0x40, 0), 0);
        // But slot 0 recorded the misprediction: drive level-1 back to 0
        // by pushing four correct outcomes.
        for _ in 0..4 {
            m.update(0x40, 0, true);
        }
        // Level-1 CIR: 0b0000 again; level-2 slot 0 history: 1 then ...
        let key = m.read_key(0x40, 0);
        assert_ne!(key, 0, "slot 0 of level 2 remembered the misprediction");
    }

    #[test]
    fn update_uses_pre_update_level1_cir() {
        let mut m = TwoLevelCir::new(
            IndexSpec::pc(4),
            4,
            IndexSpec::cir(4),
            4,
            InitPolicy::AllZeros,
        );
        let before = m.read_key(0x40, 0);
        m.update(0x40, 0, false);
        // If update had used the post-update level-1 value the write would
        // land in slot 1; verify slot 0 changed instead by resetting the
        // level-1 path as in the previous test.
        for _ in 0..4 {
            m.update(0x40, 0, true);
        }
        assert_ne!(m.read_key(0x40, 0), before);
    }

    #[test]
    #[should_panic(expected = "first-level index cannot use")]
    fn level1_cir_source_rejected() {
        TwoLevelCir::new(
            IndexSpec::cir(4),
            4,
            IndexSpec::cir(4),
            4,
            InitPolicy::AllOnes,
        );
    }

    #[test]
    fn flush_restores_both_levels() {
        let mut m = TwoLevelCir::variant_pcxorbhr_cir();
        let initial = m.read_key(0x40, 0);
        // 20 correct updates: the level-1 CIR clears after 16, so the
        // level-2 zero slot is then written and reads differently.
        for _ in 0..20 {
            m.update(0x40, 0, true);
        }
        assert_ne!(m.read_key(0x40, 0), initial);
        m.flush();
        assert_eq!(m.read_key(0x40, 0), initial);
    }

    #[test]
    fn key_space_follows_l2_width() {
        let m = TwoLevelCir::new(
            IndexSpec::pc(4),
            8,
            IndexSpec::cir(8),
            6,
            InitPolicy::AllOnes,
        );
        assert_eq!(m.key_space(), Some(64));
    }

    #[test]
    fn describe_mentions_both_levels() {
        let d = TwoLevelCir::variant_pcxorbhr_cir().describe();
        assert!(d.contains("L1") && d.contains("L2"), "{d}");
    }
}
