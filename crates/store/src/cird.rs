//! `CIRD` — the versioned checkpoint codec for a parked session.
//!
//! A [`Checkpoint`] is the complete serializable state of one streaming
//! session: the spec strings that rebuild the predictor and mechanism,
//! the session counters, the branch-history register, the opaque state
//! blobs produced by the `state_save` trait hooks, and the accumulated
//! per-key bucket cells. Restoring it into a freshly-built session
//! yields statistics **bit-identical** to a never-interrupted replay —
//! the property the crash-recovery tests assert.
//!
//! The byte layout follows the same discipline as the `CIRS` wire
//! protocol and the `cira_predictor::state` hooks: everything
//! little-endian and fixed-width, strings `u16`-length-prefixed, blobs
//! `u32`-length-prefixed, the cell list `u32`-count-prefixed, and a
//! trailing FNV-1a checksum over everything before it:
//!
//! ```text
//! magic            u32   "CIRD" (LE: 0x44524943)
//! version          u32   1
//! session_id       u64
//! threshold        u64
//! last_seq         u8 flag + u32 (0 = none, value ignored)
//! batches          u64
//! low_confidence   u64
//! bhr              u64
//! branches         u64
//! mispredicts      u64
//! predictor        string        (spec, e.g. "gshare:11:11")
//! mechanism        string        (spec, e.g. "resetting")
//! index            string        (spec, e.g. "pcxorbhr:11")
//! init             string        (spec, e.g. "ones")
//! predictor_state  blob          (state_save output)
//! mechanism_state  blob          (state_save output)
//! cells            u32 count, then per cell: key u64, refs u64, miss u64
//! checksum         u64   FNV-1a over all preceding bytes
//! ```
//!
//! Cell refs/miss counts are exact `u64`s: the engine accumulates them
//! with unit weights, so the `f64` totals are integers and the
//! `f64 -> u64 -> f64` round trip is lossless.

use crate::page::fnv64;

/// Magic number: `"CIRD"` read as a little-endian u32.
pub const CIRD_MAGIC: u32 = u32::from_le_bytes(*b"CIRD");

/// Current codec version.
pub const CIRD_VERSION: u32 = 1;

/// Longest accepted spec string, mirroring the wire protocol's cap.
const MAX_STRING: usize = 4096;

/// The complete serializable state of one streaming session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Server-assigned session id (survives park/resume).
    pub session_id: u64,
    /// Predictor spec string.
    pub predictor: String,
    /// Mechanism spec string.
    pub mechanism: String,
    /// Index spec string.
    pub index: String,
    /// Init-policy spec string.
    pub init: String,
    /// Low-confidence threshold.
    pub threshold: u64,
    /// Highest applied batch sequence number, if any batch was applied.
    pub last_seq: Option<u32>,
    /// Batches applied.
    pub batches: u64,
    /// Low-confidence records observed.
    pub low_confidence: u64,
    /// Branch-history register value.
    pub bhr: u64,
    /// Branches replayed.
    pub branches: u64,
    /// Mispredictions observed.
    pub mispredicts: u64,
    /// Opaque predictor state (`state_save` output).
    pub predictor_state: Vec<u8>,
    /// Opaque mechanism state (`state_save` output).
    pub mechanism_state: Vec<u8>,
    /// Bucket cells as `(key, refs, mispredicts)`, any order.
    pub cells: Vec<(u64, u64, u64)>,
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_STRING, "spec string too long");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// A bounds-checked little-endian reader over a checkpoint image.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "checkpoint truncated: wanted {n} bytes at offset {}, {} remain",
                self.at,
                self.remaining()
            ));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        if len > MAX_STRING {
            return Err(format!("string of {len} bytes exceeds the {MAX_STRING} cap"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_owned())
    }

    fn blob(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        // Validate against the remaining bytes before allocating, so a
        // hostile length cannot force a huge allocation.
        if len > self.remaining() {
            return Err(format!(
                "blob length {len} exceeds the {} bytes remaining",
                self.remaining()
            ));
        }
        Ok(self.take(len)?.to_vec())
    }
}

impl Checkpoint {
    /// Serializes this checkpoint to its `CIRD` byte image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            128 + self.predictor_state.len() + self.mechanism_state.len() + 24 * self.cells.len(),
        );
        out.extend_from_slice(&CIRD_MAGIC.to_le_bytes());
        out.extend_from_slice(&CIRD_VERSION.to_le_bytes());
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.extend_from_slice(&self.threshold.to_le_bytes());
        out.push(u8::from(self.last_seq.is_some()));
        out.extend_from_slice(&self.last_seq.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.batches.to_le_bytes());
        out.extend_from_slice(&self.low_confidence.to_le_bytes());
        out.extend_from_slice(&self.bhr.to_le_bytes());
        out.extend_from_slice(&self.branches.to_le_bytes());
        out.extend_from_slice(&self.mispredicts.to_le_bytes());
        put_string(&mut out, &self.predictor);
        put_string(&mut out, &self.mechanism);
        put_string(&mut out, &self.index);
        put_string(&mut out, &self.init);
        put_blob(&mut out, &self.predictor_state);
        put_blob(&mut out, &self.mechanism_state);
        out.extend_from_slice(&(self.cells.len() as u32).to_le_bytes());
        for &(key, refs, miss) in &self.cells {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&refs.to_le_bytes());
            out.extend_from_slice(&miss.to_le_bytes());
        }
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a `CIRD` byte image, verifying magic, version, checksum,
    /// every length, and that no bytes trail the checksum.
    ///
    /// # Errors
    ///
    /// A message naming the first thing wrong with the image.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 8 + 8 {
            return Err(format!("checkpoint is {} bytes, too short", bytes.len()));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8"));
        let computed = fnv64(body);
        if stored != computed {
            return Err(format!(
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ));
        }
        let mut c = Cursor::new(body);
        let magic = c.u32()?;
        if magic != CIRD_MAGIC {
            return Err(format!("bad magic {magic:#010x}: not a CIRD checkpoint"));
        }
        let version = c.u32()?;
        if version != CIRD_VERSION {
            return Err(format!(
                "checkpoint version {version}, this build reads {CIRD_VERSION}"
            ));
        }
        let session_id = c.u64()?;
        let threshold = c.u64()?;
        let flag = c.u8()?;
        let seq = c.u32()?;
        if flag > 1 {
            return Err(format!("last_seq flag must be 0 or 1, got {flag}"));
        }
        let last_seq = (flag == 1).then_some(seq);
        let batches = c.u64()?;
        let low_confidence = c.u64()?;
        let bhr = c.u64()?;
        let branches = c.u64()?;
        let mispredicts = c.u64()?;
        let predictor = c.string()?;
        let mechanism = c.string()?;
        let index = c.string()?;
        let init = c.string()?;
        let predictor_state = c.blob()?;
        let mechanism_state = c.blob()?;
        let count = c.u32()? as usize;
        if count > c.remaining() / 24 {
            return Err(format!(
                "cell count {count} exceeds the {} bytes remaining",
                c.remaining()
            ));
        }
        let mut cells = Vec::with_capacity(count);
        for _ in 0..count {
            let key = c.u64()?;
            let refs = c.u64()?;
            let miss = c.u64()?;
            if miss > refs {
                return Err(format!(
                    "cell {key:#x} claims {miss} mispredicts out of {refs} refs"
                ));
            }
            cells.push((key, refs, miss));
        }
        if c.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after the cell list",
                c.remaining()
            ));
        }
        Ok(Self {
            session_id,
            predictor,
            mechanism,
            index,
            init,
            threshold,
            last_seq,
            batches,
            low_confidence,
            bhr,
            branches,
            mispredicts,
            predictor_state,
            mechanism_state,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            session_id: 17,
            predictor: "gshare:11:11".to_owned(),
            mechanism: "resetting".to_owned(),
            index: "pcxorbhr:11".to_owned(),
            init: "ones".to_owned(),
            threshold: 16,
            last_seq: Some(41),
            batches: 42,
            low_confidence: 1234,
            bhr: 0xdead_beef_cafe_f00d,
            branches: 20_000,
            mispredicts: 900,
            predictor_state: vec![1, 2, 3, 4, 5],
            mechanism_state: vec![9, 8, 7],
            cells: vec![(0, 100, 3), (7, 50, 50), (16, 9_000, 0)],
        }
    }

    #[test]
    fn round_trips() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn round_trips_empty() {
        let cp = Checkpoint::default();
        assert_eq!(cp.last_seq, None);
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "decode accepted a {len}-byte prefix of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let bytes = sample().encode();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "decode accepted a flip at byte {at}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn miss_exceeding_refs_rejected() {
        let mut cp = sample();
        cp.cells[0] = (0, 10, 11);
        // Re-encode (checksum is over the bad payload, so only the cell
        // validation can catch it).
        assert!(Checkpoint::decode(&cp.encode())
            .unwrap_err()
            .contains("mispredicts"));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = 0x7f; // version field
        // Fix up the checksum so the version check itself is exercised.
        let body_len = bytes.len() - 8;
        let sum = crate::page::fnv64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(Checkpoint::decode(&bytes).unwrap_err().contains("version"));
    }
}
