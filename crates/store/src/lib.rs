//! # cira-store
//!
//! A durable, buffer-managed session store: the disk tier beneath
//! `cira-serve`'s session park (rev 1.3 of the `CIRS` service).
//!
//! Layering, bottom up:
//!
//! * [`page`] — the 4 KiB slotted-page format: a 32-byte checksummed
//!   header (kind, payload length, chain pointer, owning token) so torn
//!   writes are detected, never half-trusted;
//! * [`mod@file`] — [`file::PageFile`], raw page I/O with a validated
//!   superblock (magic, version, page size);
//! * [`buffer`] — [`buffer::BufferManager`], a bounded pool of pinned
//!   page frames with write-back and pluggable eviction
//!   ([`buffer::ReplacementPolicy`]: clock by default, LRU available);
//! * [`store`] — [`store::SessionStore`], checkpoint blobs keyed by
//!   resume token with park metadata (session id, absolute deadline,
//!   write epoch), write-ahead-of-free durability, and open-time scan
//!   recovery;
//! * [`cird`] — [`cird::Checkpoint`], the versioned `CIRD` codec for a
//!   complete streaming-session state (specs, counters, BHR, predictor
//!   and mechanism state blobs, bucket cells), restoring which is
//!   **bit-identical** to never having stopped.
//!
//! Everything is std-only: no registry dependencies, no memory-mapped
//! I/O, no background threads. Callers own locking; `cira-serve` keeps
//! the store behind the same mutex as the hot park tier.
//!
//! # Example
//!
//! ```
//! use cira_store::cird::Checkpoint;
//! use cira_store::store::SessionStore;
//!
//! let dir = std::env::temp_dir().join(format!("cira-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("sessions.cirstore");
//! # let _ = std::fs::remove_file(&path);
//!
//! let mut store = SessionStore::open(&path, 0).unwrap();
//! let checkpoint = Checkpoint {
//!     session_id: 1,
//!     predictor: "gshare:11:11".into(),
//!     ..Checkpoint::default()
//! };
//! store.put(0xfeed, 1, 0, &checkpoint.encode()).unwrap();
//!
//! // A crash here loses nothing: put() synced before returning.
//! let mut store = SessionStore::open(&path, 0).unwrap();
//! let (_meta, blob) = store.get(0xfeed).unwrap();
//! assert_eq!(Checkpoint::decode(&blob).unwrap(), checkpoint);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod cird;
pub mod file;
pub mod page;
pub mod store;

pub use buffer::{BufferManager, ClockPolicy, LruPolicy, ReplacementPolicy};
pub use cird::Checkpoint;
pub use file::PageFile;
pub use store::{Eviction, PageScanner, ScanChunk, SessionStore, StoreError, StoreMeta};
