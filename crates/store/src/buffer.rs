//! A pinned-page buffer manager with pluggable eviction.
//!
//! The [`BufferManager`] caches a bounded number of page frames over a
//! [`PageFile`]. Pages are accessed through closures that pin the frame
//! for the duration of the call; dirty frames are written back when
//! evicted or on [`BufferManager::flush_all`]. Eviction order is chosen
//! by a [`ReplacementPolicy`] — [`ClockPolicy`] (the default: cheap,
//! scan-resistant enough for the park workload) or [`LruPolicy`]
//! (strict recency) — which only ever sees *candidate* frames; the
//! manager itself refuses to evict pinned frames, whatever the policy
//! asks for.

use std::collections::HashMap;
use std::fmt;
use std::io;

use crate::file::PageFile;
use crate::page::PAGE_SIZE;

/// Chooses which unpinned frame to evict when the pool is full.
///
/// Frame slots are dense indices `0..capacity`; the manager calls the
/// hooks as frames are (re)used so the policy can maintain its order.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// A page was loaded into `frame` (it is now the most recent).
    fn on_insert(&mut self, frame: usize);
    /// The page in `frame` was accessed.
    fn on_access(&mut self, frame: usize);
    /// Picks a victim among frames where `evictable(frame)` is true.
    /// Returns `None` only when nothing is evictable.
    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize>;
}

/// Second-chance clock eviction: a reference bit per frame and a
/// sweeping hand that clears bits until it finds a cold, evictable
/// frame.
#[derive(Debug)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// A clock over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Self {
            referenced: vec![false; capacity],
            hand: 0,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_insert(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }

    fn on_access(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }

    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
        let n = self.referenced.len();
        // Two sweeps suffice: the first clears every reference bit it
        // passes, so the second finds a cold frame if any is evictable.
        for _ in 0..2 * n {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if !evictable(f) {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return Some(f);
            }
        }
        // Everything evictable kept its bit set both sweeps — impossible
        // unless nothing is evictable.
        (0..n).find(|&f| evictable(f))
    }
}

/// Strict least-recently-used eviction via monotonic access stamps.
#[derive(Debug)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    /// An LRU order over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Self {
            stamp: vec![0; capacity],
            clock: 0,
        }
    }

    fn touch(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_insert(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn on_access(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
        (0..self.stamp.len())
            .filter(|&f| evictable(f))
            .min_by_key(|&f| self.stamp[f])
    }
}

/// One cached page.
#[derive(Debug)]
struct Frame {
    /// Page index, or `None` while the frame is empty.
    page: Option<u64>,
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
}

/// A bounded write-back page cache over a [`PageFile`].
pub struct BufferManager {
    file: PageFile,
    frames: Vec<Frame>,
    /// page index -> frame slot
    resident: HashMap<u64, usize>,
    policy: Box<dyn ReplacementPolicy>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferManager")
            .field("capacity", &self.frames.len())
            .field("resident", &self.resident.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish_non_exhaustive()
    }
}

impl BufferManager {
    /// A manager of `capacity` frames (at least 1) over `file`, with the
    /// default [`ClockPolicy`].
    pub fn new(file: PageFile, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self::with_policy(file, capacity, Box::new(ClockPolicy::new(capacity)))
    }

    /// A manager with an explicit eviction policy. The policy must be
    /// sized for the same `capacity`.
    pub fn with_policy(
        file: PageFile,
        capacity: usize,
        policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        let capacity = capacity.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: None,
                data: vec![0u8; PAGE_SIZE],
                dirty: false,
                pins: 0,
            })
            .collect();
        Self {
            file,
            frames,
            resident: HashMap::new(),
            policy,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (disk reads) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Frames evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The underlying file's page count.
    pub fn page_count(&self) -> u64 {
        self.file.page_count()
    }

    /// Appends `count` zeroed pages to the file.
    ///
    /// # Errors
    ///
    /// I/O failures extending the file.
    pub fn grow(&mut self, count: u64) -> io::Result<u64> {
        self.file.grow(count)
    }

    /// Pins `page` into a frame, loading it from disk on a miss.
    fn pin(&mut self, page: u64) -> io::Result<usize> {
        if let Some(&slot) = self.resident.get(&page) {
            self.hits += 1;
            self.policy.on_access(slot);
            self.frames[slot].pins += 1;
            return Ok(slot);
        }
        self.misses += 1;
        let slot = self.find_slot()?;
        self.file.read_page(page, &mut self.frames[slot].data)?;
        self.frames[slot].page = Some(page);
        self.frames[slot].dirty = false;
        self.frames[slot].pins = 1;
        self.resident.insert(page, slot);
        self.policy.on_insert(slot);
        Ok(slot)
    }

    fn unpin(&mut self, slot: usize) {
        debug_assert!(self.frames[slot].pins > 0, "unpin without pin");
        self.frames[slot].pins -= 1;
    }

    /// An empty frame, evicting (with write-back) if none is free.
    fn find_slot(&mut self) -> io::Result<usize> {
        if let Some(slot) = self.frames.iter().position(|f| f.page.is_none()) {
            return Ok(slot);
        }
        let frames = &self.frames;
        let victim = self
            .policy
            .pick_victim(&|f| frames[f].pins == 0)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::OutOfMemory,
                    "all buffer frames are pinned",
                )
            })?;
        debug_assert_eq!(self.frames[victim].pins, 0, "policy returned a pinned frame");
        let old = self.frames[victim].page.expect("occupied frame");
        if self.frames[victim].dirty {
            self.file.write_page(old, &self.frames[victim].data)?;
            self.frames[victim].dirty = false;
        }
        self.resident.remove(&old);
        self.frames[victim].page = None;
        self.evictions += 1;
        cira_obs::debug!("buffer frame evicted", page = old);
        Ok(victim)
    }

    /// Runs `f` over the (pinned) contents of `page`.
    ///
    /// # Errors
    ///
    /// I/O failures loading the page.
    pub fn with_page<R>(&mut self, page: u64, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let slot = self.pin(page)?;
        let r = f(&self.frames[slot].data);
        self.unpin(slot);
        Ok(r)
    }

    /// Runs `f` over the (pinned) mutable contents of `page` and marks
    /// the frame dirty.
    ///
    /// # Errors
    ///
    /// I/O failures loading the page.
    pub fn with_page_mut<R>(
        &mut self,
        page: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> io::Result<R> {
        let slot = self.pin(page)?;
        let r = f(&mut self.frames[slot].data);
        self.frames[slot].dirty = true;
        self.unpin(slot);
        Ok(r)
    }

    /// Writes back every dirty frame and syncs the file to stable
    /// storage. After this returns, everything written through the
    /// manager survives a crash.
    ///
    /// # Errors
    ///
    /// I/O failures writing back or syncing.
    pub fn flush_all(&mut self) -> io::Result<()> {
        for slot in 0..self.frames.len() {
            if self.frames[slot].dirty {
                let page = self.frames[slot].page.expect("dirty frame has a page");
                self.file.write_page(page, &self.frames[slot].data)?;
                self.frames[slot].dirty = false;
            }
        }
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFile;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cira-store-buffer-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.cirstore")
    }

    fn file_with_pages(name: &str, pages: u64) -> PageFile {
        let path = tmp(name);
        let mut pf = PageFile::create(&path).unwrap();
        pf.grow(pages).unwrap();
        pf
    }

    #[test]
    fn write_back_survives_eviction() {
        let pf = file_with_pages("writeback", 8);
        let mut bm = BufferManager::new(pf, 2);
        for page in 1..=8u64 {
            bm.with_page_mut(page, |data| data[0] = page as u8).unwrap();
        }
        // Capacity 2 with 8 pages written: evictions must have happened,
        // and every page's byte must still read back.
        assert!(bm.evictions() > 0);
        for page in 1..=8u64 {
            let b = bm.with_page(page, |data| data[0]).unwrap();
            assert_eq!(b, page as u8);
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pf = file_with_pages("counters", 4);
        let mut bm = BufferManager::new(pf, 4);
        bm.with_page(1, |_| ()).unwrap();
        bm.with_page(1, |_| ()).unwrap();
        bm.with_page(2, |_| ()).unwrap();
        assert_eq!(bm.misses(), 2);
        assert_eq!(bm.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pf = file_with_pages("lru", 4);
        let mut bm = BufferManager::with_policy(pf, 2, Box::new(LruPolicy::new(2)));
        bm.with_page_mut(1, |d| d[0] = 1).unwrap();
        bm.with_page_mut(2, |d| d[0] = 2).unwrap();
        bm.with_page(1, |_| ()).unwrap(); // page 2 is now least recent
        bm.with_page(3, |_| ()).unwrap(); // evicts page 2
        let miss_before = bm.misses();
        bm.with_page(1, |_| ()).unwrap();
        assert_eq!(bm.misses(), miss_before, "page 1 stayed resident");
        bm.with_page(2, |_| ()).unwrap();
        assert_eq!(bm.misses(), miss_before + 1, "page 2 was the victim");
    }

    #[test]
    fn clock_gives_second_chances() {
        let pf = file_with_pages("clock", 4);
        let mut bm = BufferManager::with_policy(pf, 2, Box::new(ClockPolicy::new(2)));
        bm.with_page(1, |_| ()).unwrap();
        bm.with_page(2, |_| ()).unwrap();
        bm.with_page(3, |_| ()).unwrap(); // one of 1/2 evicted
        bm.with_page(4, |_| ()).unwrap();
        assert_eq!(bm.evictions(), 2);
        assert_eq!(bm.misses(), 4);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let path = tmp("flush");
        let mut pf = PageFile::create(&path).unwrap();
        pf.grow(2).unwrap();
        let mut bm = BufferManager::new(pf, 2);
        bm.with_page_mut(1, |d| d[7] = 0x5a).unwrap();
        bm.flush_all().unwrap();
        drop(bm);
        let mut pf = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        pf.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[7], 0x5a);
        std::fs::remove_file(&path).unwrap();
    }
}
