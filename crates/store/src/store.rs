//! The durable session store: checkpoint blobs keyed by resume token.
//!
//! A [`SessionStore`] maps `u64` resume tokens to opaque checkpoint
//! blobs plus park metadata (session id, absolute expiry deadline, a
//! monotonic epoch), laid out as chains of checksummed pages in one
//! [`PageFile`] behind a [`BufferManager`]. Durability discipline:
//!
//! * [`SessionStore::put`] writes the whole new chain, then flushes and
//!   syncs **before** freeing any pages of the record it replaces — a
//!   crash at any instant leaves either the old record or the new one
//!   intact on disk, never neither.
//! * [`SessionStore::remove`] frees the chain and syncs, so a resumed
//!   session cannot resurrect with stale state after a later crash.
//! * The free list is **not** stored on disk. [`SessionStore::open`]
//!   rebuilds it — and the token index — by an authoritative scan of
//!   every page: torn or foreign pages are discarded, broken chains are
//!   dropped whole, and where two chains claim the same token (a crash
//!   between the new-chain sync and the old-chain free) the higher
//!   epoch wins.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::ops::Range;
use std::path::Path;

use crate::buffer::{BufferManager, ClockPolicy, LruPolicy, ReplacementPolicy};
use crate::file::PageFile;
use crate::page::{PageHeader, KIND_DATA, KIND_HEAD, PAGE_SIZE, PAYLOAD_PER_PAGE};

/// Bytes of record header at the front of a `HEAD` page's payload:
/// session_id u64, deadline_unix_ms u64, epoch u64, blob_len u32.
const REC_HEADER: usize = 28;

/// Blob bytes that fit in a record's head page.
const HEAD_CAPACITY: usize = PAYLOAD_PER_PAGE - REC_HEADER;

/// Park metadata stored alongside a checkpoint blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// Server-assigned session id.
    pub session_id: u64,
    /// Absolute expiry deadline, milliseconds since the Unix epoch
    /// (0 = never expires). Stored absolute because a relative TTL
    /// cannot survive a restart.
    pub deadline_unix_ms: u64,
    /// Monotonic write epoch — newer wins when a crash leaves two
    /// chains claiming one token.
    pub epoch: u64,
}

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk bytes failed validation (checksum, chain, or header).
    Corrupt(String),
    /// The write would exceed the configured byte capacity.
    Full {
        /// Bytes the write needed.
        needed: u64,
        /// The configured capacity.
        capacity: u64,
    },
    /// No record under that token.
    NotFound(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Full { needed, capacity } => write!(
                f,
                "store full: write needs {needed} bytes against a {capacity}-byte capacity"
            ),
            StoreError::NotFound(token) => write!(f, "no record for token {token:#018x}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Eviction policy selector for [`SessionStore::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Eviction {
    /// Second-chance clock (the default).
    #[default]
    Clock,
    /// Strict least-recently-used.
    Lru,
}

/// Where one record lives.
#[derive(Debug, Clone)]
struct RecordLoc {
    /// Chain pages in order, head first.
    pages: Vec<u64>,
    meta: StoreMeta,
    blob_len: u32,
}

/// A durable token -> checkpoint-blob store over one page file.
#[derive(Debug)]
pub struct SessionStore {
    buf: BufferManager,
    index: HashMap<u64, RecordLoc>,
    free: Vec<u64>,
    /// Byte capacity for live pages (0 = unlimited).
    capacity_bytes: u64,
    next_epoch: u64,
}

/// Default buffer-pool size in frames (64 pages = 256 KiB), deliberately
/// small so the store's working set, not the cache, bounds memory.
pub const DEFAULT_FRAMES: usize = 64;

/// Pages per recovery-scan job (4 MiB of file): coarse enough that a
/// job amortizes its dispatch, fine enough that a multi-GiB park file
/// still fans out over every worker.
const SCAN_RANGE_PAGES: u64 = 1024;

/// Parsed page headers from one page range of an open-time recovery
/// scan. Opaque to executors: they only ferry chunks from the scanner
/// back to [`SessionStore::open_scanned`], in any order, on any thread.
#[derive(Debug)]
pub struct ScanChunk {
    pages: Vec<(u64, Scanned)>,
    err: Option<io::Error>,
}

/// The per-range page scanner handed to an [`SessionStore::open_scanned`]
/// executor. `Sync`, so the executor may call it from many threads on
/// disjoint ranges concurrently (reads are positioned, `pread(2)`-style).
pub type PageScanner<'a> = &'a (dyn Fn(Range<u64>) -> ScanChunk + Sync + 'a);

#[derive(Debug, Clone)]
struct Scanned {
    header: PageHeader,
    /// Record header bytes, present on HEAD pages only.
    rec: Option<[u8; REC_HEADER]>,
}

impl SessionStore {
    /// Opens (or creates) the store at `path` with the default buffer
    /// pool ([`DEFAULT_FRAMES`] clock-evicted frames).
    ///
    /// # Errors
    ///
    /// I/O failures, or a superblock that is not a cira-store file.
    pub fn open(path: &Path, capacity_bytes: u64) -> Result<Self, StoreError> {
        Self::open_with(path, capacity_bytes, DEFAULT_FRAMES, Eviction::Clock)
    }

    /// Opens (or creates) the store with an explicit buffer-pool size
    /// and eviction policy, then scans every page to rebuild the token
    /// index and free list.
    ///
    /// # Errors
    ///
    /// I/O failures, or a superblock that is not a cira-store file.
    /// Page-level corruption is *not* an error: damaged chains are
    /// discarded and their salvageable pages freed.
    pub fn open_with(
        path: &Path,
        capacity_bytes: u64,
        frames: usize,
        eviction: Eviction,
    ) -> Result<Self, StoreError> {
        // Sequential executor: run every scan job inline, in order.
        Self::open_scanned(path, capacity_bytes, frames, eviction, |ranges, scan| {
            ranges.into_iter().map(scan).collect()
        })
    }

    /// Like [`SessionStore::open_with`], but the open-time recovery scan
    /// is split into page-range jobs and handed to `exec` to run —
    /// typically fanned over a worker pool. `exec` receives every range
    /// plus a thread-safe scanner and must return one [`ScanChunk`] per
    /// invocation, in any order; chunks from ranges it never scans are
    /// simply treated as unreadable (their pages land on the free list),
    /// so a conforming executor calls the scanner on **every** range.
    /// The scan only reads page headers (positioned reads, no shared
    /// cursor, buffer pool untouched); the chain walk that stitches
    /// records together stays sequential — it is index arithmetic, not
    /// I/O.
    ///
    /// # Errors
    ///
    /// I/O failures (including any surfaced inside scan jobs), or a
    /// superblock that is not a cira-store file. Page-level corruption
    /// is *not* an error: damaged chains are discarded and their
    /// salvageable pages freed.
    pub fn open_scanned<E>(
        path: &Path,
        capacity_bytes: u64,
        frames: usize,
        eviction: Eviction,
        exec: E,
    ) -> Result<Self, StoreError>
    where
        E: FnOnce(Vec<Range<u64>>, PageScanner<'_>) -> Vec<ScanChunk>,
    {
        let file = if path.exists() {
            PageFile::open(path)?
        } else {
            PageFile::create(path)?
        };
        let count = file.page_count();
        let mut ranges = Vec::new();
        let mut at = 1u64; // page 0 is the superblock
        while at < count {
            let end = (at + SCAN_RANGE_PAGES).min(count);
            ranges.push(at..end);
            at = end;
        }
        let scan = |range: Range<u64>| -> ScanChunk {
            let mut chunk = ScanChunk {
                pages: Vec::new(),
                err: None,
            };
            let mut data = vec![0u8; PAGE_SIZE];
            for idx in range {
                if let Err(e) = file.read_page_at(idx, &mut data) {
                    chunk.err = Some(e);
                    return chunk;
                }
                let Ok(header) = PageHeader::read_from(&data) else {
                    continue; // torn or foreign page: unclaimed, freed later
                };
                let rec = if header.kind == KIND_HEAD {
                    if (header.payload_len as usize) < REC_HEADER {
                        continue; // head too short to carry a record header
                    }
                    let mut rec = [0u8; REC_HEADER];
                    rec.copy_from_slice(&data[32..32 + REC_HEADER]);
                    Some(rec)
                } else {
                    None
                };
                chunk.pages.push((idx, Scanned { header, rec }));
            }
            chunk
        };
        let chunks = exec(ranges, &scan);
        let mut pages: HashMap<u64, Scanned> = HashMap::new();
        for chunk in chunks {
            if let Some(e) = chunk.err {
                return Err(StoreError::Io(e));
            }
            for (idx, s) in chunk.pages {
                pages.insert(idx, s);
            }
        }

        let frames = frames.max(1);
        let policy: Box<dyn ReplacementPolicy> = match eviction {
            Eviction::Clock => Box::new(ClockPolicy::new(frames)),
            Eviction::Lru => Box::new(LruPolicy::new(frames)),
        };
        let mut store = Self {
            buf: BufferManager::with_policy(file, frames, policy),
            index: HashMap::new(),
            free: Vec::new(),
            capacity_bytes,
            next_epoch: 1,
        };
        store.build_index(count, &pages);
        Ok(store)
    }

    /// Stitches scanned page headers into the record index and free
    /// list (the sequential tail of recovery).
    fn build_index(&mut self, count: u64, pages: &HashMap<u64, Scanned>) {
        // Walk every head's chain; only fully-valid chains survive.
        let mut records: HashMap<u64, RecordLoc> = HashMap::new();
        let mut max_epoch = 0u64;
        for (&head_idx, scanned) in pages {
            if scanned.header.kind != KIND_HEAD {
                continue;
            }
            let rec = scanned.rec.expect("heads carry a record header");
            let meta = StoreMeta {
                session_id: u64::from_le_bytes(rec[0..8].try_into().expect("8")),
                deadline_unix_ms: u64::from_le_bytes(rec[8..16].try_into().expect("8")),
                epoch: u64::from_le_bytes(rec[16..24].try_into().expect("8")),
            };
            let blob_len = u32::from_le_bytes(rec[24..28].try_into().expect("4"));
            let token = scanned.header.token;
            let mut chain = vec![head_idx];
            let mut seen: HashSet<u64> = chain.iter().copied().collect();
            let mut got = scanned.header.payload_len as usize - REC_HEADER;
            let mut next = scanned.header.next;
            let mut ok = true;
            while next != 0 {
                let Some(p) = pages.get(&next) else {
                    ok = false; // torn or missing continuation
                    break;
                };
                if p.header.kind != KIND_DATA || p.header.token != token || !seen.insert(next) {
                    ok = false;
                    break;
                }
                got += p.header.payload_len as usize;
                chain.push(next);
                next = p.header.next;
            }
            if !ok || got != blob_len as usize {
                cira_obs::debug!("store: discarding broken chain", token = token);
                continue;
            }
            max_epoch = max_epoch.max(meta.epoch);
            let loc = RecordLoc {
                pages: chain,
                meta,
                blob_len,
            };
            match records.get(&token) {
                // A crash between syncing the new chain and freeing the
                // old one leaves both; the higher epoch is the truth.
                Some(existing)
                    if (existing.meta.epoch, existing.pages[0]) >= (meta.epoch, head_idx) => {}
                _ => {
                    records.insert(token, loc);
                }
            }
        }
        // Free list: every page not claimed by a surviving chain.
        let live: HashSet<u64> = records.values().flat_map(|r| r.pages.iter().copied()).collect();
        self.free = (1..count).filter(|idx| !live.contains(idx)).collect();
        self.index = records;
        self.next_epoch = max_epoch + 1;
        cira_obs::debug!(
            "store opened",
            records = self.index.len(),
            free_pages = self.free.len()
        );
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes consumed by live record pages.
    pub fn bytes_used(&self) -> u64 {
        let pages: usize = self.index.values().map(|r| r.pages.len()).sum();
        pages as u64 * PAGE_SIZE as u64
    }

    /// The configured capacity in bytes (0 = unlimited).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Buffer-pool page hits.
    pub fn page_hits(&self) -> u64 {
        self.buf.hits()
    }

    /// Buffer-pool page misses (disk reads).
    pub fn page_misses(&self) -> u64 {
        self.buf.misses()
    }

    /// Buffer-pool evictions.
    pub fn page_evictions(&self) -> u64 {
        self.buf.evictions()
    }

    /// Every live record's token and metadata, in no particular order.
    pub fn entries(&self) -> Vec<(u64, StoreMeta)> {
        self.index.iter().map(|(&t, r)| (t, r.meta)).collect()
    }

    /// The metadata for `token`, if present.
    pub fn meta(&self, token: u64) -> Option<StoreMeta> {
        self.index.get(&token).map(|r| r.meta)
    }

    /// How many chain pages a `blob_len`-byte record needs.
    fn pages_for(blob_len: usize) -> u64 {
        let tail = blob_len.saturating_sub(HEAD_CAPACITY);
        1 + tail.div_ceil(PAYLOAD_PER_PAGE) as u64
    }

    /// Stores `blob` under `token`, replacing any existing record, and
    /// syncs before returning. On return the record survives `kill -9`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Full`] when the write would push live bytes past
    /// the capacity (the existing record under `token`, which the write
    /// replaces, does not count against it); I/O failures otherwise.
    pub fn put(
        &mut self,
        token: u64,
        session_id: u64,
        deadline_unix_ms: u64,
        blob: &[u8],
    ) -> Result<(), StoreError> {
        let new_pages = Self::pages_for(blob.len());
        if self.capacity_bytes > 0 {
            let replaced: u64 = self
                .index
                .get(&token)
                .map_or(0, |r| r.pages.len() as u64);
            let projected = self.bytes_used() - replaced * PAGE_SIZE as u64
                + new_pages * PAGE_SIZE as u64;
            if projected > self.capacity_bytes {
                return Err(StoreError::Full {
                    needed: projected,
                    capacity: self.capacity_bytes,
                });
            }
        }
        let meta = StoreMeta {
            session_id,
            deadline_unix_ms,
            epoch: self.next_epoch,
        };
        self.next_epoch += 1;

        // Allocate the chain: free pages first, then grow.
        let mut chain = Vec::with_capacity(new_pages as usize);
        while (chain.len() as u64) < new_pages {
            match self.free.pop() {
                Some(p) => chain.push(p),
                None => {
                    let remaining = new_pages - chain.len() as u64;
                    let first = self.buf.grow(remaining)?;
                    chain.extend(first..first + remaining);
                }
            }
        }

        // Write head then data pages; `next` pointers are known upfront.
        let mut rec = [0u8; REC_HEADER];
        rec[0..8].copy_from_slice(&meta.session_id.to_le_bytes());
        rec[8..16].copy_from_slice(&meta.deadline_unix_ms.to_le_bytes());
        rec[16..24].copy_from_slice(&meta.epoch.to_le_bytes());
        rec[24..28].copy_from_slice(&(blob.len() as u32).to_le_bytes());
        let head_take = blob.len().min(HEAD_CAPACITY);
        let mut payload = Vec::with_capacity(PAYLOAD_PER_PAGE);
        payload.extend_from_slice(&rec);
        payload.extend_from_slice(&blob[..head_take]);
        let header = PageHeader {
            kind: KIND_HEAD,
            payload_len: payload.len() as u32,
            next: chain.get(1).copied().unwrap_or(0),
            token,
        };
        self.buf
            .with_page_mut(chain[0], |page| header.write_into(&payload, page))?;
        let mut at = head_take;
        for (i, &page_idx) in chain.iter().enumerate().skip(1) {
            let take = (blob.len() - at).min(PAYLOAD_PER_PAGE);
            let header = PageHeader {
                kind: KIND_DATA,
                payload_len: take as u32,
                next: chain.get(i + 1).copied().unwrap_or(0),
                token,
            };
            self.buf
                .with_page_mut(page_idx, |page| header.write_into(&blob[at..at + take], page))?;
            at += take;
        }
        debug_assert_eq!(at, blob.len());

        // Durability point: the new chain reaches disk before the old
        // chain is touched. A crash on either side of this line leaves
        // exactly one valid record for the token (epoch breaks the tie).
        self.buf.flush_all()?;

        let old = self.index.insert(
            token,
            RecordLoc {
                pages: chain,
                meta,
                blob_len: blob.len() as u32,
            },
        );
        if let Some(old) = old {
            self.free_chain(&old.pages)?;
        }
        Ok(())
    }

    /// Loads the record under `token`, verifying every page checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown tokens;
    /// [`StoreError::Corrupt`] when a page fails validation (bytes rotted
    /// since open); I/O failures otherwise.
    pub fn get(&mut self, token: u64) -> Result<(StoreMeta, Vec<u8>), StoreError> {
        let loc = self
            .index
            .get(&token)
            .cloned()
            .ok_or(StoreError::NotFound(token))?;
        let mut blob = Vec::with_capacity(loc.blob_len as usize);
        for (i, &page_idx) in loc.pages.iter().enumerate() {
            let piece = self
                .buf
                .with_page(page_idx, |data| -> Result<Vec<u8>, String> {
                    let header = PageHeader::read_from(data)?;
                    if header.token != token {
                        return Err(format!(
                            "page {page_idx} belongs to token {:#018x}",
                            header.token
                        ));
                    }
                    let skip = if i == 0 { REC_HEADER } else { 0 };
                    Ok(data[32 + skip..32 + header.payload_len as usize].to_vec())
                })?
                .map_err(StoreError::Corrupt)?;
            blob.extend_from_slice(&piece);
        }
        if blob.len() != loc.blob_len as usize {
            return Err(StoreError::Corrupt(format!(
                "chain for token {token:#018x} reassembled {} bytes, expected {}",
                blob.len(),
                loc.blob_len
            )));
        }
        Ok((loc.meta, blob))
    }

    /// Removes the record under `token` and syncs, so it cannot
    /// resurrect after a crash.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown tokens; I/O failures.
    pub fn remove(&mut self, token: u64) -> Result<StoreMeta, StoreError> {
        let loc = self.index.remove(&token).ok_or(StoreError::NotFound(token))?;
        self.free_chain(&loc.pages)?;
        self.buf.flush_all()?;
        Ok(loc.meta)
    }

    /// Marks every page of a dead chain `FREE` and returns it to the
    /// free list. Not synced here — a crash before these writes land is
    /// resolved by the epoch rule at the next open.
    fn free_chain(&mut self, chain: &[u64]) -> Result<(), StoreError> {
        for &page_idx in chain {
            self.buf
                .with_page_mut(page_idx, |page| PageHeader::free().write_into(&[], page))?;
            self.free.push(page_idx);
        }
        Ok(())
    }

    /// Flushes and syncs any buffered writes.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.buf.flush_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cira-store-store-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sessions.cirstore")
    }

    fn blob(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31) ^ seed).collect()
    }

    #[test]
    fn put_get_round_trip_small_and_multi_page() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path, 0).unwrap();
        let small = blob(100, 1);
        let large = blob(PAYLOAD_PER_PAGE * 3 + 17, 2);
        store.put(1, 10, 1000, &small).unwrap();
        store.put(2, 20, 2000, &large).unwrap();
        let (m1, b1) = store.get(1).unwrap();
        assert_eq!((m1.session_id, m1.deadline_unix_ms), (10, 1000));
        assert_eq!(b1, small);
        let (m2, b2) = store.get(2).unwrap();
        assert_eq!(m2.session_id, 20);
        assert_eq!(b2, large);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_survive_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        let big = blob(10_000, 3);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(77, 7, 123_456, &big).unwrap();
        } // dropped without any explicit close: put already synced
        let mut store = SessionStore::open(&path, 0).unwrap();
        assert_eq!(store.len(), 1);
        let (meta, back) = store.get(77).unwrap();
        assert_eq!(meta.session_id, 7);
        assert_eq!(meta.deadline_unix_ms, 123_456);
        assert_eq!(back, big);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replace_keeps_latest_and_reuses_pages() {
        let path = tmp("replace");
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path, 0).unwrap();
        store.put(5, 1, 0, &blob(9_000, 1)).unwrap();
        // The first replacement grows the file: the new chain must be on
        // disk before the old one is freed. The next replacement then
        // fits entirely in the freed pages.
        store.put(5, 1, 0, &blob(9_000, 5)).unwrap();
        let pages_after_second = store.buf.page_count();
        store.put(5, 1, 0, &blob(9_000, 9)).unwrap();
        assert_eq!(
            store.buf.page_count(),
            pages_after_second,
            "steady-state replacement reuses freed pages instead of growing"
        );
        let (_, back) = store.get(5).unwrap();
        assert_eq!(back, blob(9_000, 9));
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn remove_is_durable() {
        let path = tmp("remove");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(9, 1, 0, &blob(500, 4)).unwrap();
            store.remove(9).unwrap();
            assert!(matches!(store.get(9), Err(StoreError::NotFound(_))));
        }
        let store = SessionStore::open(&path, 0).unwrap();
        assert!(store.is_empty(), "removed record must not resurrect");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn capacity_is_enforced() {
        let path = tmp("capacity");
        let _ = std::fs::remove_file(&path);
        // Two pages of capacity: one single-page record fits, a second
        // does not.
        let mut store = SessionStore::open(&path, 2 * PAGE_SIZE as u64).unwrap();
        store.put(1, 1, 0, &blob(100, 1)).unwrap();
        store.put(2, 2, 0, &blob(100, 2)).unwrap();
        let err = store.put(3, 3, 0, &blob(100, 3)).unwrap_err();
        assert!(matches!(err, StoreError::Full { .. }), "{err}");
        // Replacing an existing record within capacity still works.
        store.put(2, 2, 0, &blob(200, 9)).unwrap();
        // And removing one frees capacity.
        store.remove(1).unwrap();
        store.put(3, 3, 0, &blob(100, 3)).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_page_discards_only_its_chain() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let good = blob(200, 1);
        let doomed = blob(PAYLOAD_PER_PAGE * 2, 2);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(1, 1, 0, &good).unwrap();
            store.put(2, 2, 0, &doomed).unwrap();
        }
        // Corrupt one payload byte of the second record's head page.
        // (Token 2's chain starts at page 2: page 1 went to token 1.)
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = 2 * PAGE_SIZE + 32 + REC_HEADER + 3;
        bytes[victim] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let mut store = SessionStore::open(&path, 0).unwrap();
        assert_eq!(store.len(), 1, "only the undamaged record survives");
        assert_eq!(store.get(1).unwrap().1, good);
        assert!(matches!(store.get(2), Err(StoreError::NotFound(_))));
        // The dead chain's pages are reusable.
        store.put(3, 3, 0, &doomed).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_chain_is_discarded() {
        let path = tmp("chain");
        let _ = std::fs::remove_file(&path);
        let long = blob(PAYLOAD_PER_PAGE * 3, 5);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(4, 4, 0, &long).unwrap();
        }
        // Zero a continuation page wholesale (simulates a torn write).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2 * PAGE_SIZE..3 * PAGE_SIZE].fill(0xcc);
        std::fs::write(&path, &bytes).unwrap();
        let store = SessionStore::open(&path, 0).unwrap();
        assert!(store.is_empty(), "a chain with a torn page is dropped whole");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_tokens_resolve_by_epoch() {
        let path = tmp("epoch");
        let _ = std::fs::remove_file(&path);
        let old = blob(100, 1);
        let new = blob(100, 2);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(6, 6, 0, &old).unwrap();
        }
        // Capture the old record's page image, write the replacement,
        // then splice the old image back in as if the free never landed.
        let before = std::fs::read(&path).unwrap();
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(6, 6, 0, &new).unwrap();
        }
        let mut after = std::fs::read(&path).unwrap();
        // Page 1 held the old epoch-1 chain; the new chain reused it
        // after the free. Re-plant the old image on a fresh page so both
        // chains coexist (old epoch on page count, new epoch wherever it
        // landed).
        after.extend_from_slice(&before[PAGE_SIZE..2 * PAGE_SIZE]);
        std::fs::write(&path, &after).unwrap();

        let mut store = SessionStore::open(&path, 0).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(6).unwrap().1, new, "higher epoch wins");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn page_cache_counters_move() {
        let path = tmp("cache");
        let _ = std::fs::remove_file(&path);
        let mut store =
            SessionStore::open_with(&path, 0, 4, Eviction::Lru).unwrap();
        for t in 0..16u64 {
            store.put(t, t, 0, &blob(PAYLOAD_PER_PAGE * 2, t as u8)).unwrap();
        }
        for t in 0..16u64 {
            store.get(t).unwrap();
        }
        assert!(store.page_misses() > 0, "cold reads miss");
        assert!(store.page_evictions() > 0, "a 4-frame pool must evict");
        store.get(15).unwrap();
        assert!(store.page_hits() > 0, "re-reads hit");
        std::fs::remove_file(&path).unwrap();
    }

    /// A deliberately hostile executor: scans ranges on four threads and
    /// returns the chunks reversed, exercising the "any order, any
    /// thread" contract.
    fn threaded_exec(
        ranges: Vec<std::ops::Range<u64>>,
        scan: PageScanner<'_>,
    ) -> Vec<ScanChunk> {
        let mut chunks: Vec<(usize, ScanChunk)> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .enumerate()
                .map(|(i, r)| s.spawn(move || (i, scan(r))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        chunks.reverse();
        chunks.into_iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let path = tmp("parscan");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            for t in 0..24u64 {
                let len = 64 + (t as usize % 5) * PAYLOAD_PER_PAGE;
                store.put(t, t * 10, t * 1000, &blob(len, t as u8)).unwrap();
            }
            store.remove(7).unwrap();
            store.remove(13).unwrap();
        }
        // Corrupt one record so the parallel path also agrees on
        // discarded chains (token 0's single page is page 1).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 40] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let mut seq = SessionStore::open(&path, 0).unwrap();
        let mut par =
            SessionStore::open_scanned(&path, 0, DEFAULT_FRAMES, Eviction::Clock, threaded_exec)
                .unwrap();
        assert_eq!(par.len(), seq.len());
        assert_eq!(par.bytes_used(), seq.bytes_used());
        let mut a = seq.entries();
        let mut b = par.entries();
        a.sort_by_key(|(t, _)| *t);
        b.sort_by_key(|(t, _)| *t);
        assert_eq!(a, b, "index metadata must not depend on scan order");
        for (t, _) in a {
            let (ma, ba) = seq.get(t).unwrap();
            let (mb, bb) = par.get(t).unwrap();
            assert_eq!(ma, mb);
            assert_eq!(ba, bb, "record bytes must not depend on scan order");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scanned_open_reuses_free_pages_like_sequential() {
        let path = tmp("parscan-free");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SessionStore::open(&path, 0).unwrap();
            store.put(1, 1, 0, &blob(PAYLOAD_PER_PAGE * 2, 1)).unwrap();
            store.remove(1).unwrap();
        }
        let mut store =
            SessionStore::open_scanned(&path, 0, DEFAULT_FRAMES, Eviction::Clock, threaded_exec)
                .unwrap();
        let pages_before = store.buf.page_count();
        store.put(2, 2, 0, &blob(PAYLOAD_PER_PAGE * 2, 2)).unwrap();
        assert_eq!(
            store.buf.page_count(),
            pages_before,
            "freed pages found by the parallel scan are reused, not regrown"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entries_and_meta_report_deadlines() {
        let path = tmp("entries");
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path, 0).unwrap();
        store.put(1, 11, 5_000, &blob(10, 0)).unwrap();
        store.put(2, 22, 9_000, &blob(10, 1)).unwrap();
        let mut entries = store.entries();
        entries.sort_by_key(|(t, _)| *t);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.session_id, 11);
        assert_eq!(entries[1].1.deadline_unix_ms, 9_000);
        assert_eq!(store.meta(2).unwrap().deadline_unix_ms, 9_000);
        assert!(store.meta(3).is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
