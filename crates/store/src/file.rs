//! The page file: raw page I/O beneath the buffer manager.
//!
//! A [`PageFile`] is a flat array of [`crate::page::PAGE_SIZE`]
//! pages addressed by index. Page 0 is the **superblock**:
//!
//! ```text
//! offset  size  field
//!      0     8  magic      ("CIRSTOR1")
//!      8     4  version    (LE u32, currently 1)
//!     12     4  page_size  (LE u32, currently 4096)
//!     16     8  checksum   (LE u64 FNV-1a over bytes 0..16)
//! ```
//!
//! The superblock is written once at creation and validated on every
//! open, so a foreign or truncated file is rejected before any record
//! is trusted. The file grows by whole pages and never shrinks; space
//! from deleted records is reused through the in-memory free list that
//! [`crate::store::SessionStore`] rebuilds on open.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use cira_obs::trace::{self, Stage};

use crate::page::{fnv64, PAGE_SIZE};

/// A flight-recorder span for one page-I/O call, or `None` while the
/// recorder is disabled. The span inherits the ambient trace context
/// (set by the shard driving the park/resume), and the aux word carries
/// the page index so dumps show *which* page a slow I/O touched.
fn io_span(stage: Stage) -> Option<trace::Span> {
    trace::enabled().then(|| trace::Span::begin_ctx(stage))
}

const MAGIC: &[u8; 8] = b"CIRSTOR1";
const VERSION: u32 = 1;

/// Raw page-granular file I/O with a validated superblock.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    pages: u64,
}

impl PageFile {
    /// Creates a fresh page file at `path` (truncating any existing
    /// file) with just the superblock, synced to disk.
    ///
    /// # Errors
    ///
    /// I/O failures creating or writing the file.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut sb = vec![0u8; PAGE_SIZE];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..12].copy_from_slice(&VERSION.to_le_bytes());
        sb[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        let sum = fnv64(&sb[..16]);
        sb[16..24].copy_from_slice(&sum.to_le_bytes());
        file.write_all(&sb)?;
        file.sync_all()?;
        Ok(Self { file, pages: 1 })
    }

    /// Opens an existing page file, validating the superblock and that
    /// the file length is a whole number of pages.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the superblock magic,
    /// version, page size, or checksum is wrong, or the file is
    /// truncated mid-page; plain I/O errors otherwise.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let invalid = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
        if len < PAGE_SIZE as u64 {
            return Err(invalid(format!("file is {len} bytes, smaller than one page")));
        }
        if len % PAGE_SIZE as u64 != 0 {
            return Err(invalid(format!(
                "file length {len} is not a multiple of the {PAGE_SIZE}-byte page size"
            )));
        }
        let mut sb = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut sb)?;
        if &sb[..8] != MAGIC {
            return Err(invalid("bad magic: not a cira-store page file".to_owned()));
        }
        let version = u32::from_le_bytes(sb[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(invalid(format!(
                "store format version {version}, this build reads {VERSION}"
            )));
        }
        let page_size = u32::from_le_bytes(sb[12..16].try_into().expect("4 bytes"));
        if page_size as usize != PAGE_SIZE {
            return Err(invalid(format!(
                "store page size {page_size}, this build uses {PAGE_SIZE}"
            )));
        }
        let stored = u64::from_le_bytes(sb[16..24].try_into().expect("8 bytes"));
        let computed = fnv64(&sb[..16]);
        if stored != computed {
            return Err(invalid("superblock checksum mismatch".to_owned()));
        }
        Ok(Self {
            file,
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Number of pages in the file, superblock included.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Reads page `index` into `buf` (`PAGE_SIZE` bytes).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when `index` is out of range;
    /// I/O failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one page.
    pub fn read_page(&mut self, index: u64, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if index >= self.pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {index} out of range ({} pages)", self.pages),
            ));
        }
        let span = io_span(Stage::PageRead);
        self.file.seek(SeekFrom::Start(index * PAGE_SIZE as u64))?;
        let r = self.file.read_exact(buf);
        if let Some(span) = span {
            span.end_with(index);
        }
        r
    }

    /// Reads page `index` into `buf` through a positioned read
    /// (`pread(2)`), leaving the shared file cursor untouched. Because
    /// it takes `&self`, many threads can scan disjoint pages of one
    /// file concurrently — this is what the parallel open-time recovery
    /// scan fans out over.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when `index` is out of range;
    /// I/O failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one page.
    pub fn read_page_at(&self, index: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt as _;
        assert_eq!(buf.len(), PAGE_SIZE);
        if index >= self.pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {index} out of range ({} pages)", self.pages),
            ));
        }
        let span = io_span(Stage::PageRead);
        let r = self.file.read_exact_at(buf, index * PAGE_SIZE as u64);
        if let Some(span) = span {
            span.end_with(index);
        }
        r
    }

    /// Writes page `index` from `buf` (`PAGE_SIZE` bytes). The page must
    /// already exist — use [`PageFile::grow`] to extend the file.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when `index` is out of range;
    /// I/O failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one page.
    pub fn write_page(&mut self, index: u64, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if index >= self.pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {index} out of range ({} pages)", self.pages),
            ));
        }
        let span = io_span(Stage::PageWrite);
        self.file.seek(SeekFrom::Start(index * PAGE_SIZE as u64))?;
        let r = self.file.write_all(buf);
        if let Some(span) = span {
            span.end_with(index);
        }
        r
    }

    /// Appends `count` zeroed pages, returning the index of the first.
    ///
    /// # Errors
    ///
    /// I/O failures extending the file.
    pub fn grow(&mut self, count: u64) -> io::Result<u64> {
        let first = self.pages;
        self.file
            .set_len((self.pages + count) * PAGE_SIZE as u64)?;
        self.pages += count;
        Ok(first)
    }

    /// Flushes file data and metadata to stable storage.
    ///
    /// # Errors
    ///
    /// I/O failures syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        let span = io_span(Stage::Fsync);
        let r = self.file.sync_all();
        if let Some(span) = span {
            span.end_with(self.pages);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageHeader, KIND_DATA};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cira-store-file-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.cirstore")
    }

    #[test]
    fn create_open_round_trip() {
        let path = tmp("roundtrip");
        let mut pf = PageFile::create(&path).unwrap();
        assert_eq!(pf.page_count(), 1);
        let first = pf.grow(2).unwrap();
        assert_eq!(first, 1);
        let mut page = vec![0u8; PAGE_SIZE];
        PageHeader {
            kind: KIND_DATA,
            payload_len: 4,
            next: 0,
            token: 42,
        }
        .write_into(b"data", &mut page);
        pf.write_page(1, &page).unwrap();
        pf.sync().unwrap();
        drop(pf);

        let mut pf = PageFile::open(&path).unwrap();
        assert_eq!(pf.page_count(), 3);
        let mut back = vec![0u8; PAGE_SIZE];
        pf.read_page(1, &mut back).unwrap();
        assert_eq!(back, page);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_pages_rejected() {
        let path = tmp("range");
        let mut pf = PageFile::create(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(pf.read_page(1, &mut buf).is_err());
        assert!(pf.read_page_at(1, &mut buf).is_err());
        assert!(pf.write_page(9, &buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn positioned_reads_match_cursor_reads_concurrently() {
        let path = tmp("pread");
        let mut pf = PageFile::create(&path).unwrap();
        pf.grow(8).unwrap();
        let mut images = Vec::new();
        for i in 1..9u64 {
            let mut page = vec![0u8; PAGE_SIZE];
            PageHeader {
                kind: KIND_DATA,
                payload_len: 1,
                next: 0,
                token: i,
            }
            .write_into(&[i as u8], &mut page);
            pf.write_page(i, &page).unwrap();
            images.push(page);
        }
        // Shared-reference reads from several threads at once.
        std::thread::scope(|s| {
            let pf = &pf;
            let images = &images;
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    for i in 0..8u64 {
                        let idx = (i + t) % 8;
                        pf.read_page_at(idx + 1, &mut buf).unwrap();
                        assert_eq!(buf, images[idx as usize]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_rejected() {
        let path = tmp("foreign");
        std::fs::write(&path, vec![0xabu8; PAGE_SIZE]).unwrap();
        let err = PageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        {
            PageFile::create(&path).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..PAGE_SIZE / 2]).unwrap();
        assert!(PageFile::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_superblock_rejected() {
        let path = tmp("superblock");
        {
            PageFile::create(&path).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xff; // corrupt the version field
        std::fs::write(&path, &bytes).unwrap();
        let err = PageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
