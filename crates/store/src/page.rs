//! The on-disk page format: fixed-size slotted pages with checksummed
//! headers.
//!
//! Every page in a store file is exactly [`PAGE_SIZE`] bytes. Page 0 is
//! the superblock (see [`crate::file`]); every other page carries a
//! 32-byte header followed by up to [`PAYLOAD_PER_PAGE`] payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     1  kind        (0 = FREE, 1 = HEAD, 2 = DATA)
//!      1     3  (zero padding)
//!      4     4  payload_len (LE u32, <= PAYLOAD_PER_PAGE)
//!      8     8  next        (LE u64 page index of the chain's next page;
//!                            0 = end of chain — page 0 can never be data)
//!     16     8  token       (LE u64 owning record token)
//!     24     8  checksum    (LE u64 FNV-1a over the header with this
//!                            field zeroed, then the payload bytes)
//! ```
//!
//! A record is a chain of pages: one `HEAD` page (whose payload begins
//! with the record header, [`crate::store`]) followed by zero or more
//! `DATA` pages linked through `next`. The checksum covers exactly the
//! bytes a reader consumes, so a torn write — a crash mid-page — is
//! detected on the next open and the whole chain is discarded rather
//! than half-restored.

/// Size of every page, superblock included.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of header at the front of every non-superblock page.
pub const PAGE_HEADER: usize = 32;

/// Payload capacity of one page.
pub const PAYLOAD_PER_PAGE: usize = PAGE_SIZE - PAGE_HEADER;

/// Page kinds.
pub const KIND_FREE: u8 = 0;
/// First page of a record chain; payload starts with the record header.
pub const KIND_HEAD: u8 = 1;
/// Continuation page of a record chain.
pub const KIND_DATA: u8 = 2;

/// FNV-1a 64-bit hash — the page and checkpoint checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded page header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// One of [`KIND_FREE`], [`KIND_HEAD`], [`KIND_DATA`].
    pub kind: u8,
    /// Number of meaningful payload bytes.
    pub payload_len: u32,
    /// Next page in the record chain (0 terminates).
    pub next: u64,
    /// Token of the owning record (0 for free pages).
    pub token: u64,
}

impl PageHeader {
    /// A freshly-freed page's header.
    pub fn free() -> Self {
        Self {
            kind: KIND_FREE,
            payload_len: 0,
            next: 0,
            token: 0,
        }
    }

    /// Writes this header (checksum included) and the payload into a
    /// [`PAGE_SIZE`] buffer. Bytes past the payload are zeroed so page
    /// images are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`PAYLOAD_PER_PAGE`] or disagrees
    /// with `payload_len`.
    pub fn write_into(&self, payload: &[u8], page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "page buffer must be PAGE_SIZE");
        assert!(payload.len() <= PAYLOAD_PER_PAGE, "payload too large");
        assert_eq!(payload.len(), self.payload_len as usize);
        page.fill(0);
        page[0] = self.kind;
        page[4..8].copy_from_slice(&self.payload_len.to_le_bytes());
        page[8..16].copy_from_slice(&self.next.to_le_bytes());
        page[16..24].copy_from_slice(&self.token.to_le_bytes());
        page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
        let sum = page_checksum(page, payload.len());
        page[24..32].copy_from_slice(&sum.to_le_bytes());
    }

    /// Decodes and verifies a page image. Returns the header; the payload
    /// is `page[PAGE_HEADER..PAGE_HEADER + payload_len]`.
    ///
    /// # Errors
    ///
    /// Returns a message when the kind byte, padding, payload length, or
    /// checksum is invalid — any of which marks the page as torn or
    /// foreign, and the caller discards the chain it belongs to.
    pub fn read_from(page: &[u8]) -> Result<Self, String> {
        if page.len() != PAGE_SIZE {
            return Err(format!("page image is {} bytes, not {PAGE_SIZE}", page.len()));
        }
        let kind = page[0];
        if kind > KIND_DATA {
            return Err(format!("unknown page kind {kind}"));
        }
        if page[1..4] != [0, 0, 0] {
            return Err("nonzero header padding".to_owned());
        }
        let payload_len = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes"));
        if payload_len as usize > PAYLOAD_PER_PAGE {
            return Err(format!("payload_len {payload_len} exceeds page capacity"));
        }
        let next = u64::from_le_bytes(page[8..16].try_into().expect("8 bytes"));
        let token = u64::from_le_bytes(page[16..24].try_into().expect("8 bytes"));
        let stored = u64::from_le_bytes(page[24..32].try_into().expect("8 bytes"));
        let computed = page_checksum(page, payload_len as usize);
        if stored != computed {
            return Err(format!(
                "page checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ));
        }
        Ok(Self {
            kind,
            payload_len,
            next,
            token,
        })
    }
}

/// The checksum of a page image: FNV-1a over the header with the
/// checksum field zeroed, then the first `payload_len` payload bytes.
fn page_checksum(page: &[u8], payload_len: usize) -> u64 {
    let mut scratch = [0u8; PAGE_HEADER];
    scratch.copy_from_slice(&page[..PAGE_HEADER]);
    scratch[24..32].fill(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in scratch
        .iter()
        .chain(&page[PAGE_HEADER..PAGE_HEADER + payload_len])
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = PageHeader {
            kind: KIND_HEAD,
            payload_len: 5,
            next: 7,
            token: 0xdead_beef,
        };
        let mut page = vec![0u8; PAGE_SIZE];
        h.write_into(b"hello", &mut page);
        assert_eq!(PageHeader::read_from(&page).unwrap(), h);
    }

    #[test]
    fn free_page_round_trips() {
        let mut page = vec![0u8; PAGE_SIZE];
        PageHeader::free().write_into(&[], &mut page);
        let h = PageHeader::read_from(&page).unwrap();
        assert_eq!(h.kind, KIND_FREE);
        assert_eq!(h.payload_len, 0);
    }

    #[test]
    fn corrupt_payload_detected() {
        let h = PageHeader {
            kind: KIND_DATA,
            payload_len: 3,
            next: 0,
            token: 1,
        };
        let mut page = vec![0u8; PAGE_SIZE];
        h.write_into(b"abc", &mut page);
        page[PAGE_HEADER + 1] ^= 0x40;
        assert!(PageHeader::read_from(&page)
            .unwrap_err()
            .contains("checksum"));
    }

    #[test]
    fn corrupt_header_detected() {
        let h = PageHeader {
            kind: KIND_DATA,
            payload_len: 3,
            next: 0,
            token: 1,
        };
        let mut page = vec![0u8; PAGE_SIZE];
        h.write_into(b"abc", &mut page);
        page[9] ^= 1; // flip a bit of `next`
        assert!(PageHeader::read_from(&page)
            .unwrap_err()
            .contains("checksum"));
    }

    #[test]
    fn bytes_beyond_payload_are_not_covered() {
        // Stale bytes past payload_len must not affect validity: the
        // checksum covers exactly what a reader consumes.
        let h = PageHeader {
            kind: KIND_DATA,
            payload_len: 3,
            next: 0,
            token: 1,
        };
        let mut page = vec![0u8; PAGE_SIZE];
        h.write_into(b"abc", &mut page);
        page[PAGE_HEADER + 100] = 0xff;
        assert!(PageHeader::read_from(&page).is_ok());
    }

    #[test]
    fn oversized_payload_len_rejected() {
        let mut page = vec![0u8; PAGE_SIZE];
        PageHeader::free().write_into(&[], &mut page);
        page[4..8].copy_from_slice(&(PAYLOAD_PER_PAGE as u32 + 1).to_le_bytes());
        assert!(PageHeader::read_from(&page)
            .unwrap_err()
            .contains("capacity"));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut page = vec![0u8; PAGE_SIZE];
        PageHeader::free().write_into(&[], &mut page);
        page[0] = 9;
        assert!(PageHeader::read_from(&page).unwrap_err().contains("kind"));
    }

    #[test]
    fn fnv64_is_stable() {
        // Known FNV-1a vectors so the on-disk format can't silently drift.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
